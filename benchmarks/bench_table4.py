"""Table 4 — MAE/MSE of all §4.1.3 methods on the three KDN datasets.

Paper shape being reproduced:

- Env2Vec (one model over all three VNFs) is best or competitive on every
  dataset despite the per-VNF baselines training a dedicated model each;
- RFNN_all (pooled, no embeddings) is clearly worse than Env2Vec on all
  three datasets — embeddings are what make a single model viable;
- Ridge_ts beats Ridge everywhere and wins on Switch (the near-linear,
  strongly autoregressive VNF);
- RFNN (GRU+FNN per dataset) beats the plain FNN.

Also prints the Table 3 split sizes the synthetic datasets reproduce.
"""

from conftest import emit
from repro.data import KDN_SPLITS, load_all_kdn
from repro.eval import run_kdn_comparison


def test_table4(benchmark):
    result = benchmark.pedantic(
        lambda: run_kdn_comparison(seed=0, n_nn_runs=2, fast=True),
        rounds=1,
        iterations=1,
    )

    lines = [result.table4(), "", "Table 3 — split sizes (train/val/test):"]
    for name, dataset in load_all_kdn().items():
        train, val, test = dataset.split()
        lines.append(f"  {name:<9} total={dataset.n_samples:5d} split={len(train)}/{len(val)}/{len(test)}")
        assert (len(train), len(val), len(test)) == KDN_SPLITS[name]
    emit("table4", "\n".join(lines))

    scores = result.scores
    for dataset in ("snort", "switch", "firewall"):
        # Embeddings matter: Env2Vec strictly beats the pooled
        # no-embeddings model everywhere (§4.1.4).
        assert scores[dataset]["env2vec"].mae_mean < scores[dataset]["rfnn_all"].mae_mean
        # A single Env2Vec model stays competitive with per-dataset models:
        # within 25% of the best method's MAE.
        best = min(s.mae_mean for s in scores[dataset].values())
        assert scores[dataset]["env2vec"].mae_mean <= 1.25 * best

    # Ridge_ts beats Ridge on every dataset, decisively on Switch.
    for dataset in ("snort", "switch", "firewall"):
        assert scores[dataset]["ridge_ts"].mae_mean <= scores[dataset]["ridge"].mae_mean * 1.02
    assert scores["switch"]["ridge_ts"].mae_mean < scores["switch"]["ridge"].mae_mean * 0.8
    # Ridge_ts is the winner on Switch, as in the paper.
    assert result.best_method("switch") == "ridge_ts"

    # RFNN (with RU history) beats the plain FNN on every dataset.
    for dataset in ("snort", "switch", "firewall"):
        assert scores[dataset]["rfnn"].mae_mean < scores[dataset]["fnn"].mae_mean

    # Env2Vec is the best neural method on Snort and Firewall, and leads
    # Firewall on MSE (the smallest dataset, where pooling pays most).
    for dataset in ("snort", "firewall"):
        for other in ("fnn", "rfnn", "rfnn_all"):
            assert scores[dataset]["env2vec"].mae_mean <= scores[dataset][other].mae_mean
    assert result.best_method("firewall", "mse") == "env2vec"
