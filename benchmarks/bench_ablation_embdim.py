"""Ablation — environment-embedding dimensionality.

The paper fixes the embedding dimension at 10 (§3.1) without a sweep; this
ablation fills that gap: very small embeddings underfit the environment
space, while the gains saturate near the paper's choice.
"""

import numpy as np

from conftest import emit
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.eval import mae, train_env2vec_telecom

DIMS = (1, 4, 10, 20)


def _sweep():
    dataset = generate_telecom(
        TelecomConfig(n_chains=40, n_testbeds=10, n_focus=4, seed=13)
    )
    scores = {}
    for dim in DIMS:
        model = train_env2vec_telecom(dataset, fast=True, embedding_dim=dim, seed=0)
        chain_maes = []
        for chain in dataset.chains:
            X, history, y = build_windows(chain.current.features, chain.current.cpu, 3)
            predictions = model.predict([chain.current.environment] * len(y), X, history)
            chain_maes.append(mae(y, predictions))
        scores[dim] = float(np.mean(chain_maes))
    return scores


def test_ablation_embedding_dim(benchmark):
    scores = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = ["Ablation — embedding dimension (paper fixes 10)"]
    for dim in DIMS:
        marker = "  <- paper" if dim == 10 else ""
        lines.append(f"  dim={dim:<3} MAE={scores[dim]:.3f}{marker}")
    emit("ablation_embdim", "\n".join(lines))

    # The paper's dimension is no worse than the tiny embedding, and the
    # larger dimension brings no dramatic further gain (saturation).
    assert scores[10] <= scores[1] * 1.02
    assert scores[20] >= scores[10] * 0.85
