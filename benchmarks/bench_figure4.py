"""Figure 4 — MAE CDF over all build chains, all methods.

Paper shape being reproduced:

- at low MAE (the easy chains) Env2Vec is merely competitive — it may be
  slightly worse than the specialized per-chain models;
- at high MAE (the hard chains) Env2Vec is clearly better: over the most
  difficult ~10% of cases it has the best MAE of all methods — it "is not
  overfitting to small CPU fluctuations, and is also more robust in
  difficult cases".
"""

import numpy as np

from conftest import emit


def test_figure4(benchmark, chain_mae_result):
    result = chain_mae_result
    cdfs = benchmark.pedantic(
        lambda: {method: result.cdf(method) for method in result.per_chain_mae},
        rounds=1,
        iterations=1,
    )

    lines = ["Figure 4 — MAE CDF across build chains (per-method quantiles):"]
    quantiles = (10, 25, 50, 75, 90, 100)
    header = f"{'method':<10}" + "".join(f"{f'p{q}':>8}" for q in quantiles)
    lines.append(header)
    for method, values in result.per_chain_mae.items():
        row = f"{method:<10}" + "".join(f"{np.percentile(values, q):8.2f}" for q in quantiles)
        lines.append(row)
    lines.append("")
    tail = {m: result.tail_mean(m) for m in result.per_chain_mae}
    lines.append(
        "hardest-10%-of-chains mean MAE: "
        + ", ".join(f"{m}={v:.2f}" for m, v in sorted(tail.items(), key=lambda kv: kv[1]))
    )
    emit("figure4", "\n".join(lines))

    # Each CDF is a valid distribution function.
    for method, (values, fractions) in cdfs.items():
        assert (np.diff(values) >= 0).all()
        assert fractions[-1] == 1.0

    # Tail claim: over the hardest decile, Env2Vec beats the per-chain
    # linear models and the plain pooled model is not better either.
    assert tail["env2vec"] < tail["ridge_ts"]
    assert tail["env2vec"] < tail["ridge"]

    # High-MAE region: the 90th-percentile MAE of Env2Vec is the lowest of
    # the per-chain methods.
    p90 = {m: np.percentile(v, 90) for m, v in result.per_chain_mae.items()}
    assert p90["env2vec"] <= min(p90["ridge"], p90["ridge_ts"])
