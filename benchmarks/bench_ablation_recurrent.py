"""Ablation — GRU vs LSTM for the RU-history branch.

The paper picked GRUs for the recurrent branch (§3.1) without comparing to
LSTM. This ablation swaps the unit and verifies the choice is not
load-bearing: both land in the same accuracy band on the telecom corpus,
with the GRU the smaller model — supporting the paper's pragmatic pick.
"""

import numpy as np

from conftest import emit
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.eval import mae, train_env2vec_telecom


def _evaluate():
    dataset = generate_telecom(
        TelecomConfig(n_chains=40, n_testbeds=10, n_focus=4, seed=13)
    )
    scores, params = {}, {}
    for unit in ("gru", "lstm"):
        model = train_env2vec_telecom(dataset, fast=True, recurrent_unit=unit, seed=0)
        chain_maes = []
        for chain in dataset.chains:
            X, history, y = build_windows(chain.current.features, chain.current.cpu, 3)
            predictions = model.predict([chain.current.environment] * len(y), X, history)
            chain_maes.append(mae(y, predictions))
        scores[unit] = float(np.mean(chain_maes))
        params[unit] = model.model.num_parameters()
    return scores, params


def test_ablation_recurrent_unit(benchmark):
    scores, params = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    emit(
        "ablation_recurrent",
        "\n".join(
            [
                "Ablation — recurrent unit for the RU-history branch",
                f"  gru  (paper): MAE={scores['gru']:.3f}  parameters={params['gru']:,}",
                f"  lstm        : MAE={scores['lstm']:.3f}  parameters={params['lstm']:,}",
            ]
        ),
    )
    # Same accuracy band; GRU needs fewer parameters (3 vs 4 gate blocks).
    assert scores["lstm"] <= scores["gru"] * 1.2
    assert scores["gru"] <= scores["lstm"] * 1.2
    assert params["gru"] < params["lstm"]
