"""Figure 6 — learned environment embeddings projected to 2-d with PCA.

Paper shape being reproduced: environments running the same build *type*
(S/B/D/T) cluster together in the embedding space — same-type pairs sit
closer than cross-type pairs — because build versions of one type share
latent behaviour the embeddings recover.
"""


from conftest import emit
from repro.eval import run_embedding_pca
from repro.eval.plots import ascii_scatter


def test_figure6(benchmark, telecom_dataset, env2vec_model):
    result = benchmark.pedantic(
        lambda: run_embedding_pca(env2vec_model, telecom_dataset), rounds=1, iterations=1
    )

    ratio = result.cluster_ratio()
    text = "\n".join(
        [
            "Figure 6 — PCA of concatenated environment embeddings",
            f"environments: {len(result.environments)}; "
            f"explained variance (PC1, PC2): "
            f"{result.explained_variance_ratio[0]:.2f}, {result.explained_variance_ratio[1]:.2f}",
            f"build-type cluster ratio (intra/inter distance, <1 = clustered): {ratio:.3f}",
            "",
            ascii_scatter(result.coordinates, result.build_types),
        ]
    )
    emit("figure6", text)

    # Same-build-type environments are closer together than cross-type
    # pairs (the Figure 6 clustering).
    assert ratio < 1.0

    # Multiple build types are present, as in the paper's legend.
    assert len(set(result.build_types)) >= 3
    assert result.coordinates.shape == (len(result.environments), 2)
