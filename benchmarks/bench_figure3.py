"""Figure 3 — Env2Vec vs per-chain Ridge_ts, and RFNN_all vs Ridge_ts.

Paper shape being reproduced (Figures 3a, 3b, and the embedded table):

- the single Env2Vec model delivers the best average MAE and MSE over all
  125 build chains, beating 125 per-chain Ridge_ts models;
- RFNN_all (pooled, no embeddings) is worse than Env2Vec on both metrics
  and loses to Ridge_ts — embeddings are necessary to train one model on
  all environments;
- the paired t-test at 0.05 confirms the Env2Vec vs RFNN_all difference.
"""


from conftest import emit
from repro.eval import paired_t_test


def test_figure3(benchmark, chain_mae_result):
    result = chain_mae_result
    improvement_ridge_ts = benchmark.pedantic(
        lambda: result.improvement("env2vec", "ridge_ts"), rounds=1, iterations=1
    )
    improvement_rfnn = result.improvement("rfnn_all", "ridge_ts")

    t_env_rfnn = paired_t_test(result.per_chain_mae["env2vec"], result.per_chain_mae["rfnn_all"])
    text = "\n".join(
        [
            result.mean_table(),
            "",
            "Figure 3a — per-chain MAE improvement of Env2Vec over Ridge_ts:",
            f"  mean {improvement_ridge_ts.mean():+.3f}, improved on "
            f"{int((improvement_ridge_ts > 0).sum())}/{len(improvement_ridge_ts)} chains",
            "Figure 3b — per-chain MAE improvement of RFNN_all over Ridge_ts:",
            f"  mean {improvement_rfnn.mean():+.3f}, improved on "
            f"{int((improvement_rfnn > 0).sum())}/{len(improvement_rfnn)} chains",
            "",
            f"paired t-test Env2Vec vs RFNN_all MAE: {t_env_rfnn}",
        ]
    )
    emit("figure3", text)

    maes = {m: values.mean() for m, values in result.per_chain_mae.items()}
    mses = {m: values.mean() for m, values in result.per_chain_mse.items()}

    # Figure 3a table: the single Env2Vec model has the best average MAE and
    # MSE across all chains (within a 3% numerical band for MAE).
    assert maes["env2vec"] <= maes["ridge_ts"] * 1.03
    assert mses["env2vec"] <= mses["ridge_ts"]
    assert maes["env2vec"] < maes["ridge"]

    # Figure 3b: RFNN_all is worse than Env2Vec on both metrics and has
    # higher MAE than Ridge_ts.
    assert maes["rfnn_all"] > maes["env2vec"]
    assert mses["rfnn_all"] > mses["env2vec"]
    assert maes["rfnn_all"] > maes["ridge_ts"]

    # The Env2Vec vs RFNN_all gap is statistically significant (paired
    # t-test at 0.05, §4.1.2) with Env2Vec lower.
    assert t_env_rfnn.significant and t_env_rfnn.mean_difference < 0
