"""Ablation — RU-history window length n (§4.1.3 tunes n in 1..9).

Sweeps the number of previous RU values the GRU consumes. The paper found
small windows (n = 1..2) optimal on the KDN data; the claim preserved here
is that *some* history is essential (the Ridge vs Ridge_ts and FNN vs RFNN
gaps) while long windows bring little extra.
"""

import numpy as np

from conftest import emit
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.eval import mae, train_env2vec_telecom

LAGS = (1, 2, 3, 5, 7)


def _sweep():
    dataset = generate_telecom(
        TelecomConfig(n_chains=40, n_testbeds=10, n_focus=4, seed=13)
    )
    scores = {}
    for n_lags in LAGS:
        model = train_env2vec_telecom(dataset, n_lags=n_lags, fast=True, seed=0)
        chain_maes = []
        for chain in dataset.chains:
            X, history, y = build_windows(chain.current.features, chain.current.cpu, n_lags)
            predictions = model.predict([chain.current.environment] * len(y), X, history)
            chain_maes.append(mae(y, predictions))
        scores[n_lags] = float(np.mean(chain_maes))
    return scores


def test_ablation_window(benchmark):
    scores = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    best = min(scores, key=scores.get)
    lines = ["Ablation — RU-history window n (GRU input length)"]
    for n_lags in LAGS:
        marker = "  <- best" if n_lags == best else ""
        lines.append(f"  n={n_lags:<2} MAE={scores[n_lags]:.3f}{marker}")
    emit("ablation_window", "\n".join(lines))

    # All window lengths produce sane models, and going from the shortest
    # to the best window is at most a modest improvement — consistent with
    # the paper finding n=1..2 sufficient.
    assert all(np.isfinite(list(scores.values())))
    assert scores[best] <= scores[1]
    assert scores[1] <= scores[best] * 1.3
