"""Benchmark — autograd forward vs. the compiled tape-free inference engine.

The paper's serving loop (§3 steps 3-5) predicts RU once per timestep per
running testbed, i.e. batch-size-1 streaming, where tape bookkeeping and
Tensor allocation dominate the numpy math. The campaign/calibration path
(and every serve micro-batch) is the opposite shape: one vectorized call
over hundreds of rows, where the BLAS kernels dominate. This benchmark
measures both shapes on a trained Env2Vec model through three contenders:

- the autograd forward under ``no_grad`` (baseline);
- the compiled float64 engine (the serving default, byte-identical to
  the autograd forward at ≤1e-10);
- the compiled float32 engine (the throughput mode, parity within
  :data:`repro.nn.inference.FLOAT32_ATOL`).

Timing keeps the original best-of-rounds discipline: every contender is
warmed up first, then each (shape, contender) cell is the *minimum* over
interleaved rounds — interference (host steal, cache pollution from a
neighbouring contender, a GC pause) only ever adds time, so the minimum
is the standard estimator of the true per-call cost, and round-level
interleaving keeps slow drift from biasing one contender. A per-op
profile of the compiled forward at batch 256 (via
:func:`repro.obs.profile_ops`) is recorded alongside the speedups so
EXPERIMENTS.md's table can be regenerated from the JSON. Results go to
``benchmarks/results/BENCH_inference.json``.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.core.model import Env2VecRegressor
from repro.data import Environment
from repro.nn.inference import FLOAT32_ATOL
from repro.obs import profile_ops

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance floors: the float64 engine must beat the no_grad autograd
#: forward by at least this factor on batch-1 streaming, and the float32
#: engine by the same factor on batch-256 throughput. The float64 engine
#: must never lose to autograd on the batch path.
MIN_STREAMING_SPEEDUP = 3.0
MIN_BATCH_SPEEDUP_F32 = 3.0
MIN_BATCH_SPEEDUP_F64 = 1.0

#: Timing rounds per (shape, contender) cell; the minimum is reported.
ROUNDS = 7


def _trained_regressor(seed: int = 0) -> Env2VecRegressor:
    rng = np.random.default_rng(seed)
    environments = [
        Environment(f"Testbed_{i % 5:02d}", f"SUT_{i % 3}", f"Testcase_{i % 4}", f"Build_{i % 6}")
        for i in range(240)
    ]
    X = rng.standard_normal((240, 6))
    history = rng.standard_normal((240, 3))
    y = X @ rng.standard_normal(6) + 0.5 * history.sum(axis=1)
    regressor = Env2VecRegressor(
        n_lags=3, embedding_dim=10, fnn_hidden=64, gru_hidden=16,
        max_epochs=2, batch_size=64, seed=seed,
    )
    return regressor.fit(environments, X, history, y)


def _time_contenders(fns: list, repeats: int, rounds: int = ROUNDS) -> list[float]:
    """Best-of-``rounds`` wall time per contender, interleaved + warmed.

    One warmup pass per contender first (pays lazy allocations, cache
    fills, and BLAS thread spin-up outside the timed region). Each
    contender then runs its ``repeats`` calls as one contiguous block
    per round — a block is long enough for the contender's own working
    set to be cache-resident, which is exactly the steady state the
    floors are about — and rounds interleave the contenders so slow
    drift (thermal, host load) lands on all of them. The reported cell
    is the *minimum* across rounds: interference only ever adds time,
    so the fastest round is the closest observation of the true cost.
    """
    for fn in fns:
        fn()  # warmup
    samples: list[list[float]] = [[] for _ in fns]
    for _ in range(rounds):
        for slot, fn in enumerate(fns):
            start = time.perf_counter()
            for _ in range(repeats):
                fn()
            samples[slot].append(time.perf_counter() - start)
    return [min(times) for times in samples]


def _profile_batch(engine, batch, repeats: int = 50) -> dict:
    """Per-op microseconds-per-call for one engine on one batch shape."""
    with profile_ops() as prof:
        for _ in range(repeats):
            engine(**batch)
    return {
        name: {"us_per_call": 1e6 * total / calls, "calls": calls}
        for name, total, calls in prof.table()
    }


def run_inference_bench(n_stream: int = 300) -> dict:
    regressor = _trained_regressor()
    engine64 = regressor.compile(dtype=np.float64)
    model = regressor.model
    model.eval()
    rng = np.random.default_rng(1)

    environment = Environment("Testbed_00", "SUT_0", "Testcase_0", "Build_0")
    stream_batch = regressor._batch([environment], rng.standard_normal((1, 6)),
                                    rng.standard_normal((1, 3)))
    big_batch = regressor._batch([environment] * 256, rng.standard_normal((256, 6)),
                                 rng.standard_normal((256, 3)))

    engine64.assert_close(stream_batch)   # dtype-aware default: 1e-10
    engine64.assert_close(big_batch)
    # A second compile at float32 for the throughput mode; recompiling
    # does not disturb engine64 (engines are standalone snapshots).
    engine32 = regressor.compile(dtype=np.float32)
    f32_err_stream = engine32.assert_close(stream_batch)  # default: FLOAT32_ATOL
    f32_err_big = engine32.assert_close(big_batch)

    from repro.nn import no_grad

    def autograd_forward(batch):
        with no_grad():
            return model(**batch).numpy()

    results = {}
    for name, batch, repeats in (
        ("batch1_streaming", stream_batch, n_stream),
        ("batch256_throughput", big_batch, max(1, n_stream // 5)),
    ):
        autograd_s, f64_s, f32_s = _time_contenders(
            [
                lambda b=batch: autograd_forward(b),
                lambda b=batch: engine64(**b),
                lambda b=batch: engine32(**b),
            ],
            repeats,
        )
        results[name] = {
            "calls": repeats,
            "timing": f"best of {ROUNDS} interleaved rounds after warmup",
            "autograd_no_grad_us_per_call": 1e6 * autograd_s / repeats,
            "compiled_us_per_call": 1e6 * f64_s / repeats,
            "compiled_f32_us_per_call": 1e6 * f32_s / repeats,
            "speedup": autograd_s / f64_s,
            "speedup_f32": autograd_s / f32_s,
        }
    results["per_op_batch256"] = {
        "float64": _profile_batch(engine64, big_batch),
        "float32": _profile_batch(engine32, big_batch),
    }
    results["float32_parity"] = {
        "atol_bound": FLOAT32_ATOL,
        "max_abs_err_batch1": f32_err_stream,
        "max_abs_err_batch256": f32_err_big,
    }
    results["env_cache"] = {"hits": engine64.env_cache.hits, "misses": engine64.env_cache.misses}
    return results


def _render(results: dict) -> str:
    lines = [
        "Inference engine — autograd no_grad vs compiled f64/f32 (trained Env2Vec,"
        f" best of {ROUNDS} rounds)"
    ]
    for name in ("batch1_streaming", "batch256_throughput"):
        row = results[name]
        lines.append(
            f"  {name:<22} autograd={row['autograd_no_grad_us_per_call']:9.1f}us  "
            f"f64={row['compiled_us_per_call']:8.1f}us ({row['speedup']:4.1f}x)  "
            f"f32={row['compiled_f32_us_per_call']:8.1f}us ({row['speedup_f32']:4.1f}x)"
        )
    lines.append("  per-op @256 (us/call):")
    for dtype_name in ("float64", "float32"):
        ops_table = results["per_op_batch256"][dtype_name]
        cells = "  ".join(f"{op}={row['us_per_call']:.0f}" for op, row in ops_table.items())
        lines.append(f"    {dtype_name}: {cells}")
    parity = results["float32_parity"]
    lines.append(
        f"  f32 parity: max |err| = {parity['max_abs_err_batch256']:.2e} "
        f"(bound {parity['atol_bound']:.0e})"
    )
    cache = results["env_cache"]
    lines.append(f"  embedding row cache: {cache['hits']} hits / {cache['misses']} misses")
    return "\n".join(lines)


def _check_floors(results: dict) -> None:
    assert results["batch1_streaming"]["speedup"] >= MIN_STREAMING_SPEEDUP, (
        f"compiled batch-1 inference is only "
        f"{results['batch1_streaming']['speedup']:.2f}x faster; need {MIN_STREAMING_SPEEDUP}x"
    )
    assert results["batch256_throughput"]["speedup_f32"] >= MIN_BATCH_SPEEDUP_F32, (
        f"float32 batch-256 inference is only "
        f"{results['batch256_throughput']['speedup_f32']:.2f}x faster; "
        f"need {MIN_BATCH_SPEEDUP_F32}x"
    )
    assert results["batch256_throughput"]["speedup"] >= MIN_BATCH_SPEEDUP_F64, (
        "compiled batched inference must not be slower than autograd"
    )


def test_bench_inference(benchmark):
    results = benchmark.pedantic(run_inference_bench, rounds=1, iterations=1)
    emit("inference", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_inference.json").write_text(json.dumps(results, indent=2) + "\n")
    _check_floors(results)


if __name__ == "__main__":
    bench_results = run_inference_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_inference.json").write_text(json.dumps(bench_results, indent=2) + "\n")
    _check_floors(bench_results)
