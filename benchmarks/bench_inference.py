"""Benchmark — autograd forward vs. the compiled tape-free inference engine.

The paper's serving loop (§3 steps 3-5) predicts RU once per timestep per
running testbed, i.e. batch-size-1 streaming, where tape bookkeeping and
Tensor allocation dominate the numpy math. This benchmark measures both
serving shapes on a trained Env2Vec model:

- **batch-1 streaming**: one prediction per call over consecutive
  timesteps of one execution (the production monitoring pattern);
- **batch-256 throughput**: one vectorized call over a large window
  (the calibration/backfill pattern),

each through (a) the autograd forward under ``no_grad`` and (b) the
compiled :class:`~repro.nn.inference.InferenceModel`. Results go to
``benchmarks/results/BENCH_inference.json`` (machine-readable) and the
usual rendered table.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.core.model import Env2VecRegressor
from repro.data import Environment

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance floor: the engine must beat the no_grad autograd forward by
#: at least this factor on batch-1 streaming.
MIN_STREAMING_SPEEDUP = 3.0


def _trained_regressor(seed: int = 0) -> Env2VecRegressor:
    rng = np.random.default_rng(seed)
    environments = [
        Environment(f"Testbed_{i % 5:02d}", f"SUT_{i % 3}", f"Testcase_{i % 4}", f"Build_{i % 6}")
        for i in range(240)
    ]
    X = rng.standard_normal((240, 6))
    history = rng.standard_normal((240, 3))
    y = X @ rng.standard_normal(6) + 0.5 * history.sum(axis=1)
    regressor = Env2VecRegressor(
        n_lags=3, embedding_dim=10, fnn_hidden=64, gru_hidden=16,
        max_epochs=2, batch_size=64, seed=seed,
    )
    return regressor.fit(environments, X, history, y)


def _time_pair(fn_a, fn_b, repeats: int, rounds: int = 7) -> tuple[float, float]:
    """Best-of-``rounds`` wall time for each contender, interleaved.

    Alternating A/B within every round means a background load spike hits
    both sides rather than biasing whichever happened to run under it.
    """
    best_a = best_b = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(repeats):
            fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def run_inference_bench(n_stream: int = 300) -> dict:
    regressor = _trained_regressor()
    engine = regressor.compile()
    model = regressor.model
    model.eval()
    rng = np.random.default_rng(1)

    environment = Environment("Testbed_00", "SUT_0", "Testcase_0", "Build_0")
    stream_batch = regressor._batch([environment], rng.standard_normal((1, 6)),
                                    rng.standard_normal((1, 3)))
    big_batch = regressor._batch([environment] * 256, rng.standard_normal((256, 6)),
                                 rng.standard_normal((256, 3)))

    engine.assert_close(stream_batch, atol=1e-10)
    engine.assert_close(big_batch, atol=1e-10)

    from repro.nn import no_grad

    def autograd_forward(batch):
        with no_grad():
            return model(**batch).numpy()

    results = {}
    for name, batch, repeats in (
        ("batch1_streaming", stream_batch, n_stream),
        ("batch256_throughput", big_batch, max(1, n_stream // 10)),
    ):
        autograd_s, compiled_s = _time_pair(
            lambda b=batch: autograd_forward(b), lambda b=batch: engine(**b), repeats
        )
        results[name] = {
            "calls": repeats,
            "autograd_no_grad_us_per_call": 1e6 * autograd_s / repeats,
            "compiled_us_per_call": 1e6 * compiled_s / repeats,
            "speedup": autograd_s / compiled_s,
        }
    results["env_cache"] = {"hits": engine.env_cache.hits, "misses": engine.env_cache.misses}
    return results


def _render(results: dict) -> str:
    lines = ["Inference engine — autograd no_grad vs compiled (trained Env2Vec)"]
    for name in ("batch1_streaming", "batch256_throughput"):
        row = results[name]
        lines.append(
            f"  {name:<22} autograd={row['autograd_no_grad_us_per_call']:9.1f}us  "
            f"compiled={row['compiled_us_per_call']:9.1f}us  "
            f"speedup={row['speedup']:5.1f}x"
        )
    cache = results["env_cache"]
    lines.append(f"  embedding row cache: {cache['hits']} hits / {cache['misses']} misses")
    return "\n".join(lines)


def test_bench_inference(benchmark):
    results = benchmark.pedantic(run_inference_bench, rounds=1, iterations=1)
    emit("inference", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_inference.json").write_text(json.dumps(results, indent=2) + "\n")

    assert results["batch1_streaming"]["speedup"] >= MIN_STREAMING_SPEEDUP, (
        f"compiled batch-1 inference is only "
        f"{results['batch1_streaming']['speedup']:.2f}x faster; need {MIN_STREAMING_SPEEDUP}x"
    )
    assert results["batch256_throughput"]["speedup"] >= 1.0, (
        "compiled batched inference must not be slower than autograd"
    )


if __name__ == "__main__":
    bench_results = run_inference_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_inference.json").write_text(json.dumps(bench_results, indent=2) + "\n")
