"""Table 6 — detection in previously *unseen* environments (§4.3).

The focus chains' entire history is blinded from training, so their
environments never appear as whole tuples; Env2Vec composes their
embeddings from per-field values learned on other chains (Figure 5) and
detects with a self-calibrated error distribution.

Paper shape being reproduced:

- Ridge and Ridge_ts are N/A — they cannot run without per-chain history;
- Env2Vec outperforms RFNN_all at every γ (e.g. paper γ=2: A_T 0.632 vs
  0.462) and raises fewer, more precise alarms;
- detection is weaker than the with-history Table 5 setting.
"""

from conftest import emit
from repro.core import EnvironmentVocabulary, blind_chains
from repro.eval import run_unseen_table

GAMMAS = (1.0, 2.0, 3.0)


def test_table6(benchmark, telecom_dataset):
    result = benchmark.pedantic(
        lambda: run_unseen_table(telecom_dataset, gammas=GAMMAS, fast=False, include_htm=True),
        rounds=1,
        iterations=1,
    )
    emit("table6", result.table("Table 6 — unseen environments (history blinded)"))

    # Ridge/Ridge_ts are structurally absent (N/A in the paper's table).
    methods = {row.method for row in result.rows}
    assert "ridge" not in methods and "ridge_ts" not in methods

    # The blinded environments are composable from EM values other chains
    # cover (the §4.3 premise) for at least the testbed/SUT/testcase
    # fields of most focus chains.
    split = blind_chains(telecom_dataset, telecom_dataset.focus_indices)
    vocabulary = EnvironmentVocabulary().fit([env for env, _, _ in split.training])
    known_counts = [
        sum(vocabulary.is_known(execution.environment).values()) for execution in split.held_out
    ]
    # Almost all blinded environments keep >= 3 known fields; the one
    # exception is the rare-testbed chain, whose testbed appears nowhere
    # else — exactly the §6 limitation ("a new testbed which has not
    # appeared in the training data before" cannot be composed).
    assert sum(count >= 3 for count in known_counts) >= len(known_counts) - 1
    assert all(count >= 2 for count in known_counts)

    for gamma in GAMMAS:
        env2vec = result.row("env2vec", gamma)
        rfnn_all = result.row("rfnn_all", gamma)
        # Env2Vec beats the pooled no-embeddings model on precision while
        # raising no more alarms.
        assert env2vec.a_t >= rfnn_all.a_t
        assert env2vec.n_alarms <= rfnn_all.n_alarms

    # Env2Vec still detects a meaningful share of the real problems even
    # without any history for these environments.
    assert result.row("env2vec", 1.0).problems_detected >= result.ground_truth_problems * 0.5
