"""Ablation — §6 hold-out contribution analysis of CF groups and EM fields.

"A deeper analysis of the contributions of different groups of CFs or
different EM could help to reduce the complexity of Env2Vec. For example,
starting with the complete Env2Vec model and using a 'hold out' strategy
to remove a set of CFs or EM to investigate how the performance changes."

Expected shapes: among EM fields, the testbed embedding — the field with
the widest response influence — matters most, mirroring §6's emphasis on
testbed coverage. CF groups are partially redundant with each other and
with the RU history, so their individual deltas are small; the interesting
reproduction finding is the *build* field: since every current build is a
new version (an <unk> embedding at test time), dropping the build table
can even help — quantifying the coverage limitation §6 describes.
"""

from conftest import emit
from repro.data import TelecomConfig, generate_telecom
from repro.eval import cf_group_holdout, em_field_holdout


def _evaluate():
    dataset = generate_telecom(
        TelecomConfig(n_chains=30, n_testbeds=8, n_focus=3, include_rare_testbed=False, seed=17)
    )
    cf = cf_group_holdout(dataset, fast=True, seed=0)
    em = em_field_holdout(dataset, fast=True, seed=0)
    return cf, em


def test_ablation_holdout(benchmark):
    cf, em = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    emit(
        "ablation_holdout",
        "\n\n".join(
            [
                cf.table("§6 holdout — contextual feature groups"),
                em.table("§6 holdout — EM embedding fields"),
            ]
        ),
    )

    # CF groups overlap in information (and with the RU history), so no
    # single removal may be catastrophic — but the analysis must produce a
    # finite, ranked answer for every group.
    assert len(cf.ranking()) == 3
    assert all(abs(delta) < 5.0 for _, delta in cf.ranking())

    # The testbed embedding is the most important EM field — consistent
    # with §6's finding that testbed coverage governs embedding quality —
    # and removing it clearly hurts.
    top_field, top_delta = em.ranking()[0]
    assert top_field == "testbed"
    assert top_delta > 0
