"""Table 5 — performance-problem detection across the focus executions.

Paper shape being reproduced:

- HTM-AD (univariate, context-free) is the weakest detector: it finds the
  fewest real problems because it cannot tell workload-driven CPU changes
  from genuine regressions;
- accuracy (A_T) rises with γ for the contextual methods while the number
  of alarms falls — the precision/recall trade-off the testing engineers
  tune;
- Env2Vec delivers the best A_T at high γ and detects as many or more
  problems than the pooled no-embeddings model at every γ;
- per-chain Ridge has the weakest precision of the contextual methods.
"""

from conftest import emit
from repro.eval import run_anomaly_table

GAMMAS = (1.0, 2.0, 3.0)


def test_table5(benchmark, telecom_dataset, env2vec_model, rfnn_all_model):
    result = benchmark.pedantic(
        lambda: run_anomaly_table(
            telecom_dataset, env2vec_model, rfnn_all_model, gammas=GAMMAS, include_htm=True
        ),
        rounds=1,
        iterations=1,
    )
    emit("table5", result.table("Table 5 — performance problems detected per method and γ"))

    truth = result.ground_truth_problems
    assert truth > 0

    htm = result.row("htm_ad", None)
    for gamma in GAMMAS:
        env2vec = result.row("env2vec", gamma)
        rfnn_all = result.row("rfnn_all", gamma)
        ridge = result.row("ridge", gamma)

        # HTM-AD detects fewer real problems than any contextual method.
        assert htm.problems_detected < env2vec.problems_detected
        assert htm.problems_detected < ridge.problems_detected

        # Env2Vec finds at least as many problems as the pooled
        # no-embeddings model, with better or equal precision.
        assert env2vec.problems_detected >= rfnn_all.problems_detected
        assert env2vec.a_t >= ridge.a_t

        # Problems detected never exceed the ground truth.
        for method in ("env2vec", "rfnn_all", "ridge", "ridge_ts"):
            assert result.row(method, gamma).problems_detected <= truth

    # γ trade-off: alarms decrease (or stay equal) as γ grows, accuracy at
    # γ=3 exceeds accuracy at γ=1 for Env2Vec.
    env_alarms = [result.row("env2vec", g).n_alarms for g in GAMMAS]
    assert env_alarms[0] >= env_alarms[1] >= env_alarms[2]
    assert result.row("env2vec", 3.0).a_t > result.row("env2vec", 1.0).a_t

    # At the strict setting Env2Vec has the best precision of all methods.
    best_at_3 = max(
        result.row(m, 3.0).a_t for m in ("env2vec", "rfnn_all", "ridge", "ridge_ts")
    )
    assert result.row("env2vec", 3.0).a_t == best_at_3
