"""Ablation — prediction-head variants (§3.2).

The paper notes the Hadamard head (eq. 2) has alternatives: a bilinear
form ``v_d · R · C`` and extra dense layers over ``[v_d, C]``; "both
approaches require more parameters to learn but yield similar results."
This ablation trains all three heads on a mid-sized corpus and confirms
they land within a narrow MAE band, with the Hadamard head the cheapest.
"""

import numpy as np

from conftest import emit
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.eval import mae, train_env2vec_telecom


def _evaluate_heads():
    dataset = generate_telecom(
        TelecomConfig(n_chains=40, n_testbeds=10, n_focus=4, seed=13)
    )
    scores, params = {}, {}
    for head in ("hadamard", "bilinear", "mlp"):
        model = train_env2vec_telecom(dataset, fast=True, head=head, seed=0)
        chain_maes = []
        for chain in dataset.chains:
            X, history, y = build_windows(chain.current.features, chain.current.cpu, 3)
            predictions = model.predict([chain.current.environment] * len(y), X, history)
            chain_maes.append(mae(y, predictions))
        scores[head] = float(np.mean(chain_maes))
        params[head] = model.model.num_parameters()
    return scores, params


def test_ablation_head(benchmark):
    scores, params = benchmark.pedantic(_evaluate_heads, rounds=1, iterations=1)

    lines = ["Ablation — prediction heads (§3.2)"]
    for head in ("hadamard", "bilinear", "mlp"):
        lines.append(f"  {head:<9} MAE={scores[head]:.3f}  parameters={params[head]:,}")
    emit("ablation_head", "\n".join(lines))

    # "Similar results": every head within 25% of the best.
    best = min(scores.values())
    for head, score in scores.items():
        assert score <= best * 1.25, f"{head} diverges from the other heads"

    # The alternatives require more parameters than the Hadamard head.
    assert params["bilinear"] > params["hadamard"]
    assert params["mlp"] > params["hadamard"]
