"""Ablation — Gaussian vs quantile error models (the §3.2 caveat).

The paper's detector "assumes that the prediction errors will follow a
Gaussian distribution ... not necessarily always true" and suggests "a
more rigorous modelling of the prediction error" where it fails. This
ablation measures the assumption on the telecom corpus and compares
detection quality of the Gaussian γ·σ rule against the distribution-free
quantile-band alternative at matched nominal tail mass.
"""

import numpy as np

from conftest import emit
from repro.core import (
    ContextualAnomalyDetector,
    GaussianErrorModel,
    QuantileErrorModel,
    calibration_report,
    score_alarms,
)
from repro.eval.telecom_experiments import _predict_execution, _problem_intervals

N_LAGS = 3


def _run(dataset, model, gamma=2.0):
    detector = ContextualAnomalyDetector(gamma=gamma)
    all_errors = []
    results = {"gaussian": [], "quantile": []}
    for chain in dataset.focus_chains:
        errors = []
        for execution in chain.history:
            predicted, observed = _predict_execution(model, execution, N_LAGS)
            errors.append(predicted - observed)
        errors = np.concatenate(errors)
        all_errors.append(errors)
        predicted, observed = _predict_execution(model, chain.current, N_LAGS)
        truth = chain.current.anomaly_mask()[N_LAGS:]
        intervals = _problem_intervals(chain.current, N_LAGS)
        for name, error_model in (
            ("gaussian", GaussianErrorModel.fit(errors)),
            ("quantile", QuantileErrorModel.fit(errors)),
        ):
            report = detector.detect(predicted, observed, error_model)
            results[name].append(score_alarms(report.alarms, truth, intervals))
    return np.concatenate(all_errors), results


def test_ablation_calibration(benchmark, telecom_dataset, env2vec_model):
    errors, results = benchmark.pedantic(
        lambda: _run(telecom_dataset, env2vec_model), rounds=1, iterations=1
    )
    report = calibration_report(errors)

    def total(name):
        from repro.core import AlarmScore

        return sum(results[name], AlarmScore(0, 0))

    gaussian, quantile = total("gaussian"), total("quantile")
    emit(
        "ablation_calibration",
        "\n".join(
            [
                report.table(),
                "",
                "Detection at γ=2 with matched nominal tail mass:",
                f"  gaussian : alarms={gaussian.n_alarms:<4} correct={gaussian.correct_alarms:<4} "
                f"problems={gaussian.problems_detected} A_T={gaussian.true_alarm_rate:.3f}",
                f"  quantile : alarms={quantile.n_alarms:<4} correct={quantile.correct_alarms:<4} "
                f"problems={quantile.problems_detected} A_T={quantile.true_alarm_rate:.3f}",
            ]
        ),
    )

    # The calibration report is well-formed and the empirical tails are in
    # the right ballpark of the Gaussian prediction at small gamma.
    empirical_1, predicted_1 = report.tail_mass[1.0]
    assert 0.0 < empirical_1 < 1.0 and predicted_1 > 0.25

    # Both error models detect essentially the same real problems — the
    # Gaussian shortcut does not lose recall on this corpus — while the
    # quantile model's precision is at least comparable.
    assert quantile.problems_detected >= gaussian.problems_detected - 2
    assert quantile.true_alarm_rate >= gaussian.true_alarm_rate - 0.1
