"""Ablation — the §6 attention extension over the RU-history GRU.

The paper proposes attention as future work "to learn relationships
between metric values from previous timesteps". This benchmark trains
Env2Vec with and without additive attention over the GRU's hidden-state
sequence and compares current-build MAE — the attention variant must stay
in the same accuracy band (it is an extension, not a regression) while
exposing interpretable per-timestep weights.
"""

import numpy as np

from conftest import emit
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.eval import mae, train_env2vec_telecom


def _evaluate():
    dataset = generate_telecom(
        TelecomConfig(n_chains=40, n_testbeds=10, n_focus=4, seed=13)
    )
    scores = {}
    models = {}
    for use_attention in (False, True):
        model = train_env2vec_telecom(
            dataset, n_lags=5, fast=True, use_attention=use_attention, seed=0
        )
        chain_maes = []
        for chain in dataset.chains:
            X, history, y = build_windows(chain.current.features, chain.current.cpu, 5)
            predictions = model.predict([chain.current.environment] * len(y), X, history)
            chain_maes.append(mae(y, predictions))
        scores[use_attention] = float(np.mean(chain_maes))
        models[use_attention] = model
    return dataset, scores, models


def test_ablation_attention(benchmark):
    dataset, scores, models = benchmark.pedantic(_evaluate, rounds=1, iterations=1)

    # Inspect the learned attention profile over the 5-lag window.
    attention_model = models[True]
    chain = dataset.chains[0]
    X, history, y = build_windows(chain.current.features, chain.current.cpu, 5)
    attention_model.predict([chain.current.environment] * len(y), X, history, compiled=False)
    weights = attention_model.model.encoder.attention.last_weights.mean(axis=0)

    emit(
        "ablation_attention",
        "\n".join(
            [
                "Ablation — additive attention over RU history (§6 extension)",
                f"  last-state GRU (paper) : MAE={scores[False]:.3f}",
                f"  + attention            : MAE={scores[True]:.3f}",
                "  mean attention weight per lag (oldest -> newest): "
                + " ".join(f"{w:.2f}" for w in weights),
            ]
        ),
    )

    # The extension stays within the baseline's accuracy band.
    assert scores[True] <= scores[False] * 1.15
    # Attention weights are a valid distribution over the window.
    assert weights.shape == (5,)
    assert np.isclose(weights.sum(), 1.0, atol=1e-9)
