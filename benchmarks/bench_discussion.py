"""§6 discussion — training time and model-size budget.

Paper claims being reproduced:

- Ridge/Ridge_ts train in well under 1 second per build chain, so they can
  be fit "on the fly";
- Env2Vec (and RFNN_all) are orders of magnitude slower to train and must
  be trained periodically and stored;
- the serialized Env2Vec artifact — DL weights plus all environment
  embeddings — fits in well under 10 MB.
"""

import time


from conftest import emit
from repro.data.windows import build_windows_multi
from repro.ml import Ridge, RidgeTS
from repro.ml.preprocessing import StandardScaler


def _time_per_chain_ridge(dataset, n_lags=3, use_history=True) -> float:
    start = time.perf_counter()
    for chain in dataset.chains:
        X, history, y, _ = build_windows_multi(chain.history_series(), n_lags)
        Xs = StandardScaler().fit_transform(X)
        if use_history:
            RidgeTS(alpha=1.0, n_lags=n_lags).fit(Xs, y, history=history)
        else:
            Ridge(alpha=1.0).fit(Xs, y)
    return (time.perf_counter() - start) / dataset.n_chains


def test_discussion_budgets(benchmark, telecom_dataset, env2vec_model):
    per_chain_seconds = benchmark.pedantic(
        lambda: _time_per_chain_ridge(telecom_dataset), rounds=1, iterations=1
    )
    blob = env2vec_model.to_bytes()
    n_params = env2vec_model.model.num_parameters()
    epochs = env2vec_model.history_.epochs_run

    text = "\n".join(
        [
            "§6 discussion — operational budgets",
            f"Ridge_ts training time per build chain: {per_chain_seconds * 1000:.1f} ms "
            "(paper: < 1 s, trainable on the fly)",
            f"Env2Vec: {n_params:,} parameters, trained for {epochs} epochs "
            "(paper: ~30 min on commodity hardware; periodic training)",
            f"Serialized Env2Vec artifact (weights + all environment embeddings): "
            f"{len(blob) / 1024:.1f} KiB (paper budget: < 10 MB)",
        ]
    )
    emit("discussion", text)

    # Per-chain linear models are trainable on the fly (< 1 s each).
    assert per_chain_seconds < 1.0
    # The full artifact respects the paper's 10 MB budget.
    assert len(blob) < 10 * 1024 * 1024
    # The artifact round-trips (the prediction pipeline depends on this).
    from repro.core import Env2VecRegressor

    restored = Env2VecRegressor.from_bytes(blob)
    assert restored.model.num_parameters() == n_params
