"""Figure 1 — per-build-chain linear models: weight heatmap + residuals.

Paper shape being reproduced:

- the coefficient assigned to each contextual feature varies significantly
  across build chains (the heatmap's motivation for embeddings), and
- a noticeable subset of chains has residuals above 10% CPU on the test
  data (the red boxplots), showing per-chain linear models underperform.
"""


from conftest import emit
from repro.eval import run_figure1
from repro.eval.plots import ascii_heatmap


def test_figure1(benchmark, telecom_dataset):
    result = benchmark.pedantic(lambda: run_figure1(telecom_dataset), rounds=1, iterations=1)

    text = "\n".join(
        [
            result.summary(),
            "",
            "Weight heatmap (rows = contextual features, cols = build chains,",
            "darker = larger |normalized coefficient|):",
            ascii_heatmap(result.weights),
            "",
            f"chains with max |residual| > 10% CPU: "
            f"{int(result.over_10_percent.sum())}/{len(result.chain_keys)}",
        ]
    )
    emit("figure1", text)

    n_chains = len(result.chain_keys)
    assert n_chains == telecom_dataset.n_chains

    # Weights vary significantly across chains: for most features, the
    # across-chain std of the normalized coefficient is a sizeable fraction
    # of the overall weight scale.
    per_feature_spread = result.weights.std(axis=1)
    assert per_feature_spread.mean() > 0.05

    # Some chains' linear model is poor on the current build (>10% CPU
    # residual), but not all of them — the paper's red-box subset.
    n_red = int(result.over_10_percent.sum())
    assert 0 < n_red < n_chains

    # Residual quantiles are coherent.
    assert (result.residual_quantiles[:, 4] >= result.residual_quantiles[:, 2]).all()
