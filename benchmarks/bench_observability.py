"""Benchmark — observability overhead on the prediction hot path.

The obs layer promises to be effectively free when disabled and cheap when
enabled. This benchmark measures the batch-1 streaming forward (the
production monitoring pattern, where per-call overhead matters most) three
ways on one compiled Env2Vec engine:

- **raw**: the pre-instrumentation ``InferenceModel.__call__`` — a plain
  wrapper around the compiled plan (``return self._forward(**inputs)``),
  i.e. exactly what every call site paid before this layer existed;
- **disabled**: ``engine(**batch)`` with the global registry switched off —
  the instrumented entry point degenerating to one flag check;
- **enabled**: ``engine(**batch)`` with metrics on — two clock reads, one
  histogram observe, and the cache-delta counter sync per call.

Acceptance: disabled ≤2% over raw, enabled ≤10% over raw. Span overhead is
reported alongside (one ``with span(...)`` per call, enabled vs disabled).
Results go to ``benchmarks/results/BENCH_observability.json``.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.core.model import Env2VecRegressor
from repro.data import Environment
from repro.obs import OBS

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance ceilings on the batch-1 streaming hot path.
MAX_DISABLED_OVERHEAD = 0.02
MAX_ENABLED_OVERHEAD = 0.10


def _trained_engine(seed: int = 0):
    rng = np.random.default_rng(seed)
    environments = [
        Environment(f"Testbed_{i % 5:02d}", f"SUT_{i % 3}", f"Testcase_{i % 4}", f"Build_{i % 6}")
        for i in range(240)
    ]
    X = rng.standard_normal((240, 6))
    history = rng.standard_normal((240, 3))
    y = X @ rng.standard_normal(6) + 0.5 * history.sum(axis=1)
    regressor = Env2VecRegressor(
        n_lags=3, embedding_dim=10, fnn_hidden=64, gru_hidden=16,
        max_epochs=2, batch_size=64, seed=seed,
    )
    regressor.fit(environments, X, history, y)
    engine = regressor.compile()
    batch = regressor._batch(
        [environments[0]], rng.standard_normal((1, 6)), rng.standard_normal((1, 3))
    )
    return engine, batch


def run_observability_bench(repeats: int = 1000) -> dict:
    engine, batch = _trained_engine()
    OBS.reset()

    # The pre-instrumentation __call__, verbatim: one wrapper frame and one
    # kwargs repack around the compiled plan.
    def _pre_pr_call(**inputs):
        return engine._forward(**inputs)

    def raw():
        _pre_pr_call(**batch)

    def instrumented():
        engine(**batch)

    def disabled():
        with OBS.disabled():
            for _ in range(repeats):
                instrumented()

    # Warm the embedding cache and JIT-ish numpy paths off the clock.
    for _ in range(50):
        raw()

    # raw vs disabled vs enabled, interleaved. The disabled contender wraps
    # its whole inner loop in OBS.disabled() so the toggle itself is not on
    # the per-call clock (production flips the switch once, not per call).
    # Best-of-many: the fixed per-call overhead is deterministic, so each
    # contender's floor is its true cost; the round count mostly buys
    # convergence against scheduler noise on the ~40us numpy forward.
    best = [np.inf, np.inf, np.inf]
    for _ in range(25):
        start = time.perf_counter()
        for _ in range(repeats):
            raw()
        best[0] = min(best[0], time.perf_counter() - start)
        start = time.perf_counter()
        disabled()
        best[1] = min(best[1], time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(repeats):
            instrumented()
        best[2] = min(best[2], time.perf_counter() - start)
    raw_s, disabled_s, enabled_s = best

    # Span overhead: one nested-free span per call, enabled vs disabled.
    def span_enabled():
        with OBS.span("bench.noop"):
            pass

    def span_disabled():
        with OBS.disabled():
            for _ in range(repeats):
                span_enabled()

    span_on_s, span_off_s = np.inf, np.inf
    for _ in range(9):
        start = time.perf_counter()
        for _ in range(repeats):
            span_enabled()
        span_on_s = min(span_on_s, time.perf_counter() - start)
        start = time.perf_counter()
        span_disabled()
        span_off_s = min(span_off_s, time.perf_counter() - start)

    results = {
        "calls": repeats,
        "batch1_streaming": {
            "raw_us_per_call": 1e6 * raw_s / repeats,
            "disabled_us_per_call": 1e6 * disabled_s / repeats,
            "enabled_us_per_call": 1e6 * enabled_s / repeats,
            "disabled_overhead": disabled_s / raw_s - 1.0,
            "enabled_overhead": enabled_s / raw_s - 1.0,
        },
        "span": {
            "enabled_us_per_call": 1e6 * span_on_s / repeats,
            "disabled_us_per_call": 1e6 * span_off_s / repeats,
        },
        "acceptance": {
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
        },
    }
    OBS.reset()
    return results


def _render(results: dict) -> str:
    row = results["batch1_streaming"]
    span = results["span"]
    return "\n".join([
        "Observability overhead — batch-1 streaming forward (compiled Env2Vec)",
        f"  raw (uninstrumented)   {row['raw_us_per_call']:9.2f} us/call",
        f"  instrumented, disabled {row['disabled_us_per_call']:9.2f} us/call "
        f"({100 * row['disabled_overhead']:+.2f}%)",
        f"  instrumented, enabled  {row['enabled_us_per_call']:9.2f} us/call "
        f"({100 * row['enabled_overhead']:+.2f}%)",
        f"  span enter/exit: enabled {span['enabled_us_per_call']:.2f} us, "
        f"disabled {span['disabled_us_per_call']:.2f} us",
    ])


def test_bench_observability(benchmark):
    results = benchmark.pedantic(run_observability_bench, rounds=1, iterations=1)
    emit("observability", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_observability.json").write_text(json.dumps(results, indent=2) + "\n")

    row = results["batch1_streaming"]
    assert row["disabled_overhead"] < MAX_DISABLED_OVERHEAD, (
        f"disabled instrumentation costs {100 * row['disabled_overhead']:.2f}% "
        f"on the hot path; ceiling is {100 * MAX_DISABLED_OVERHEAD:.0f}%"
    )
    assert row["enabled_overhead"] < MAX_ENABLED_OVERHEAD, (
        f"enabled instrumentation costs {100 * row['enabled_overhead']:.2f}% "
        f"on the hot path; ceiling is {100 * MAX_ENABLED_OVERHEAD:.0f}%"
    )


if __name__ == "__main__":
    bench_results = run_observability_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_observability.json").write_text(
        json.dumps(bench_results, indent=2) + "\n"
    )
