"""Benchmark — parallel sharded campaign scoring vs the serial loop.

A campaign day scores a fleet of pending executions that all share one
published model version. The serial orchestrator pays three redundant
costs per execution: it recalibrates the chain's error model (re-predicting
every prior build), rebuilds identical windows, and issues one small
forward per execution. :class:`~repro.parallel.CampaignScorer` computes
each chain's calibration once, memoizes windows, coalesces forwards, and
fans the chains out over a worker pool.

Contenders, per round over the same fleet:

- **serial**: the orchestrator's per-execution monitor loop, transcribed
  verbatim — calibrate, predict, detect for every pending execution;
- **scorer(n)**: a fresh ``CampaignScorer`` with an ``n``-worker thread
  pool (fresh per round, so cache warmup is on the clock).

Acceptance: scorer(4) reaches ≥2x the serial throughput *and* its
reports are byte-identical to the serial loop's. On a single-core
container the speedup is algorithmic (work eliminated, not merely
overlapped); with real cores the pool adds wall-clock overlap on top.
Results go to ``benchmarks/results/BENCH_parallel.json``.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.core.anomaly import ContextualAnomalyDetector, GaussianErrorModel
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.parallel import CampaignScorer, WorkerPool
from repro.workflow import ModelStore, TrainingPipeline

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance floor: scorer(4) throughput over the serial monitor loop.
MIN_SPEEDUP = 2.0

N_LAGS = 3
#: Pending (to-score) executions per chain — the tail of each chain.
K_PENDING = 3
WORKER_COUNTS = (1, 2, 4, 8)


def _fleet():
    """(model, executions, history) — one campaign day at fleet scale."""
    dataset = generate_telecom(
        TelecomConfig(
            n_chains=16,
            n_focus=4,
            builds_per_chain=(7, 9),
            timesteps_per_build=(40, 60),
            include_rare_testbed=False,
            seed=3,
        )
    )
    pipeline = TrainingPipeline(
        ModelStore(),
        n_lags=N_LAGS,
        model_params={"max_epochs": 3, "batch_size": 256, "dropout": 0.0},
        seed=0,
    )
    model = pipeline.train(dataset.history_training_series()).model
    model.compile()
    executions, history = [], {}
    for chain in dataset.chains:
        history[chain.executions[0].environment.chain_key] = list(
            chain.executions[:-K_PENDING]
        )
        executions.extend(chain.executions[-K_PENDING:])
    return model, executions, history


def _serial_round(model, detector, executions, history):
    """The serial orchestrator's monitor loop: recalibrate per execution."""

    def predict(execution):
        X, h, y = build_windows(execution.features, execution.cpu, N_LAGS)
        return model.predict([execution.environment] * len(y), X, h), y

    def error_model(chain_key):
        errors = []
        for execution in history.get(chain_key, []):
            if execution.n_timesteps <= N_LAGS + 1:
                continue
            predictions, observed = predict(execution)
            errors.append(predictions - observed)
        if not errors:
            return None
        return GaussianErrorModel.fit(np.concatenate(errors))

    reports = []
    for execution in executions:
        if execution.n_timesteps <= N_LAGS + 1:
            reports.append(None)
            continue
        predictions, observed = predict(execution)
        em = error_model(execution.environment.chain_key)
        if em is None:
            reports.append(detector.detect_self_calibrated(predictions, observed))
        else:
            reports.append(detector.detect(predictions, observed, em))
    return reports


def _scorer_round(model, detector, executions, history, n_workers):
    scorer = CampaignScorer(
        detector, N_LAGS, pool=WorkerPool(n_workers, kind="threads")
    )
    try:
        return scorer.score(model, executions, history, masked=set())
    finally:
        scorer.pool.close()


def _best_of(rounds, *contenders):
    best = [np.inf] * len(contenders)
    for _ in range(rounds):
        for slot, contender in enumerate(contenders):
            start = time.perf_counter()
            contender()
            best[slot] = min(best[slot], time.perf_counter() - start)
    return best


def _assert_byte_identical(serial_reports, scores):
    assert len(serial_reports) == len(scores)
    for serial, score in zip(serial_reports, scores):
        assert (serial is None) == (score.report is None)
        if serial is None:
            continue
        assert score.report.flags.tobytes() == serial.flags.tobytes()
        assert score.report.errors.tobytes() == serial.errors.tobytes()
        assert score.report.alarms == serial.alarms


def run_parallel_bench(rounds: int = 7) -> dict:
    model, executions, history = _fleet()
    detector = ContextualAnomalyDetector(gamma=2.5, abs_threshold=5.0)

    # Correctness gate first: the merge contract, bitwise.
    serial_reports = _serial_round(model, detector, executions, history)
    scores = _scorer_round(model, detector, executions, history, n_workers=4)
    _assert_byte_identical(serial_reports, scores)

    # Warm numpy dispatch and the compiled engine off the clock.
    _serial_round(model, detector, executions, history)

    (serial_s,) = _best_of(
        rounds, lambda: _serial_round(model, detector, executions, history)
    )
    scaling = {}
    for n_workers in WORKER_COUNTS:
        (scorer_s,) = _best_of(
            rounds,
            lambda n=n_workers: _scorer_round(model, detector, executions, history, n),
        )
        scaling[n_workers] = {
            "ms_per_round": 1e3 * scorer_s,
            "speedup_vs_serial": serial_s / scorer_s,
            "executions_per_second": len(executions) / scorer_s,
        }
    return {
        "fleet": {
            "executions": len(executions),
            "chains": len(history),
            "pending_per_chain": K_PENDING,
            "rounds": rounds,
        },
        "serial": {
            "ms_per_round": 1e3 * serial_s,
            "executions_per_second": len(executions) / serial_s,
        },
        "scorer": {str(n): stats for n, stats in scaling.items()},
        "byte_identical": True,
        "acceptance": {"min_speedup_at_4_workers": MIN_SPEEDUP},
    }


def _render(results: dict) -> str:
    fleet = results["fleet"]
    lines = [
        "Parallel campaign scoring — "
        f"{fleet['executions']} executions over {fleet['chains']} chains "
        f"({fleet['pending_per_chain']} pending each)",
        f"  serial monitor loop   {results['serial']['ms_per_round']:8.1f} ms/round "
        f"({results['serial']['executions_per_second']:7.1f} exec/s)",
    ]
    for n, stats in results["scorer"].items():
        lines.append(
            f"  CampaignScorer  n={n:<3} {stats['ms_per_round']:8.1f} ms/round "
            f"({stats['executions_per_second']:7.1f} exec/s, "
            f"{stats['speedup_vs_serial']:.2f}x)"
        )
    lines.append(
        "  reports byte-identical to serial: "
        f"{results['byte_identical']}"
    )
    return "\n".join(lines)


def test_bench_parallel(benchmark):
    results = benchmark.pedantic(run_parallel_bench, rounds=1, iterations=1)
    emit("parallel", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(json.dumps(results, indent=2) + "\n")

    speedup = results["scorer"]["4"]["speedup_vs_serial"]
    assert results["byte_identical"]
    assert speedup >= MIN_SPEEDUP, (
        f"4-worker campaign scoring reached only {speedup:.2f}x over the "
        f"serial loop; floor is {MIN_SPEEDUP:.1f}x"
    )


if __name__ == "__main__":
    bench_results = run_parallel_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(bench_results, indent=2) + "\n"
    )
