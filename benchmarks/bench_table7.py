"""Table 7 — explaining the under-performing execution by testbed coverage.

Paper shape being reproduced: at γ=1, Env2Vec's weakest focus execution is
the one whose testbed is barely covered in the training data (17 examples
vs thousands for the others) — EM coverage in training governs embedding
quality (§6).
"""

from conftest import emit
from repro.core import field_coverage
from repro.eval import run_anomaly_table, run_coverage_table


def test_table7(benchmark, telecom_dataset, env2vec_model):
    table5 = run_anomaly_table(
        telecom_dataset, env2vec_model, None, gammas=(1.0,), include_htm=False, include_ridge=False
    )
    result = benchmark.pedantic(
        lambda: run_coverage_table(telecom_dataset, table5), rounds=1, iterations=1
    )

    # Locate the rare-testbed chain (generated with 17 history timesteps).
    rare = next(c for c in telecom_dataset.chains if c.key[0] == "Testbed_rare")
    training_envs = [env for env, _, _ in telecom_dataset.history_training_series()]
    rare_coverage = field_coverage(rare.current.environment, training_envs)

    text = "\n".join(
        [
            result.table(),
            "",
            f"under-performing chain: {result.under_key}",
            f"rare-testbed chain coverage (training envs sharing its testbed): "
            f"{rare_coverage['testbed']}",
        ]
    )
    emit("table7", text)

    # The weakest execution under-performs the rest on A_T.
    assert result.under_a_t <= result.rest_a_t_mean

    # The rare testbed's training coverage is minuscule compared to the
    # corpus mean (paper: 17 examples / 0.004% vs 12,313 ± 5,097 / 3.15%).
    rest_examples = result.rest_examples_mean
    rare_examples = sum(
        max(0, len(cpu) - 3)
        for env, _, cpu in telecom_dataset.history_training_series()
        if env.testbed == "Testbed_rare"
    )
    assert rare_examples < rest_examples * 0.05
    assert rare_coverage["testbed"] == 1  # only its own single history build
