"""Ablation — the 5% absolute-deviation alarm filter (§4.2.2).

The paper filters predicted anomalies to those whose absolute deviation
also exceeds 5% CPU, "a common practice to reduce false alarms". This
ablation disables the filter and confirms it is what keeps the alarm count
manageable at low γ: without it, alarms multiply and precision drops.
"""

from conftest import emit
from repro.core import ContextualAnomalyDetector, GaussianErrorModel, score_alarms
from repro.eval.telecom_experiments import _predict_execution, _problem_intervals

import numpy as np


def _detect(dataset, model, abs_threshold: float, gamma: float = 1.0, n_lags: int = 3):
    detector = ContextualAnomalyDetector(gamma=gamma, abs_threshold=abs_threshold)
    total_alarms = total_correct = 0
    for chain in dataset.focus_chains:
        errors = []
        for execution in chain.history:
            predicted, observed = _predict_execution(model, execution, n_lags)
            errors.append(predicted - observed)
        error_model = GaussianErrorModel.fit(np.concatenate(errors))
        predicted, observed = _predict_execution(model, chain.current, n_lags)
        report = detector.detect(predicted, observed, error_model)
        truth = chain.current.anomaly_mask()[n_lags:]
        score = score_alarms(report.alarms, truth, _problem_intervals(chain.current, n_lags))
        total_alarms += score.n_alarms
        total_correct += score.correct_alarms
    return total_alarms, total_correct


def test_ablation_abs_filter(benchmark, telecom_dataset, env2vec_model):
    with_filter, without_filter = benchmark.pedantic(
        lambda: (
            _detect(telecom_dataset, env2vec_model, abs_threshold=5.0),
            _detect(telecom_dataset, env2vec_model, abs_threshold=0.0),
        ),
        rounds=1,
        iterations=1,
    )
    a_filtered, c_filtered = with_filter
    a_raw, c_raw = without_filter
    at_filtered = c_filtered / a_filtered if a_filtered else 0.0
    at_raw = c_raw / a_raw if a_raw else 0.0

    emit(
        "ablation_filter",
        "\n".join(
            [
                "Ablation — 5% absolute-deviation alarm filter (γ=1)",
                f"  with filter    : alarms={a_filtered:<5} correct={c_filtered:<5} A_T={at_filtered:.3f}",
                f"  without filter : alarms={a_raw:<5} correct={c_raw:<5} A_T={at_raw:.3f}",
            ]
        ),
    )

    # Removing the filter floods the tester with alarms and hurts precision.
    assert a_raw > a_filtered * 1.5
    assert at_filtered > at_raw
