"""Benchmark — repro.analysis full-repo scan latency.

The lint engine runs inside tier-1 (tests/analysis/test_repo_clean.py and
tests/test_lint.py), so its cost is paid on every test session. One AST
parse per file and one dispatch-driven walk must keep the whole-repo scan
(src + tests + benchmarks, all eight rules) comfortably inside the test
budget.

Acceptance: the full scan completes in under 5 seconds. Per-file and
per-rule timings go to ``benchmarks/results/BENCH_analysis.json``.
"""

import json
import time
from pathlib import Path

from repro.analysis import Analyzer, default_registry

RESULTS_DIR = Path(__file__).parent / "results"
REPO = Path(__file__).resolve().parent.parent

#: Whole-repo scan ceiling, in seconds.
MAX_SCAN_SECONDS = 5.0

SCAN_ROOTS = ("src", "tests", "benchmarks")


def run_analysis_bench(rounds: int = 3) -> dict:
    paths = [REPO / root for root in SCAN_ROOTS]

    best_s, result = float("inf"), None
    for _ in range(rounds):
        analyzer = Analyzer(default_registry())
        start = time.perf_counter()
        result = analyzer.analyze_paths(paths, root=REPO)
        best_s = min(best_s, time.perf_counter() - start)

    # Per-rule cost: scan src/ with one rule at a time, so the totals show
    # where a future slow rule would hide.
    per_rule_ms = {}
    for rule in default_registry():
        registry = type(default_registry())()
        registry.register(type(rule))
        analyzer = Analyzer(registry)
        start = time.perf_counter()
        analyzer.analyze_paths([REPO / "src"], root=REPO)
        per_rule_ms[rule.id] = 1e3 * (time.perf_counter() - start)

    return {
        "scan_roots": list(SCAN_ROOTS),
        "files_scanned": result.n_files,
        "scan_seconds_best_of": best_s,
        "rounds": rounds,
        "us_per_file": 1e6 * best_s / max(1, result.n_files),
        "findings_pre_baseline": len(result.findings),
        "parse_errors": len(result.parse_errors),
        "per_rule_src_scan_ms": per_rule_ms,
    }


def _render(results: dict) -> str:
    lines = [
        "repro.analysis — full-repo scan (all rules, one AST pass per file)",
        f"  files scanned          {results['files_scanned']:6d}",
        f"  scan wall time         {results['scan_seconds_best_of']:8.3f} s "
        f"(best of {results['rounds']})",
        f"  per file               {results['us_per_file']:8.0f} us",
        f"  findings (pre-baseline){results['findings_pre_baseline']:6d}",
        "  per-rule src/ scan:",
    ]
    for rule_id, ms in sorted(results["per_rule_src_scan_ms"].items()):
        lines.append(f"    {rule_id}  {ms:8.1f} ms")
    return "\n".join(lines)


def test_bench_analysis(benchmark):
    from conftest import emit

    results = benchmark.pedantic(run_analysis_bench, rounds=1, iterations=1)
    emit("analysis", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_analysis.json").write_text(json.dumps(results, indent=2) + "\n")

    assert results["scan_seconds_best_of"] < MAX_SCAN_SECONDS, (
        f"full-repo scan took {results['scan_seconds_best_of']:.2f}s; "
        f"ceiling is {MAX_SCAN_SECONDS:.0f}s"
    )
    assert results["parse_errors"] == 0


if __name__ == "__main__":
    bench_results = run_analysis_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_analysis.json").write_text(
        json.dumps(bench_results, indent=2) + "\n"
    )
