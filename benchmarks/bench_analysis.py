"""Benchmark — repro.analysis two-phase whole-program scan latency.

The analyzer runs inside tier-1 (tests/analysis/test_repo_clean.py and
tests/test_lint.py), so its cost is paid on every test session. Phase 1
is one AST parse + walk per file; phase 2 links every file's summary and
runs the cross-file rules (REP013-REP016) over the program model. The
incremental cache must make warm scans (nothing changed) much cheaper
than cold ones, or tier-1 pays the full price twice per session.

Acceptance: the cold full scan (src + tests + benchmarks, both phases)
completes in under 8 seconds, and a warm incremental scan of the same
tree in under 2 seconds. Timings go to
``benchmarks/results/BENCH_analysis.json``.
"""

import ast
import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis import Analyzer, AnalysisCache, default_registry, iter_python_files
from repro.analysis.program import ALL_CROSS_RULES, ProgramModel
from repro.analysis.rules import RULESET_VERSION
from repro.analysis.summaries import summarize_module

RESULTS_DIR = Path(__file__).parent / "results"
REPO = Path(__file__).resolve().parent.parent

#: Cold whole-repo two-phase scan ceiling, in seconds.
MAX_SCAN_SECONDS = 8.0
#: Warm (cache-hit) incremental scan ceiling, in seconds.
MAX_WARM_SCAN_SECONDS = 2.0

SCAN_ROOTS = ("src", "tests", "benchmarks")


def run_analysis_bench(rounds: int = 3) -> dict:
    paths = [REPO / root for root in SCAN_ROOTS]

    # -- cold scan: both phases, no cache ----------------------------------
    best_s, result = float("inf"), None
    for _ in range(rounds):
        analyzer = Analyzer(default_registry())
        start = time.perf_counter()
        result = analyzer.analyze_paths(paths, root=REPO)
        best_s = min(best_s, time.perf_counter() - start)

    # -- warm scan: phase 1 replayed from the incremental cache ------------
    cache_dir = Path(tempfile.mkdtemp(prefix="repro_analysis_bench_"))
    try:
        cache = AnalysisCache(cache_dir, ruleset_version=RULESET_VERSION)
        Analyzer(default_registry()).analyze_paths(paths, root=REPO, cache=cache)
        best_warm_s, warm = float("inf"), None
        for _ in range(rounds):
            analyzer = Analyzer(default_registry())
            start = time.perf_counter()
            warm = analyzer.analyze_paths(paths, root=REPO, cache=cache)
            best_warm_s = min(best_warm_s, time.perf_counter() - start)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # -- per-rule cost ------------------------------------------------------
    # phase 1: scan src/ with one rule at a time (cross phase disabled), so
    # the totals show where a future slow rule would hide
    per_rule_ms = {}
    for rule in default_registry():
        registry = type(default_registry())()
        registry.register(type(rule))
        analyzer = Analyzer(registry, cross_rules=())
        start = time.perf_counter()
        analyzer.analyze_paths([REPO / "src"], root=REPO)
        per_rule_ms[rule.id] = 1e3 * (time.perf_counter() - start)

    # phase 2: summarize + link src/ once, then time each cross rule's run
    # over the shared program model
    summaries = []
    for file_path in iter_python_files([REPO / "src"]):
        rel = file_path.resolve().relative_to(REPO).as_posix()
        summaries.append(summarize_module(ast.parse(file_path.read_text()), rel))
    start = time.perf_counter()
    program = ProgramModel(summaries)
    link_build_ms = 1e3 * (time.perf_counter() - start)
    for rule_cls in ALL_CROSS_RULES:
        rule = rule_cls()
        start = time.perf_counter()
        list(rule.run(program))
        per_rule_ms[rule.id] = 1e3 * (time.perf_counter() - start)

    return {
        "scan_roots": list(SCAN_ROOTS),
        "files_scanned": result.n_files,
        "scan_seconds_best_of": best_s,
        "warm_scan_seconds_best_of": best_warm_s,
        "warm_cache_hits": warm.n_cache_hits,
        "link_seconds": result.link_seconds,
        "rounds": rounds,
        "us_per_file": 1e6 * best_s / max(1, result.n_files),
        "findings_pre_baseline": len(result.findings),
        "parse_errors": len(result.parse_errors),
        "per_rule_src_scan_ms": per_rule_ms,
        "link_build_src_ms": link_build_ms,
        "ruleset_version": RULESET_VERSION,
    }


def _render(results: dict) -> str:
    lines = [
        "repro.analysis — two-phase whole-program scan (per-file + cross-file)",
        f"  files scanned          {results['files_scanned']:6d}",
        f"  cold scan wall time    {results['scan_seconds_best_of']:8.3f} s "
        f"(best of {results['rounds']})",
        f"  warm scan wall time    {results['warm_scan_seconds_best_of']:8.3f} s "
        f"({results['warm_cache_hits']} cache hits)",
        f"  phase-2 link time      {results['link_seconds']:8.3f} s",
        f"  per file (cold)        {results['us_per_file']:8.0f} us",
        f"  findings (pre-baseline){results['findings_pre_baseline']:6d}",
        "  per-rule src/ scan (REP001-012: full pass; REP013-016: rule run only):",
    ]
    for rule_id, ms in sorted(results["per_rule_src_scan_ms"].items()):
        lines.append(f"    {rule_id}  {ms:8.1f} ms")
    lines.append(f"  program-model build    {results['link_build_src_ms']:8.1f} ms")
    return "\n".join(lines)


def test_bench_analysis(benchmark):
    from conftest import emit

    results = benchmark.pedantic(run_analysis_bench, rounds=1, iterations=1)
    emit("analysis", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_analysis.json").write_text(json.dumps(results, indent=2) + "\n")

    assert results["scan_seconds_best_of"] < MAX_SCAN_SECONDS, (
        f"cold full-repo scan took {results['scan_seconds_best_of']:.2f}s; "
        f"ceiling is {MAX_SCAN_SECONDS:.0f}s"
    )
    assert results["warm_scan_seconds_best_of"] < MAX_WARM_SCAN_SECONDS, (
        f"warm incremental scan took {results['warm_scan_seconds_best_of']:.2f}s; "
        f"ceiling is {MAX_WARM_SCAN_SECONDS:.0f}s"
    )
    assert results["warm_cache_hits"] == results["files_scanned"], (
        "warm scan should replay every file from the cache"
    )
    assert results["parse_errors"] == 0


if __name__ == "__main__":
    bench_results = run_analysis_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_analysis.json").write_text(
        json.dumps(bench_results, indent=2) + "\n"
    )
