"""Shared fixtures for the benchmark harness.

The telecom corpus and the two pooled models (Env2Vec, RFNN_all) are
expensive to build, so they are created once per session and shared by all
telecom benchmarks. Dataset generation and model training happen *outside*
the timed sections; each benchmark times its own experiment driver.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
reproduced tables inline. Every benchmark also appends its rendered output
to ``benchmarks/results/`` so the tables survive output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.eval import run_chain_mae, train_env2vec_telecom, train_rfnn_all_telecom

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def telecom_dataset():
    """The paper-scale corpus: 125 chains, 11 focus executions."""
    return generate_telecom(TelecomConfig())


@pytest.fixture(scope="session")
def env2vec_model(telecom_dataset):
    """The single Env2Vec model trained on all historical executions."""
    return train_env2vec_telecom(telecom_dataset, fast=False)


@pytest.fixture(scope="session")
def rfnn_all_model(telecom_dataset):
    """The pooled no-embeddings baseline."""
    return train_rfnn_all_telecom(telecom_dataset, fast=False)


@pytest.fixture(scope="session")
def chain_mae_result(telecom_dataset, env2vec_model, rfnn_all_model):
    """Per-chain MAE/MSE shared by the Figure 3 and Figure 4 benchmarks."""
    return run_chain_mae(telecom_dataset, env2vec_model, rfnn_all_model)
