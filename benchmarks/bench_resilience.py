"""Benchmark — resilience overhead on the clean collection path.

The resilience layer (retry-wrapped writes, gap accounting, grid-aligned
read-back, chaos hooks) promises to cost essentially nothing when the
testbed is healthy. This benchmark replays 40 telecom executions two ways:

- **baseline**: the pre-resilience collector path, verbatim — one
  ``collector.collect`` span, the three legacy ingestion counters, a
  direct ``tsdb.write_array`` per series, and an exact ``query_one``
  read-back per execution;
- **clean**: :class:`~repro.workflow.MetricCollector` with no
  :class:`~repro.resilience.ChaosProfile` attached — the full degradation
  ladder armed (retry policy on every write, expected-grid bookkeeping,
  quarantine thresholds) but never triggered.

Acceptance: the clean path costs ≤3% over baseline. A micro section
reports the per-call price of each policy primitive (``Retry.call``,
``CircuitBreaker`` context, ``Deadline`` context) against a direct call,
for the record rather than for a hard gate. Results go to
``benchmarks/results/BENCH_resilience.json``.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.data import TelecomConfig, generate_telecom
from repro.obs import get_observability
from repro.resilience import CircuitBreaker, Deadline, Retry
from repro.workflow import EMRegistry, MetricCollector, TimeSeriesDB

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance ceiling: clean-path collection+read-back vs the
#: pre-resilience collector.
MAX_CLEAN_OVERHEAD = 0.03

#: Executions replayed per timed round (grid interval matches production).
N_EXECUTIONS = 40
INTERVAL = 900.0

_OBS = get_observability()
_M_EXECUTIONS = _OBS.counter(
    "repro_executions_collected_total", "Test executions replayed into the TSDB."
)
_M_SERIES = _OBS.counter(
    "repro_series_ingested_total", "Series written per collected execution."
)
_M_SAMPLES = _OBS.counter(
    "repro_samples_ingested_total", "Samples written into the workload TSDB."
)


def _corpus():
    dataset = generate_telecom(
        TelecomConfig(
            n_chains=8,
            n_testbeds=4,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=2,
            include_rare_testbed=False,
            fault_magnitude=(14.0, 25.0),
            seed=4,
        )
    )
    executions = [e for chain in dataset.chains for e in chain.executions]
    executions = executions[:N_EXECUTIONS]
    names = [f"feature_{i:02d}" for i in range(executions[0].features.shape[1])]
    return executions, names


def _baseline_round(executions, names):
    """The pre-resilience collector, replicated verbatim: span + legacy
    counters + direct per-series writes, then an exact read-back."""
    tsdb = TimeSeriesDB()
    registry = EMRegistry()
    ids = []
    for i, execution in enumerate(executions):
        with _OBS.span("collector.collect"):
            record_id = registry.register(execution.environment)
            labels = {"env": record_id}
            n = execution.n_timesteps
            timestamps = i * 1e6 + INTERVAL * np.arange(n)
            rows = np.column_stack([execution.features, execution.cpu])
            for column, name in enumerate(names):
                tsdb.write_array(name, labels, timestamps, rows[:, column])
            tsdb.write_array("cpu_usage", labels, timestamps, rows[:, -1])
            _M_EXECUTIONS.inc()
            _M_SERIES.inc(len(names) + 1)
            _M_SAMPLES.inc(n * (len(names) + 1))
        ids.append(record_id)
    for record_id in ids:
        labels = {"env": record_id}
        _, cpu = tsdb.query_one("cpu_usage", labels).as_arrays()
        columns = [tsdb.query_one(name, labels).as_arrays()[1] for name in names]
        np.stack(columns, axis=1)


def _clean_round(executions, names):
    """The resilience-era collector with the ladder armed but untriggered."""
    tsdb = TimeSeriesDB()
    collector = MetricCollector(
        tsdb, EMRegistry(), feature_names=names, interval=INTERVAL
    )
    ids = [
        collector.collect(execution, start_time=i * 1e6)
        for i, execution in enumerate(executions)
    ]
    for record_id in ids:
        collector.read_back(record_id)


def _best_of(rounds, *contenders):
    best = [np.inf] * len(contenders)
    for _ in range(rounds):
        for slot, contender in enumerate(contenders):
            start = time.perf_counter()
            contender()
            best[slot] = min(best[slot], time.perf_counter() - start)
    return best


def _policy_micro(repeats: int = 20000) -> dict:
    """Per-call cost of each policy primitive around a trivial workload."""

    def work():
        return 1 + 1

    retry = Retry(max_attempts=5, name="bench-retry")
    breaker = CircuitBreaker(failure_threshold=5, name="bench-breaker")

    def direct():
        for _ in range(repeats):
            work()

    def retried():
        for _ in range(repeats):
            retry.call(work)

    def breakered():
        for _ in range(repeats):
            with breaker:
                work()

    def deadlined():
        for _ in range(repeats):
            with Deadline(60.0, name="bench-deadline"):
                work()

    direct_s, retry_s, breaker_s, deadline_s = _best_of(
        9, direct, retried, breakered, deadlined
    )
    return {
        "calls": repeats,
        "direct_us_per_call": 1e6 * direct_s / repeats,
        "retry_call_us_per_call": 1e6 * retry_s / repeats,
        "breaker_cm_us_per_call": 1e6 * breaker_s / repeats,
        "deadline_cm_us_per_call": 1e6 * deadline_s / repeats,
    }


def run_resilience_bench(rounds: int = 21) -> dict:
    executions, names = _corpus()

    # Warm numpy dispatch and the metric-handle caches off the clock.
    _baseline_round(executions, names)
    _clean_round(executions, names)

    base_s, clean_s = _best_of(
        rounds,
        lambda: _baseline_round(executions, names),
        lambda: _clean_round(executions, names),
    )
    total_samples = sum(e.n_timesteps for e in executions)
    results = {
        "collection": {
            "executions": len(executions),
            "samples": total_samples,
            "rounds": rounds,
            "baseline_ms_per_round": 1e3 * base_s,
            "clean_ms_per_round": 1e3 * clean_s,
            "clean_overhead": clean_s / base_s - 1.0,
        },
        "policy_micro": _policy_micro(),
        "acceptance": {"max_clean_overhead": MAX_CLEAN_OVERHEAD},
    }
    return results


def _render(results: dict) -> str:
    col = results["collection"]
    micro = results["policy_micro"]
    return "\n".join([
        "Resilience overhead — clean collection path "
        f"({col['executions']} executions, {col['samples']} samples)",
        f"  pre-resilience baseline {col['baseline_ms_per_round']:8.2f} ms/round",
        f"  collector, ladder armed {col['clean_ms_per_round']:8.2f} ms/round "
        f"({100 * col['clean_overhead']:+.2f}%)",
        "Policy primitives (per call, trivial workload)",
        f"  direct call      {micro['direct_us_per_call']:6.3f} us",
        f"  Retry.call       {micro['retry_call_us_per_call']:6.3f} us",
        f"  CircuitBreaker   {micro['breaker_cm_us_per_call']:6.3f} us",
        f"  Deadline         {micro['deadline_cm_us_per_call']:6.3f} us",
    ])


def test_bench_resilience(benchmark):
    results = benchmark.pedantic(run_resilience_bench, rounds=1, iterations=1)
    emit("resilience", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(json.dumps(results, indent=2) + "\n")

    overhead = results["collection"]["clean_overhead"]
    assert overhead < MAX_CLEAN_OVERHEAD, (
        f"clean-path resilience costs {100 * overhead:.2f}% over the "
        f"pre-resilience collector; ceiling is {100 * MAX_CLEAN_OVERHEAD:.0f}%"
    )


if __name__ == "__main__":
    bench_results = run_resilience_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(
        json.dumps(bench_results, indent=2) + "\n"
    )
