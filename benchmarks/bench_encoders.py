"""Benchmark — compiled inference throughput of every registered encoder.

The SequenceEncoder registry decouples the time-series branch from the
Env2Vec head; this benchmark measures the cost of each choice in the two
serving shapes that matter (§3 steps 3-5):

- **batch-1 streaming**: one prediction per call (production monitoring);
- **batch-256 throughput**: one vectorized call (calibration/backfill),

each through the compiled tape-free closure from ``compile_module``. Every
encoder is verified against its autograd forward (≤1e-10) before timing.
Results go to ``benchmarks/results/BENCH_encoders.json`` plus the usual
rendered table. New encoders registered via ``@register_encoder`` are
picked up automatically.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import emit
from repro.nn import available_encoders, compile_module, create_encoder

RESULTS_DIR = Path(__file__).parent / "results"

N_LAGS = 3
HIDDEN = 16
SEED = 0


def _best_of(fn, repeats: int, rounds: int = 7) -> float:
    """Best-of-``rounds`` wall time for ``repeats`` back-to-back calls."""
    best = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_encoder_bench(n_stream: int = 300) -> dict:
    rng = np.random.default_rng(SEED)
    stream = rng.standard_normal((1, N_LAGS, 1))
    big = rng.standard_normal((256, N_LAGS, 1))

    results = {}
    for name in available_encoders():
        encoder = create_encoder(name, 1, HIDDEN, rng=np.random.default_rng(SEED))
        encoder.eval()
        engine = compile_module(encoder)
        engine.assert_close({"sequence": stream}, atol=1e-10)
        engine.assert_close({"sequence": big}, atol=1e-10)

        stream_s = _best_of(lambda: engine(sequence=stream), n_stream)
        batch_repeats = max(1, n_stream // 10)
        big_s = _best_of(lambda: engine(sequence=big), batch_repeats)
        results[name] = {
            "output_dim": encoder.output_dim,
            "n_parameters": sum(p.data.size for _, p in encoder.named_parameters()),
            "batch1_us_per_call": 1e6 * stream_s / n_stream,
            "batch256_us_per_call": 1e6 * big_s / batch_repeats,
            "batch256_rows_per_s": 256 * batch_repeats / big_s,
        }
    return results


def _render(results: dict) -> str:
    lines = ["Encoder zoo — compiled inference cost per registered encoder"]
    baseline = results.get("gru")
    for name, row in results.items():
        relative = row["batch1_us_per_call"] / baseline["batch1_us_per_call"]
        lines.append(
            f"  {name:<16} params={row['n_parameters']:5d}  "
            f"batch1={row['batch1_us_per_call']:7.1f}us  "
            f"batch256={row['batch256_us_per_call']:8.1f}us  "
            f"({row['batch256_rows_per_s'] / 1e3:7.1f}k rows/s)  "
            f"vs gru={relative:4.2f}x"
        )
    return "\n".join(lines)


def test_bench_encoders(benchmark):
    results = benchmark.pedantic(run_encoder_bench, rounds=1, iterations=1)
    emit("encoders", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_encoders.json").write_text(json.dumps(results, indent=2) + "\n")

    assert set(results) == set(available_encoders())
    for name, row in results.items():
        assert row["batch1_us_per_call"] > 0, name
        # a 256-row call must amortize far better than 256 streaming calls
        assert row["batch256_us_per_call"] < 256 * row["batch1_us_per_call"], name


if __name__ == "__main__":
    bench_results = run_encoder_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_encoders.json").write_text(
        json.dumps(bench_results, indent=2) + "\n"
    )
