"""Benchmark — the serving frontier: micro-batching vs per-request.

An always-on deployment monitors live chains: each request carries the
newest telemetry tail of one chain's current execution (the increment
that arrived since the last scrape), and CI triggers land requests in
bursts. Per-request serving pays the full fixed cost of a pipeline
execution — kernel-plan dispatch, window construction, event-loop
round-trips — for every single tail. The ``repro.serve`` micro-batcher
coalesces whatever is queued into one
:meth:`~repro.workflow.PredictionPipeline.execute` call, amortizing all
of it; because every compiled kernel is row-wise, the coalesced results
are byte-identical to per-request ones, so the trade is purely
latency-vs-throughput.

Contenders, over the same 1000-chain workload and the same seeded bursty
arrival schedule: ``max_batch`` ∈ {1, 4, 16, 64, 256} (``max_batch=1``
*is* per-request serving — the admission queue drains one request per
batch). Each contender replays the schedule three times; medians are
reported to damp scheduler noise.

Acceptance, enforced at the knee (the smallest ``max_batch`` reaching
≥90% of the best median throughput):

- knee throughput ≥3x per-request throughput, at equal-or-better p95;
- p99 ≤ 5x p50 at the knee (no long-tail collapse from coalescing);
- coalesced responses byte-identical to batch ``execute`` (gate runs
  before any timing).

Results go to ``benchmarks/results/BENCH_serving.json``.
"""

import asyncio
import json
import statistics
from pathlib import Path

from conftest import emit
from repro.data import TelecomConfig, generate_telecom
from repro.data.chains import TestExecution
from repro.serve import (
    Env2VecService,
    LoadProfile,
    PredictRequest,
    ServeConfig,
    arrival_offsets,
    run_load,
)
from repro.workflow import (
    AlarmStore,
    ModelStore,
    PredictBatch,
    PredictionPipeline,
    TrainingPipeline,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance floor: knee throughput over per-request (max_batch=1).
MIN_SPEEDUP = 3.0
#: Long-tail guard at the knee.
MAX_P99_OVER_P50 = 5.0
#: A contender is "at the knee" once it reaches this share of the best.
KNEE_FRACTION = 0.9

BATCH_SIZES = (1, 4, 16, 64, 256)
N_CHAINS = 1000
#: Timesteps per streaming request — the tail of the chain's current
#: execution (newest telemetry since the previous monitoring pass).
TAIL_TIMESTEPS = 8
TRIALS = 3
N_LAGS = 3


def _workload():
    """(store, requests, offsets): 1000 live chains on a bursty schedule."""
    dataset = generate_telecom(
        TelecomConfig(
            n_chains=N_CHAINS,
            n_testbeds=30,
            builds_per_chain=(2, 3),
            timesteps_per_build=(40, 50),
            n_focus=4,
            include_rare_testbed=False,
            seed=7,
        )
    )
    store = ModelStore()
    corpus = [
        (e.environment, e.features, e.cpu)
        for chain in dataset.chains[:100]
        for e in chain.history
    ]
    TrainingPipeline(
        store,
        n_lags=N_LAGS,
        model_params={"max_epochs": 4, "batch_size": 512, "dropout": 0.0},
        seed=0,
    ).train(corpus)

    def tail(execution: TestExecution) -> TestExecution:
        return TestExecution(
            environment=execution.environment,
            features=execution.features[-TAIL_TIMESTEPS:],
            cpu=execution.cpu[-TAIL_TIMESTEPS:],
        )

    requests = [
        PredictRequest(execution=tail(chain.current), request_id=str(i))
        for i, chain in enumerate(dataset.chains)
    ]
    offsets = arrival_offsets(
        LoadProfile(n_requests=N_CHAINS, burst_size=32.0, burst_gap=0.0005, seed=7)
    )
    return store, requests, offsets


def _assert_byte_identical(store, requests) -> None:
    """Coalesced serving == one batch execute, byte for byte."""
    executions = [request.execution for request in requests]
    reference = PredictionPipeline(store, AlarmStore()).execute(
        PredictBatch(tuple(executions))
    )

    async def scenario():
        service = Env2VecService(
            store, config=ServeConfig(max_batch=64, max_wait=0.002, max_queue_depth=4096)
        )
        async with service:
            return await service.client().predict_many(requests)

    responses = asyncio.run(scenario())
    assert any(response.batch_size > 1 for response in responses)
    for response, run in zip(responses, reference):
        assert response.status == "ok"
        assert response.run.predictions.tobytes() == run.predictions.tobytes()
        assert response.run.observations.tobytes() == run.observations.tobytes()
        assert response.run.alarm_ids == run.alarm_ids


def _run_trial(store, requests, offsets, max_batch: int):
    async def scenario():
        service = Env2VecService(
            store,
            config=ServeConfig(
                max_batch=max_batch, max_wait=0.001, max_queue_depth=4096
            ),
        )
        async with service:
            client = service.client()
            # Warm the first-dispatch numpy paths off the clock.
            await run_load(client, requests[:64], offsets[:64], max_retries=0)
            return await run_load(client, requests, offsets, max_retries=0)

    return asyncio.run(scenario())


def run_serving_bench() -> dict:
    store, requests, offsets = _workload()

    # Correctness gate first: coalescing must not change a single byte.
    _assert_byte_identical(store, requests)

    contenders = {}
    for max_batch in BATCH_SIZES:
        reports = [_run_trial(store, requests, offsets, max_batch) for _ in range(TRIALS)]
        assert all(r.n_failed == 0 and r.n_rejected == 0 for r in reports)
        contenders[max_batch] = {
            "throughput_rps": statistics.median(r.throughput for r in reports),
            "p50_ms": statistics.median(r.percentile(50) for r in reports) * 1e3,
            "p95_ms": statistics.median(r.percentile(95) for r in reports) * 1e3,
            "p99_ms": statistics.median(r.percentile(99) for r in reports) * 1e3,
            "trials_rps": sorted(r.throughput for r in reports),
        }

    best = max(stats["throughput_rps"] for stats in contenders.values())
    knee = min(
        mb
        for mb, stats in contenders.items()
        if stats["throughput_rps"] >= KNEE_FRACTION * best
    )
    return {
        "workload": {
            "n_chains": N_CHAINS,
            "n_requests": len(requests),
            "tail_timesteps": TAIL_TIMESTEPS,
            "burst_size": 32.0,
            "burst_gap_seconds": 0.0005,
            "trials_per_contender": TRIALS,
        },
        "contenders": {str(mb): stats for mb, stats in contenders.items()},
        "knee_max_batch": knee,
        "speedup_at_knee": contenders[knee]["throughput_rps"]
        / contenders[1]["throughput_rps"],
        "byte_identical": True,
        "acceptance": {
            "min_speedup_at_knee": MIN_SPEEDUP,
            "max_p99_over_p50_at_knee": MAX_P99_OVER_P50,
            "knee_fraction_of_best": KNEE_FRACTION,
        },
    }


def _render(results: dict) -> str:
    workload = results["workload"]
    lines = [
        "Serving frontier — micro-batching vs per-request "
        f"({workload['n_requests']} requests over {workload['n_chains']} live chains, "
        f"{workload['tail_timesteps']}-timestep streaming tails, "
        f"median of {workload['trials_per_contender']} replays)",
    ]
    knee = results["knee_max_batch"]
    for mb, stats in results["contenders"].items():
        marker = "  <- knee" if int(mb) == knee else ""
        lines.append(
            f"  max_batch={mb:>4} {stats['throughput_rps']:8.1f} req/s  "
            f"p50 {stats['p50_ms']:6.1f}  p95 {stats['p95_ms']:6.1f}  "
            f"p99 {stats['p99_ms']:6.1f} ms{marker}"
        )
    lines.append(
        f"  knee speedup vs per-request: {results['speedup_at_knee']:.2f}x; "
        f"responses byte-identical to batch execute: {results['byte_identical']}"
    )
    return "\n".join(lines)


def _assert_acceptance(results: dict) -> None:
    knee = results["contenders"][str(results["knee_max_batch"])]
    per_request = results["contenders"]["1"]
    assert results["byte_identical"]
    assert results["speedup_at_knee"] >= MIN_SPEEDUP, (
        f"micro-batching reached only {results['speedup_at_knee']:.2f}x over "
        f"per-request serving; floor is {MIN_SPEEDUP:.1f}x"
    )
    assert knee["p95_ms"] <= per_request["p95_ms"], (
        f"knee p95 {knee['p95_ms']:.1f} ms is worse than per-request "
        f"p95 {per_request['p95_ms']:.1f} ms"
    )
    assert knee["p99_ms"] <= MAX_P99_OVER_P50 * knee["p50_ms"], (
        f"knee p99 {knee['p99_ms']:.1f} ms exceeds "
        f"{MAX_P99_OVER_P50:.0f}x p50 ({knee['p50_ms']:.1f} ms)"
    )


def test_bench_serving(benchmark):
    results = benchmark.pedantic(run_serving_bench, rounds=1, iterations=1)
    emit("serving", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serving.json").write_text(json.dumps(results, indent=2) + "\n")
    _assert_acceptance(results)


if __name__ == "__main__":
    bench_results = run_serving_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serving.json").write_text(
        json.dumps(bench_results, indent=2) + "\n"
    )
    _assert_acceptance(bench_results)
