"""Benchmark — chaos-hardened serving: recovery SLOs under injected faults.

The supervised serving tier (``ServeConfig(n_workers=N)``) claims three
things that only hold up under fire: no acknowledged request is ever
lost when workers die mid-batch, recovery from a kill is fast enough
that the tail barely notices, and an out-of-band TSDB outage degrades
record_id traffic to last-good replays instead of failing it. This
benchmark replays the same 1000-chain streaming workload as
``bench_serving`` three ways and holds the tier to its SLOs:

1. **Byte-identity gate (chaos off).** Multi-process responses must be
   byte-identical to the single-loop service and to one batch
   ``execute`` — the process boundary is not allowed to change a byte.
2. **Steady run.** The supervised fleet with no chaos; its p50 sets the
   recovery SLO denominator.
3. **Chaos run.** Seeded worker kills + stalls under the full load, then
   a total TSDB outage taken through the breaker. Acceptance: zero lost
   requests (every submitted request resolves), restarts actually
   happened, worker-recovery p99 ≤ 5x the steady-state request p50, and
   the outage segment is answered degraded, not failed.

Results go to ``benchmarks/results/BENCH_serving_chaos.json``.
"""

import asyncio
import json
from pathlib import Path

import numpy as np

from conftest import emit
from repro.data import FEATURE_NAMES, TelecomConfig, generate_telecom
from repro.data.chains import TestExecution
from repro.resilience import BREAKER_OPEN, ChaosProfile
from repro.serve import (
    Env2VecService,
    LoadProfile,
    PredictRequest,
    ScrapeRequest,
    ServeConfig,
    arrival_offsets,
    run_load,
)
from repro.workflow import (
    AlarmStore,
    EMRegistry,
    MetricCollector,
    ModelStore,
    PredictBatch,
    PredictionPipeline,
    TimeSeriesDB,
    TrainingPipeline,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Worker-recovery p99 may not exceed this multiple of steady-state p50.
MAX_RECOVERY_P99_OVER_STEADY_P50 = 5.0
#: The seeded chaos profile must actually fire at least this often.
MIN_RESTARTS = 3

N_CHAINS = 1000
TAIL_TIMESTEPS = 8
N_LAGS = 3
N_WORKERS = 2
#: record_id requests replayed degraded during the TSDB outage segment.
N_OUTAGE_REQUESTS = 32

CHAOS = dict(seed=5, worker_kill_rate=0.08, worker_stall_rate=0.02)
SERVE = dict(
    max_batch=64,
    max_wait=0.001,
    max_queue_depth=4096,
    n_workers=N_WORKERS,
    heartbeat_interval=0.02,
    worker_stall_timeout=0.5,
    breaker_failures=3,
    breaker_recovery=300.0,
    # Every chain's environment must still be resident when the outage
    # segment replays from last-good (the workload serves N_CHAINS of them).
    last_good_capacity=2048,
)


def _workload():
    """(store, requests, offsets): 1000 live chains on a bursty schedule."""
    dataset = generate_telecom(
        TelecomConfig(
            n_chains=N_CHAINS,
            n_testbeds=30,
            builds_per_chain=(2, 3),
            timesteps_per_build=(40, 50),
            n_focus=4,
            include_rare_testbed=False,
            seed=7,
        )
    )
    store = ModelStore()
    corpus = [
        (e.environment, e.features, e.cpu)
        for chain in dataset.chains[:100]
        for e in chain.history
    ]
    TrainingPipeline(
        store,
        n_lags=N_LAGS,
        model_params={"max_epochs": 4, "batch_size": 512, "dropout": 0.0},
        seed=0,
    ).train(corpus)

    def tail(execution: TestExecution) -> TestExecution:
        return TestExecution(
            environment=execution.environment,
            features=execution.features[-TAIL_TIMESTEPS:],
            cpu=execution.cpu[-TAIL_TIMESTEPS:],
        )

    requests = [
        PredictRequest(execution=tail(chain.current), request_id=str(i))
        for i, chain in enumerate(dataset.chains)
    ]
    offsets = arrival_offsets(
        LoadProfile(n_requests=N_CHAINS, burst_size=32.0, burst_gap=0.0005, seed=7)
    )
    return store, requests, offsets


def _assert_multiprocess_byte_identical(store, requests) -> None:
    """Single-loop vs supervised fleet (chaos off) vs batch execute."""
    executions = [request.execution for request in requests]
    reference = PredictionPipeline(store, AlarmStore()).execute(
        PredictBatch(tuple(executions))
    )

    def serve(n_workers: int):
        async def scenario():
            service = Env2VecService(
                store,
                alarm_store=AlarmStore(),
                config=ServeConfig(**{**SERVE, "n_workers": n_workers}),
            )
            async with service:
                return await service.client().predict_many(requests)

        return asyncio.run(scenario())

    single = serve(0)
    multi = serve(N_WORKERS)
    for response_s, response_m, run in zip(single, multi, reference):
        for response in (response_s, response_m):
            assert response.status == "ok"
            assert response.run.predictions.tobytes() == run.predictions.tobytes()
            assert response.run.observations.tobytes() == run.observations.tobytes()
            assert response.run.alarm_ids == run.alarm_ids


def _steady_run(store, requests, offsets) -> dict:
    async def scenario():
        service = Env2VecService(
            store, alarm_store=AlarmStore(), config=ServeConfig(**SERVE)
        )
        async with service:
            client = service.client()
            await run_load(client, requests[:64], offsets[:64], max_retries=0)
            return await run_load(client, requests, offsets, max_retries=0)

    report = asyncio.run(scenario())
    assert report.n_failed == 0 and report.n_rejected == 0
    return report.summary()


def _chaos_run(store, requests, offsets) -> dict:
    """Full load under seeded kills/stalls, then a TSDB outage segment."""
    chaos = ChaosProfile(**CHAOS)
    collector = MetricCollector(
        TimeSeriesDB(name="bench-chaos-serving"),
        EMRegistry(),
        feature_names=FEATURE_NAMES,
        chaos=ChaosProfile(seed=11, tsdb_failure_rate=1.0),
    )

    async def scenario():
        service = Env2VecService(
            store,
            alarm_store=AlarmStore(),
            collector=collector,
            config=ServeConfig(**SERVE),
            chaos=chaos,
        )
        async with service:
            client = service.client()
            report = await run_load(client, requests, offsets, max_retries=0)

            # One total TSDB outage: trip the breaker, then take record_id
            # traffic for already-served environments through the ladder.
            for _ in range(SERVE["breaker_failures"]):
                await client.scrape(ScrapeRequest(execution=requests[0].execution))
            assert service.tsdb_breaker.state == BREAKER_OPEN
            outage = await client.predict_many(
                [
                    PredictRequest(
                        record_id=f"em-outage-{i}",
                        environment=requests[i].execution.environment,
                        request_id=f"outage-{i}",
                    )
                    for i in range(N_OUTAGE_REQUESTS)
                ]
            )
            supervisor = service.supervisor
            stats = {
                "restarts": supervisor.restarts,
                "restart_reasons": sorted(
                    {reason for _, _, reason in supervisor.restart_log}
                ),
                "reenqueued_batches": supervisor.reenqueued,
                "recovery_seconds": list(supervisor.recovery_seconds),
                "deadline_shed": service.admission.shed,
                "dead_lettered": len(service.dead_letters),
            }
        return report, outage, stats

    report, outage, stats = asyncio.run(scenario())
    recovery = np.asarray(stats.pop("recovery_seconds"), dtype=np.float64)
    return {
        **report.summary(),
        **stats,
        "n_outage_requests": len(outage),
        "n_outage_degraded": sum(1 for r in outage if r.degraded),
        "n_outage_failed": sum(1 for r in outage if r.status != "ok"),
        "recovery_p50_seconds": float(np.percentile(recovery, 50)) if recovery.size else None,
        "recovery_p99_seconds": float(np.percentile(recovery, 99)) if recovery.size else None,
    }


def run_chaos_bench() -> dict:
    store, requests, offsets = _workload()
    _assert_multiprocess_byte_identical(store, requests)
    steady = _steady_run(store, requests, offsets)
    chaos = _chaos_run(store, requests, offsets)
    return {
        "workload": {
            "n_chains": N_CHAINS,
            "n_requests": len(requests),
            "tail_timesteps": TAIL_TIMESTEPS,
            "n_workers": N_WORKERS,
            "chaos": CHAOS,
            "n_outage_requests": N_OUTAGE_REQUESTS,
        },
        "byte_identical_multiprocess": True,
        "steady": steady,
        "chaos": chaos,
        "acceptance": {
            "min_restarts": MIN_RESTARTS,
            "max_recovery_p99_over_steady_p50": MAX_RECOVERY_P99_OVER_STEADY_P50,
        },
    }


def _render(results: dict) -> str:
    steady, chaos = results["steady"], results["chaos"]
    workload = results["workload"]
    return "\n".join(
        [
            "Chaos-hardened serving — supervised fleet under injected faults "
            f"({workload['n_requests']} streaming requests, "
            f"{workload['n_workers']} workers, kill_rate="
            f"{workload['chaos']['worker_kill_rate']}, stall_rate="
            f"{workload['chaos']['worker_stall_rate']})",
            f"  steady: {steady['throughput_rps']:8.1f} req/s  "
            f"p50 {steady['p50_seconds'] * 1e3:6.1f}  "
            f"p99 {steady['p99_seconds'] * 1e3:6.1f} ms",
            f"  chaos:  {chaos['throughput_rps']:8.1f} req/s  "
            f"p50 {chaos['p50_seconds'] * 1e3:6.1f}  "
            f"p99 {chaos['p99_seconds'] * 1e3:6.1f} ms  "
            f"({chaos['restarts']} restarts {chaos['restart_reasons']}, "
            f"{chaos['reenqueued_batches']} batches re-enqueued)",
            f"  recovery: p50 {chaos['recovery_p50_seconds'] * 1e3:6.1f}  "
            f"p99 {chaos['recovery_p99_seconds'] * 1e3:6.1f} ms  "
            f"(SLO: p99 <= {results['acceptance']['max_recovery_p99_over_steady_p50']:.0f}x "
            f"steady p50 = {MAX_RECOVERY_P99_OVER_STEADY_P50 * steady['p50_seconds'] * 1e3:.1f} ms)",
            f"  outage segment: {chaos['n_outage_degraded']}/{chaos['n_outage_requests']} "
            f"answered degraded from last-good, {chaos['n_outage_failed']} failed; "
            f"multi-process byte-identity: {results['byte_identical_multiprocess']}",
        ]
    )


def _assert_acceptance(results: dict) -> None:
    steady, chaos = results["steady"], results["chaos"]
    assert results["byte_identical_multiprocess"]
    # Zero lost acknowledged requests, under kills and stalls.
    assert chaos["n_failed"] == 0 and chaos["n_rejected"] == 0, (
        f"chaos run lost requests: {chaos['n_failed']} failed, "
        f"{chaos['n_rejected']} rejected"
    )
    assert chaos["n_completed"] == results["workload"]["n_requests"]
    # The injections actually fired — a green run with no faults proves nothing.
    assert chaos["restarts"] >= MIN_RESTARTS, (
        f"only {chaos['restarts']} worker restarts; the seeded profile should "
        f"have produced at least {MIN_RESTARTS}"
    )
    assert chaos["reenqueued_batches"] > 0
    # Recovery SLO: a worker outage costs the tail at most 5x a steady p50.
    slo = MAX_RECOVERY_P99_OVER_STEADY_P50 * steady["p50_seconds"]
    assert chaos["recovery_p99_seconds"] <= slo, (
        f"recovery p99 {chaos['recovery_p99_seconds'] * 1e3:.1f} ms exceeds "
        f"SLO {slo * 1e3:.1f} ms (5x steady p50)"
    )
    # The TSDB outage degraded, it did not fail.
    assert chaos["n_outage_failed"] == 0
    assert chaos["n_outage_degraded"] == results["workload"]["n_outage_requests"]


def test_bench_serving_chaos(benchmark):
    results = benchmark.pedantic(run_chaos_bench, rounds=1, iterations=1)
    emit("serving_chaos", _render(results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serving_chaos.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    _assert_acceptance(results)


if __name__ == "__main__":
    bench_results = run_chaos_bench()
    print(_render(bench_results))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serving_chaos.json").write_text(
        json.dumps(bench_results, indent=2) + "\n"
    )
    _assert_acceptance(bench_results)
