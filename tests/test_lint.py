"""Lint gate wired into the test session.

Runs ``ruff check`` with the repo's ``[tool.ruff]`` config when the binary
is available. In environments without ruff (such as the offline test
container) a stdlib fallback still enforces the highest-signal subset:
every source file must parse, no module may carry unused imports, no
function may use a mutable default argument (ruff ``B006`` — a mutable
default once served as a hidden cross-invocation cache in ``cli.py``),
and no ``except`` handler may raise a *new* exception without chaining it
(``B904`` — losing the original fault blinds the resilience ladder).

The project's own AST engine (:mod:`repro.analysis`, rules
REP001-REP008) runs alongside either path — it has no external binary to
be missing.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE_ROOTS = ("src", "tests", "benchmarks")


def _python_files() -> list[Path]:
    files: list[Path] = []
    for root in SOURCE_ROOTS:
        files.extend(sorted((REPO / root).rglob("*.py")))
    assert files, "lint found no Python files — check SOURCE_ROOTS"
    return files


def _ruff_available() -> bool:
    return shutil.which("ruff") is not None


class _ImportUsage(ast.NodeVisitor):
    """Collect imported names and every identifier the module mentions."""

    def __init__(self) -> None:
        self.imported: dict[str, int] = {}
        self.used: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.imported[name] = node.lineno

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":  # compiler directive, not a binding
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            self.imported[alias.asname or alias.name] = node.lineno

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        # __all__ entries and doctest-ish strings count as usage so that
        # re-export modules don't need per-name pragmas in the fallback.
        if isinstance(node.value, str) and node.value.isidentifier():
            self.used.add(node.value)


_MUTABLE_DEFAULT_NODES = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)


def _mutable_defaults(path: Path, tree: ast.Module) -> list[str]:
    """Stdlib approximation of ruff B006: flag literal mutable defaults."""
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, _MUTABLE_DEFAULT_NODES):
                problems.append(
                    f"{path.relative_to(REPO)}:{default.lineno}: mutable default "
                    f"argument in {node.name}() (B006)"
                )
    return problems


def _unchained_raises(path: Path, tree: ast.Module) -> list[str]:
    """Stdlib approximation of ruff B904: ``raise X`` inside ``except``
    without ``from err``/``from None`` discards the original traceback."""
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Raise)
                and inner.exc is not None
                and inner.cause is None
                # re-raising the caught exception object itself is chained
                # by construction (`except E as err: ... raise err`)
                and not (
                    isinstance(inner.exc, ast.Name) and inner.exc.id == node.name
                )
            ):
                problems.append(
                    f"{path.relative_to(REPO)}:{inner.lineno}: raise inside "
                    "except without 'from' (B904)"
                )
    return problems


def _unused_imports(path: Path, tree: ast.Module) -> list[str]:
    visitor = _ImportUsage()
    visitor.visit(tree)
    return [
        f"{path.relative_to(REPO)}:{lineno}: unused import {name!r}"
        for name, lineno in visitor.imported.items()
        if name not in visitor.used
    ]


def test_lint_scope_includes_obs():
    """The observability package (and its tests) must be inside the gate."""
    files = {path.relative_to(REPO).as_posix() for path in _python_files()}
    assert "src/repro/obs/metrics.py" in files
    assert "src/repro/obs/spans.py" in files
    assert any(name.startswith("tests/obs/") for name in files)
    assert "benchmarks/bench_observability.py" in files


def test_lint():
    if _ruff_available():
        result = subprocess.run(
            ["ruff", "check", *SOURCE_ROOTS],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, f"ruff check failed:\n{result.stdout}{result.stderr}"
        return

    problems: list[str] = []
    for path in _python_files():
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as error:  # pragma: no cover - tree should always parse
            problems.append(f"{path.relative_to(REPO)}: syntax error: {error}")
            continue
        if path.name != "__init__.py":  # __init__ re-exports are intentional
            problems.extend(_unused_imports(path, tree))
        problems.extend(_mutable_defaults(path, tree))
        problems.extend(_unchained_raises(path, tree))
    assert not problems, "lint fallback found issues:\n" + "\n".join(problems)


def test_repro_analysis_gate():
    """The in-repo AST engine scans src/ clean against its baseline.

    Exercised through the same entry point CI and developers use
    (``python -m repro.analysis``), from the repo root so baseline paths
    resolve identically.
    """
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src", "--strict-baseline"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, (
        f"repro.analysis gate failed:\n{result.stdout}{result.stderr}"
    )


def test_repro_analysis_catalog_includes_cross_file_rules():
    """The shipped rule catalog carries the whole-program rules, so the
    strict-baseline gate above is actually enforcing them."""
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0
    for rule_id in ("REP013", "REP014", "REP015", "REP016"):
        assert rule_id in result.stdout, f"{rule_id} missing from --list-rules"
    assert "[cross-file]" in result.stdout


def test_repro_analysis_sarif_output_is_valid():
    """--format sarif emits parseable SARIF 2.1.0 (machine-consumable)."""
    import json
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src", "--format", "sarif"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, (
        f"sarif scan failed:\n{result.stdout}{result.stderr}"
    )
    payload = json.loads(result.stdout)
    assert payload["version"] == "2.1.0"
    (run,) = payload["runs"]
    assert run["tool"]["driver"]["name"] == "repro.analysis"
    assert run["results"] == []  # live tree is clean
