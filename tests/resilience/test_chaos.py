"""Unit tests for seeded chaos injection and the dead-letter store."""

import numpy as np
import pytest

from repro.obs import OBS
from repro.resilience import (
    ChaosProfile,
    DeadLetterRecord,
    DeadLetterStore,
    FlakyTSDB,
    TransientTSDBError,
)


def _stream(n=200, n_series=4, seed=0):
    rng = np.random.default_rng(seed)
    timestamps = 100.0 * np.arange(n, dtype=np.float64)
    rows = rng.normal(size=(n, n_series))
    return timestamps, rows


class TestChaosProfile:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="drop_rate"):
            ChaosProfile(drop_rate=1.5)
        with pytest.raises(ValueError, match="outage_rate"):
            ChaosProfile(outage_rate=-0.1)

    def test_zero_profile_is_identity_on_scrapes(self):
        timestamps, rows = _stream()
        out_t, out_rows = ChaosProfile(seed=1).corrupt_scrape("k", timestamps, rows)
        assert np.array_equal(out_t, timestamps)
        assert np.array_equal(out_rows, rows)

    def test_corrupt_scrape_is_deterministic_per_key(self):
        profile = ChaosProfile(
            seed=3, drop_rate=0.1, duplicate_rate=0.05, reorder_rate=0.05, nan_rate=0.05
        )
        timestamps, rows = _stream()
        t1, r1 = profile.corrupt_scrape("env-1", timestamps, rows)
        t2, r2 = profile.corrupt_scrape("env-1", timestamps, rows)
        assert np.array_equal(t1, t2)
        assert np.array_equal(r1, r2, equal_nan=True)
        # a different key draws an independent stream
        t3, _ = profile.corrupt_scrape("env-2", timestamps, rows)
        assert not np.array_equal(t1, t3)

    def test_corrupt_scrape_rates_are_approximately_honoured(self):
        profile = ChaosProfile(seed=9, drop_rate=0.2)
        timestamps, rows = _stream(n=2000)
        out_t, _ = profile.corrupt_scrape("k", timestamps, rows)
        dropped = len(timestamps) - len(out_t)
        assert 0.1 < dropped / len(timestamps) < 0.3

    def test_corrupt_scrape_injects_every_kind(self):
        OBS.reset()
        profile = ChaosProfile(
            seed=5, drop_rate=0.1, duplicate_rate=0.1, reorder_rate=0.1, nan_rate=0.1
        )
        timestamps, rows = _stream(n=500)
        out_t, out_rows = profile.corrupt_scrape("k", timestamps, rows)
        injected = OBS.counter("repro_chaos_injected_total", labels=("kind",))
        for kind in ("drop", "duplicate", "reorder", "nan"):
            assert injected.labels(kind=kind).value > 0, kind
        assert np.isnan(out_rows).any()
        # duplicates netted against drops change the delivered length
        assert len(out_t) != len(timestamps) or len(set(out_t)) != len(out_t)

    def test_corrupt_scrape_rejects_misaligned_input(self):
        profile = ChaosProfile()
        with pytest.raises(ValueError):
            profile.corrupt_scrape("k", np.arange(3.0), np.zeros((4, 2)))

    def test_outage_and_divergence_are_deterministic(self):
        profile = ChaosProfile(seed=2, outage_rate=0.3, training_divergence_rate=0.3)
        outages = [profile.outage(f"env-{i}") for i in range(50)]
        assert outages == [profile.outage(f"env-{i}") for i in range(50)]
        assert any(outages) and not all(outages)
        diverges = [profile.training_diverges(day) for day in range(50)]
        assert diverges == [profile.training_diverges(day) for day in range(50)]
        assert any(diverges) and not all(diverges)

    def test_independent_fault_streams(self):
        """Changing one rate must not reshuffle another kind's decisions."""
        timestamps, rows = _stream()
        a = ChaosProfile(seed=7, drop_rate=0.2)
        b = ChaosProfile(seed=7, drop_rate=0.2, outage_rate=0.9)
        t_a, _ = a.corrupt_scrape("k", timestamps, rows)
        t_b, _ = b.corrupt_scrape("k", timestamps, rows)
        assert np.array_equal(t_a, t_b)


class _RecordingTSDB:
    """Minimal duck-typed TSDB standing in for the workflow one."""

    name = "recording"

    def __init__(self):
        self.writes = []

    def write(self, *args):
        self.writes.append(("write", args))

    def write_array(self, *args):
        self.writes.append(("write_array", args))

    def metrics(self):
        return ["m"]


class TestFlakyTSDB:
    def test_zero_rate_returns_the_tsdb_unwrapped(self):
        tsdb = _RecordingTSDB()
        assert ChaosProfile().flaky(tsdb) is tsdb

    def test_failures_happen_before_the_write_lands(self):
        tsdb = _RecordingTSDB()
        flaky = ChaosProfile(seed=11, tsdb_failure_rate=0.5).flaky(tsdb)
        assert isinstance(flaky, FlakyTSDB)
        failures = successes = 0
        for i in range(100):
            before = len(tsdb.writes)
            try:
                flaky.write_array("m", {}, i, float(i))
            except TransientTSDBError:
                failures += 1
                assert len(tsdb.writes) == before  # never double-writes
            else:
                successes += 1
                assert len(tsdb.writes) == before + 1
        assert failures > 0 and successes > 0
        assert flaky.failures_injected == failures

    def test_reads_pass_through(self):
        tsdb = _RecordingTSDB()
        flaky = FlakyTSDB(tsdb, ChaosProfile(seed=1, tsdb_failure_rate=1.0))
        assert flaky.metrics() == ["m"]  # not a write: never fails
        assert flaky.name == "recording"


class TestDeadLetterStore:
    def test_add_and_lookup(self):
        store = DeadLetterStore()
        record = store.add("env-1", "gap_too_long", detail="9 samples", day=3)
        assert record == DeadLetterRecord("env-1", "gap_too_long", "9 samples", 3)
        assert "env-1" in store
        assert "env-2" not in store
        assert len(store) == 1
        assert store.get("env-1").reason == "gap_too_long"

    def test_re_adding_overwrites(self):
        store = DeadLetterStore()
        store.add("env-1", "gap_too_long")
        store.add("env-1", "collector_outage")
        assert len(store) == 1
        assert store.get("env-1").reason == "collector_outage"

    def test_records_filter_and_reasons_histogram(self):
        store = DeadLetterStore()
        store.add("a", "outage")
        store.add("b", "outage")
        store.add("c", "gap_too_long")
        assert [r.key for r in store.records()] == ["a", "b", "c"]
        assert [r.key for r in store.records(reason="outage")] == ["a", "b"]
        assert store.reasons() == {"outage": 2, "gap_too_long": 1}

    def test_empty_key_or_reason_rejected(self):
        store = DeadLetterStore()
        with pytest.raises(ValueError):
            store.add("", "reason")
        with pytest.raises(ValueError):
            store.add("key", "")

    def test_metrics_emitted_but_not_on_restore(self):
        OBS.reset()
        counter = OBS.counter("repro_resilience_dead_letters_total", labels=("reason",))
        size = OBS.gauge("repro_resilience_dead_letter_size")
        store = DeadLetterStore()
        store.add("a", "outage")
        assert counter.labels(reason="outage").value == 1
        assert size.value == 1
        restored = DeadLetterStore()
        restored.restore(store.records())
        assert counter.labels(reason="outage").value == 1  # no double count
        assert size.value == 1
        assert restored.get("a") == store.get("a")


class TestWorkerChaos:
    def test_worker_rates_validated(self):
        with pytest.raises(ValueError, match="worker_kill_rate"):
            ChaosProfile(worker_kill_rate=1.5)
        with pytest.raises(ValueError, match="worker_stall_rate"):
            ChaosProfile(worker_stall_rate=-0.1)

    def test_worker_draws_deterministic_per_key(self):
        profile = ChaosProfile(seed=7, worker_kill_rate=0.3, worker_stall_rate=0.3)
        replay = ChaosProfile(seed=7, worker_kill_rate=0.3, worker_stall_rate=0.3)
        kills = [profile.worker_kill(batch_id) for batch_id in range(100)]
        stalls = [profile.worker_stall(batch_id) for batch_id in range(100)]
        assert kills == [replay.worker_kill(batch_id) for batch_id in range(100)]
        assert stalls == [replay.worker_stall(batch_id) for batch_id in range(100)]
        # Distinct streams: the kill draw for a key must not decide the
        # stall draw for the same key.
        assert kills != stalls
        assert 10 < sum(kills) < 60

    def test_zero_rates_never_fire(self):
        profile = ChaosProfile(seed=7)
        assert not any(profile.worker_kill(i) for i in range(50))
        assert not any(profile.worker_stall(i) for i in range(50))

    def test_rate_one_always_fires(self):
        profile = ChaosProfile(seed=7, worker_kill_rate=1.0, worker_stall_rate=1.0)
        assert all(profile.worker_kill(i) for i in range(10))
        assert all(profile.worker_stall(i) for i in range(10))
