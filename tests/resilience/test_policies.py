"""Unit tests for the resilience policy toolkit (retry/deadline/breaker)."""

import pytest

from repro.obs import OBS
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    Retry,
    RetryExhausted,
    SimulatedClock,
    TransientError,
    TransientTSDBError,
)


class Flaky:
    """Callable failing ``n_failures`` times before succeeding."""

    def __init__(self, n_failures: int, error: type[BaseException] = TransientError):
        self.n_failures = n_failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.error(f"failure #{self.calls}")
        return "ok"


class TestSimulatedClock:
    def test_sleep_advances_time_instantly(self):
        clock = SimulatedClock(start=100.0)
        clock.sleep(2.5)
        assert clock.now() == 102.5

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().sleep(-1.0)


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        fn = Flaky(2)
        retry = Retry(max_attempts=4, name="t-succeed")
        assert retry.call(fn) == "ok"
        assert fn.calls == 3

    def test_non_retryable_propagates_immediately(self):
        fn = Flaky(5, error=KeyError)
        retry = Retry(max_attempts=4, name="t-nonretry")
        with pytest.raises(KeyError):
            retry.call(fn)
        assert fn.calls == 1

    def test_exhaustion_raises_retry_exhausted_with_cause(self):
        fn = Flaky(10, error=TransientTSDBError)
        retry = Retry(max_attempts=3, name="t-exhaust")
        with pytest.raises(RetryExhausted) as excinfo:
            retry.call(fn)
        assert fn.calls == 3
        assert isinstance(excinfo.value.__cause__, TransientTSDBError)
        assert "failure #3" in str(excinfo.value.__cause__)

    def test_decorator_form(self):
        fn = Flaky(1)

        @Retry(max_attempts=2, name="t-deco")
        def guarded():
            return fn()

        assert guarded() == "ok"
        assert guarded.__wrapped__ is not None

    def test_attempts_iterator_form(self):
        fn = Flaky(2)
        retry = Retry(max_attempts=4, name="t-iter")
        result = None
        for attempt in retry.attempts():
            with attempt:
                result = fn()
        assert result == "ok"
        assert fn.calls == 3

    def test_attempts_iterator_propagates_final_failure(self):
        fn = Flaky(99)
        retry = Retry(max_attempts=2, name="t-iter-fail")
        with pytest.raises(TransientError, match="failure #2"):
            for attempt in retry.attempts():
                with attempt:
                    fn()
        assert fn.calls == 2

    def test_backoff_consumes_simulated_time_only(self):
        clock = SimulatedClock()
        retry = Retry(
            max_attempts=4, base_delay=1.0, multiplier=2.0, jitter=0.0,
            clock=clock, name="t-backoff",
        )
        with pytest.raises(RetryExhausted):
            retry.call(Flaky(99))
        # 3 backoffs: 1 + 2 + 4 simulated seconds, zero wall-clock.
        assert clock.now() == pytest.approx(7.0)

    def test_backoff_bounded_by_max_delay(self):
        retry = Retry(
            max_attempts=10, base_delay=1.0, max_delay=5.0, multiplier=3.0,
            jitter=0.0, name="t-cap",
        )
        assert retry.delay_for(1) == 1.0
        assert retry.delay_for(2) == 3.0
        assert retry.delay_for(3) == 5.0  # capped: 9 -> max_delay
        assert retry.delay_for(9) == 5.0

    def test_jitter_is_seeded_and_deterministic(self):
        a = Retry(base_delay=10.0, jitter=0.5, seed=7, name="t-jit-a")
        b = Retry(base_delay=10.0, jitter=0.5, seed=7, name="t-jit-b")
        delays_a = [a.delay_for(1) for _ in range(5)]
        delays_b = [b.delay_for(1) for _ in range(5)]
        assert delays_a == delays_b
        assert all(5.0 <= d <= 10.0 for d in delays_a)

    def test_retry_metrics_emitted(self):
        OBS.reset()
        retry = Retry(max_attempts=3, base_delay=1.0, jitter=0.0, name="t-metrics")
        with pytest.raises(RetryExhausted):
            retry.call(Flaky(99))
        retries = OBS.counter("repro_resilience_retries_total", labels=("policy",))
        giveups = OBS.counter("repro_resilience_giveups_total", labels=("policy",))
        backoff = OBS.counter("repro_resilience_backoff_seconds_total", labels=("policy",))
        assert retries.labels(policy="t-metrics").value == 2
        assert giveups.labels(policy="t-metrics").value == 1
        assert backoff.labels(policy="t-metrics").value == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Retry(max_attempts=0)
        with pytest.raises(ValueError):
            Retry(base_delay=5.0, max_delay=1.0)
        with pytest.raises(ValueError):
            Retry(multiplier=0.5)
        with pytest.raises(ValueError):
            Retry(jitter=1.5)


class TestDeadline:
    def test_within_budget_passes(self):
        clock = SimulatedClock()
        with Deadline(10.0, clock=clock, name="d-ok"):
            clock.advance(5.0)

    def test_over_budget_raises_on_exit(self):
        clock = SimulatedClock()
        with pytest.raises(DeadlineExceeded):
            with Deadline(10.0, clock=clock, name="d-over"):
                clock.advance(11.0)

    def test_inflight_exception_takes_precedence(self):
        clock = SimulatedClock()
        with pytest.raises(KeyError):
            with Deadline(10.0, clock=clock, name="d-exc"):
                clock.advance(99.0)
                raise KeyError("boom")

    def test_cooperative_check_aborts_long_loops(self):
        clock = SimulatedClock()
        iterations = 0
        with pytest.raises(DeadlineExceeded):
            with Deadline(3.0, clock=clock, name="d-check") as deadline:
                for _ in range(100):
                    clock.advance(1.0)
                    deadline.check()
                    iterations += 1
        assert iterations == 3

    def test_remaining(self):
        clock = SimulatedClock()
        deadline = Deadline(10.0, clock=clock, name="d-rem")
        assert deadline.remaining() == 10.0
        with pytest.raises(DeadlineExceeded):
            with deadline:
                clock.advance(4.0)
                assert deadline.remaining() == pytest.approx(6.0)
                clock.advance(100.0)
                assert deadline.remaining() == 0.0

    def test_decorator_gives_fresh_budget_per_call(self):
        clock = SimulatedClock()

        @Deadline(5.0, clock=clock, name="d-deco")
        def work(seconds):
            clock.advance(seconds)

        work(4.0)
        work(4.0)  # would exceed a shared budget; fresh one passes
        with pytest.raises(DeadlineExceeded):
            work(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestCircuitBreaker:
    @staticmethod
    def _trip(breaker, n):
        for _ in range(n):
            with pytest.raises(RuntimeError, match="backend down"):
                with breaker:
                    raise RuntimeError("backend down")

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, name="b-open")
        self._trip(breaker, 2)
        assert breaker.state == BREAKER_CLOSED
        self._trip(breaker, 1)
        assert breaker.state == BREAKER_OPEN

    def test_open_circuit_fails_fast(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=30.0, name="b-fast")
        self._trip(breaker, 1)
        calls = 0
        with pytest.raises(CircuitOpen):
            with breaker:
                calls += 1
        assert calls == 0  # the protected call never ran

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3, name="b-reset")
        self._trip(breaker, 2)
        with breaker:
            pass
        self._trip(breaker, 2)
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_success_closes(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=30.0, clock=clock, name="b-probe-ok"
        )
        self._trip(breaker, 1)
        clock.advance(31.0)
        with breaker:  # allow() promotes to half-open, success closes
            assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_time=30.0, clock=clock, name="b-probe-bad"
        )
        self._trip(breaker, 2)
        assert breaker.state == BREAKER_OPEN
        clock.advance(31.0)
        self._trip(breaker, 1)  # the single half-open trial fails
        assert breaker.state == BREAKER_OPEN
        with pytest.raises(CircuitOpen):
            breaker.allow()

    def test_decorator_form(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(failure_threshold=2, recovery_time=10.0, clock=clock, name="b-deco")
        fn = Flaky(2, error=TransientTSDBError)

        @breaker
        def guarded():
            return fn()

        for _ in range(2):
            with pytest.raises(TransientTSDBError):
                guarded()
        with pytest.raises(CircuitOpen):
            guarded()
        assert fn.calls == 2
        clock.advance(11.0)
        assert guarded() == "ok"
        assert breaker.state == BREAKER_CLOSED

    def test_breaker_metrics_emitted(self):
        OBS.reset()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=30.0, name="b-metrics")
        self._trip(breaker, 1)
        with pytest.raises(CircuitOpen):
            breaker.allow()
        state = OBS.gauge("repro_resilience_breaker_state", labels=("breaker",))
        rejected = OBS.counter("repro_resilience_breaker_rejected_total", labels=("breaker",))
        transitions = OBS.counter(
            "repro_resilience_breaker_transitions_total", labels=("breaker", "to")
        )
        assert state.labels(breaker="b-metrics").value == 2.0  # open
        assert rejected.labels(breaker="b-metrics").value == 1
        assert transitions.labels(breaker="b-metrics", to=BREAKER_OPEN).value == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=0.0)
