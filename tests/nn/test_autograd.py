"""Gradient checks for the autograd engine against central finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad

RNG = np.random.default_rng(7)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_grad(build, shape, atol=1e-6, rtol=1e-4):
    """Compare autograd gradient of ``build(Tensor)`` with finite differences."""
    x = RNG.standard_normal(shape)
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    expected = numeric_grad(lambda arr: build(Tensor(arr)).item(), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=rtol)


class TestElementwiseOps:
    def test_add(self):
        check_grad(lambda t: (t + 3.0).sum(), (4, 3))

    def test_add_broadcast(self):
        b = Tensor(RNG.standard_normal(3))
        check_grad(lambda t: (t + b).sum(), (4, 3))

    def test_broadcast_grad_flows_to_small_operand(self):
        big = Tensor(RNG.standard_normal((5, 3)))
        small = Tensor(RNG.standard_normal(3), requires_grad=True)
        ((big * small).sum()).backward()
        np.testing.assert_allclose(small.grad, big.numpy().sum(axis=0))

    def test_sub(self):
        check_grad(lambda t: (t - 2.0 * t).sum(), (5,))

    def test_rsub(self):
        check_grad(lambda t: (1.0 - t).sum(), (5,))

    def test_mul(self):
        other = Tensor(RNG.standard_normal((4, 3)))
        check_grad(lambda t: (t * other).sum(), (4, 3))

    def test_mul_self(self):
        check_grad(lambda t: (t * t).sum(), (3, 2))

    def test_div(self):
        other = Tensor(RNG.standard_normal((4,)) + 3.0)
        check_grad(lambda t: (t / other).sum(), (4,))

    def test_div_denominator(self):
        numer = Tensor(RNG.standard_normal(4))
        check_grad(lambda t: (numer / (t + 5.0)).sum(), (4,))

    def test_pow(self):
        check_grad(lambda t: (t**3).sum(), (4,))

    def test_neg(self):
        check_grad(lambda t: (-t).sum(), (3, 3))


class TestMatmul:
    def test_matmul_2d(self):
        other = Tensor(RNG.standard_normal((3, 5)))
        check_grad(lambda t: (t @ other).sum(), (4, 3))

    def test_matmul_right_operand(self):
        left = RNG.standard_normal((4, 3))
        x = RNG.standard_normal((3, 5))
        t = Tensor(x.copy(), requires_grad=True)
        (Tensor(left) @ t).sum().backward()
        expected = numeric_grad(lambda arr: (Tensor(left) @ Tensor(arr)).sum().item(), x.copy())
        np.testing.assert_allclose(t.grad, expected, atol=1e-6, rtol=1e-4)

    def test_matvec(self):
        vec = Tensor(RNG.standard_normal(3))
        check_grad(lambda t: (t @ vec).sum(), (4, 3))

    def test_vecmat(self):
        mat = Tensor(RNG.standard_normal((3, 4)))
        check_grad(lambda t: (t @ mat).sum(), (3,))


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["sigmoid", "tanh", "relu", "exp", "abs"])
    def test_unary(self, op):
        check_grad(lambda t: getattr(t, op)().sum(), (4, 3))

    def test_log(self):
        x = RNG.random((4, 3)) + 0.5
        t = Tensor(x.copy(), requires_grad=True)
        t.log().sum().backward()
        np.testing.assert_allclose(t.grad, 1.0 / x, rtol=1e-6)


class TestReductions:
    def test_sum_all(self):
        check_grad(lambda t: t.sum(), (4, 3))

    def test_sum_axis(self):
        check_grad(lambda t: (t.sum(axis=1) ** 2).sum(), (4, 3))

    def test_sum_keepdims(self):
        check_grad(lambda t: (t.sum(axis=0, keepdims=True) ** 2).sum(), (4, 3))

    def test_mean(self):
        check_grad(lambda t: (t.mean(axis=1) ** 2).sum(), (4, 3))

    def test_mean_all(self):
        check_grad(lambda t: t.mean() * 10.0, (5, 2))


class TestStructural:
    def test_concat(self):
        other = Tensor(RNG.standard_normal((4, 2)))
        check_grad(lambda t: ((Tensor.concat([t, other], axis=1)) ** 2).sum(), (4, 3))

    def test_concat_grad_to_both(self):
        a = Tensor(RNG.standard_normal((2, 2)), requires_grad=True)
        b = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        Tensor.concat([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_stack(self):
        a = Tensor(RNG.standard_normal(3), requires_grad=True)
        b = Tensor(RNG.standard_normal(3), requires_grad=True)
        (Tensor.stack([a, b], axis=0) ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.numpy())
        np.testing.assert_allclose(b.grad, 2 * b.numpy())

    def test_getitem_slice(self):
        check_grad(lambda t: (t[:, 1:] ** 2).sum(), (4, 3))

    def test_getitem_duplicate_indices_accumulate(self):
        t = Tensor(RNG.standard_normal(4), requires_grad=True)
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0])

    def test_take_rows(self):
        table = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        ids = np.array([1, 1, 4, 0])
        (table.take_rows(ids) ** 2).sum().backward()
        expected = np.zeros((5, 3))
        np.add.at(expected, ids, 2 * table.numpy()[ids])
        np.testing.assert_allclose(table.grad, expected)

    def test_reshape(self):
        check_grad(lambda t: (t.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose(self):
        other = Tensor(RNG.standard_normal((4, 3)))
        check_grad(lambda t: (t.T * other).sum(), (3, 4))


class TestGraphMechanics:
    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x shares x along two paths
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        a = x * x
        b = x * 3.0
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.numpy() + 3.0)

    def test_reused_intermediate(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        h = x * 2.0
        y = h * h + h
        y.sum().backward()
        # dy/dx = (2h + 1) * 2 = (2*3+1)*2 = 14
        np.testing.assert_allclose(x.grad, [14.0])

    def test_backward_twice_accumulates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        y = x * 2.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_blocks_recording(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores(self):
        with no_grad():
            pass
        x = Tensor(np.array([1.0]), requires_grad=True)
        assert (x * 2.0).requires_grad

    def test_detach(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x.detach() * 5.0
        assert not y.requires_grad

    def test_backward_requires_grad(self):
        x = Tensor(np.array([1.0]))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])

    def test_backward_grad_shape_mismatch(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 1.0).backward(np.ones(4))

    def test_dropout_scales_and_masks(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((100, 10)), requires_grad=True)
        y = x.dropout(0.5, rng)
        values = np.unique(y.numpy())
        assert set(np.round(values, 6)) <= {0.0, 2.0}
        y.sum().backward()
        np.testing.assert_allclose(x.grad, y.numpy())

    def test_dropout_identity_in_no_grad(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(10))
        with no_grad():
            y = x.dropout(0.9, rng)
        np.testing.assert_allclose(y.numpy(), x.numpy())

    def test_dropout_invalid_rate(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            x.dropout(1.0, np.random.default_rng(0))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_chain_gradcheck(rows, cols, seed):
    """Random (shape, seed) combos: composite expression matches numeric grad."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, cols))
    w = rng.standard_normal((cols, 3))

    def build(t):
        return ((t @ Tensor(w)).tanh() * 2.0 + 1.0).sigmoid().sum()

    t = Tensor(x.copy(), requires_grad=True)
    build(t).backward()
    expected = numeric_grad(lambda arr: build(Tensor(arr)).item(), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=1e-5, rtol=1e-3)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_linearity_of_grad(seed):
    """grad of (a*f + b*g) equals a*grad(f) + b*grad(g)."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(6)

    def grad_of(fn):
        t = Tensor(x.copy(), requires_grad=True)
        fn(t).backward()
        return t.grad

    g1 = grad_of(lambda t: (t**2).sum())
    g2 = grad_of(lambda t: t.tanh().sum())
    combined = grad_of(lambda t: (t**2).sum() * 2.0 + t.tanh().sum() * 3.0)
    np.testing.assert_allclose(combined, 2.0 * g1 + 3.0 * g2, atol=1e-10)
