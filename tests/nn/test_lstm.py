"""LSTM cell/layer correctness and gradient checks."""

import numpy as np
import pytest

from repro.nn import LSTM, LSTMCell, Tensor


RNG = np.random.default_rng(61)


def manual_lstm_step(cell: LSTMCell, x, h, c):
    """Raw-numpy reference of the classic LSTM equations."""

    def sigmoid(v):
        return 1.0 / (1.0 + np.exp(-v))

    i = sigmoid(x @ cell.w_i.numpy() + h @ cell.u_i.numpy() + cell.b_i.numpy())
    f = sigmoid(x @ cell.w_f.numpy() + h @ cell.u_f.numpy() + cell.b_f.numpy())
    o = sigmoid(x @ cell.w_o.numpy() + h @ cell.u_o.numpy() + cell.b_o.numpy())
    g = np.tanh(x @ cell.w_g.numpy() + h @ cell.u_g.numpy() + cell.b_g.numpy())
    c_next = f * c + i * g
    h_next = o * np.tanh(c_next)
    return h_next, c_next


class TestLSTMCell:
    def test_matches_reference_equations(self):
        cell = LSTMCell(3, 5, rng=RNG)
        x = RNG.standard_normal((4, 3))
        h = RNG.standard_normal((4, 5))
        c = RNG.standard_normal((4, 5))
        h_out, c_out = cell(Tensor(x), Tensor(h), Tensor(c))
        h_ref, c_ref = manual_lstm_step(cell, x, h, c)
        np.testing.assert_allclose(h_out.numpy(), h_ref, atol=1e-12)
        np.testing.assert_allclose(c_out.numpy(), c_ref, atol=1e-12)

    def test_forget_gate_bias_initialized_to_one(self):
        cell = LSTMCell(2, 3, rng=RNG)
        np.testing.assert_allclose(cell.b_f.numpy(), 1.0)
        np.testing.assert_allclose(cell.b_i.numpy(), 0.0)

    def test_saturated_forget_gate_preserves_cell(self):
        cell = LSTMCell(1, 3, rng=RNG)
        cell.b_f.data[:] = 50.0  # f -> 1
        cell.b_i.data[:] = -50.0  # i -> 0
        c = RNG.standard_normal((2, 3))
        _, c_out = cell(
            Tensor(RNG.standard_normal((2, 1))), Tensor(np.zeros((2, 3))), Tensor(c)
        )
        np.testing.assert_allclose(c_out.numpy(), c, atol=1e-8)

    def test_gradcheck_parameters(self):
        cell = LSTMCell(2, 3, rng=RNG)
        x = RNG.standard_normal((3, 2))
        h0 = RNG.standard_normal((3, 3))
        c0 = RNG.standard_normal((3, 3))

        def loss():
            h, c = cell(Tensor(x), Tensor(h0), Tensor(c0))
            return (h * h).sum() + (c * c).sum()

        loss().backward()
        eps = 1e-6
        for name, param in cell.named_parameters():
            flat = param.data.reshape(-1)
            analytic = param.grad.reshape(-1)
            for i in range(0, flat.size, max(1, flat.size // 3)):
                original = flat[i]
                flat[i] = original + eps
                plus = loss().item()
                flat[i] = original - eps
                minus = loss().item()
                flat[i] = original
                numeric = (plus - minus) / (2 * eps)
                np.testing.assert_allclose(analytic[i], numeric, rtol=1e-4, atol=1e-6, err_msg=name)


class TestLSTMLayer:
    def test_output_shapes(self):
        lstm = LSTM(2, 4, rng=RNG)
        out = lstm(Tensor(RNG.standard_normal((5, 6, 2))))
        assert out.shape == (5, 4)
        seq = LSTM(2, 4, return_sequences=True, rng=RNG)
        assert seq(Tensor(RNG.standard_normal((5, 6, 2)))).shape == (5, 6, 4)

    def test_manual_unroll_matches(self):
        lstm = LSTM(1, 3, rng=RNG)
        x = RNG.standard_normal((2, 5, 1))
        h = np.zeros((2, 3))
        c = np.zeros((2, 3))
        for t in range(5):
            h, c = manual_lstm_step(lstm.cell, x[:, t, :], h, c)
        np.testing.assert_allclose(lstm(Tensor(x)).numpy(), h, atol=1e-12)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            LSTM(2, 3, rng=RNG)(Tensor(RNG.standard_normal((4, 2))))

    def test_gradient_flows_through_time(self):
        lstm = LSTM(1, 3, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 4, 1)), requires_grad=True)
        lstm(x).sum().backward()
        assert (np.abs(x.grad) > 0).all()

    def test_learns_lagged_dependence(self):
        """Train the LSTM head to output the first timestep's value."""
        from repro.nn import Adam, Dense, Module, mse_loss

        rng = np.random.default_rng(5)

        class Reader(Module):
            def __init__(self):
                super().__init__()
                self.lstm = LSTM(1, 8, rng=np.random.default_rng(0))
                self.out = Dense(8, 1, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.out(self.lstm(Tensor(x))).reshape(-1)

        model = Reader()
        optimizer = Adam(model.parameters(), lr=0.02)
        for _ in range(150):
            x = rng.standard_normal((32, 4, 1))
            target = Tensor(x[:, 0, 0])
            optimizer.zero_grad()
            loss = mse_loss(model(x), target)
            loss.backward()
            optimizer.step()
        x = rng.standard_normal((64, 4, 1))
        predictions = model(x).numpy()
        error = np.abs(predictions - x[:, 0, 0]).mean()
        assert error < 0.4  # clearly remembers the oldest input
