"""Tape-free inference engine: compile rules, parity, and the row cache."""

import threading

import numpy as np
import pytest

from repro.nn import (
    GRU,
    LSTM,
    Dense,
    Dropout,
    EmbeddingRowCache,
    Sequential,
    Tensor,
    Trainer,
    UnsupportedModuleError,
    compile_module,
    is_grad_enabled,
    no_grad,
)
from repro.nn.inference import compile_attention, compile_recurrent
from repro.nn.attention import AdditiveAttention

RNG = np.random.default_rng(7)


class TestCompileDense:
    def test_parity(self):
        layer = Dense(6, 4, activation="sigmoid", rng=RNG)
        engine = compile_module(layer)
        x = RNG.standard_normal((9, 6))
        assert engine.assert_close({"x": x}, atol=1e-10) <= 1e-10

    def test_weights_are_snapshots(self):
        layer = Dense(3, 2, rng=RNG)
        engine = compile_module(layer)
        before = engine(x=np.ones((1, 3)))
        layer.weight.data += 100.0  # simulate an optimizer step
        after = engine(x=np.ones((1, 3)))
        np.testing.assert_allclose(before, after)

    def test_float32_option(self):
        layer = Dense(6, 4, activation="tanh", rng=RNG)
        engine = compile_module(layer, dtype=np.float32)
        out = engine(x=RNG.standard_normal((5, 6)))
        assert out.dtype == np.float32
        engine.assert_close({"x": RNG.standard_normal((5, 6))}, atol=1e-5)

    def test_float32_fails_strict_tolerance(self):
        layer = Dense(16, 8, rng=RNG)
        engine = compile_module(layer, dtype=np.float32)
        with pytest.raises(AssertionError, match="diverges"):
            engine.assert_close({"x": RNG.standard_normal((30, 16)) * 100}, atol=1e-10)


class TestCompileSequential:
    def test_dropout_elided(self):
        model = Sequential(
            Dense(5, 8, activation="relu", rng=RNG), Dropout(0.5, rng=RNG), Dense(8, 2, rng=RNG)
        )
        model.eval()
        engine = compile_module(model)
        assert engine.assert_close({"x": RNG.standard_normal((11, 5))}, atol=1e-10) <= 1e-10

    def test_unknown_layer_refused(self):
        model = Sequential(Dense(4, 4, rng=RNG), GRU(4, 4, rng=RNG))
        with pytest.raises(UnsupportedModuleError):
            compile_module(model)

    def test_subclass_not_matched_through_mro(self):
        class Doubler(Dense):
            def forward(self, x):
                return super().forward(x) * 2.0

        with pytest.raises(UnsupportedModuleError):
            compile_module(Doubler(3, 3, rng=RNG))


class TestCompiledRecurrent:
    @pytest.mark.parametrize("return_sequences", [False, True])
    def test_gru_parity(self, return_sequences):
        layer = GRU(2, 5, activation="relu", return_sequences=return_sequences, rng=RNG)
        run = compile_recurrent(layer, np.dtype(np.float64))
        x = RNG.standard_normal((4, 6, 2))
        with no_grad():
            reference = layer(Tensor(x)).numpy()
        np.testing.assert_allclose(run(x), reference, atol=1e-12)

    @pytest.mark.parametrize("return_sequences", [False, True])
    def test_lstm_parity(self, return_sequences):
        layer = LSTM(3, 4, return_sequences=return_sequences, rng=RNG)
        run = compile_recurrent(layer, np.dtype(np.float64))
        x = RNG.standard_normal((5, 7, 3))
        with no_grad():
            reference = layer(Tensor(x)).numpy()
        np.testing.assert_allclose(run(x), reference, atol=1e-12)

    def test_attention_parity(self):
        layer = AdditiveAttention(6, rng=RNG)
        run = compile_attention(layer, np.dtype(np.float64))
        x = RNG.standard_normal((3, 5, 6))
        with no_grad():
            reference = layer(Tensor(x)).numpy()
        np.testing.assert_allclose(run(x), reference, atol=1e-12)


class TestEmbeddingRowCache:
    def _tables(self):
        return [RNG.standard_normal((4, 3)), RNG.standard_normal((5, 2))]

    def test_rows_concatenate_in_order(self):
        tables = self._tables()
        cache = EmbeddingRowCache(tables, np.dtype(np.float64))
        ids = np.array([[1, 2], [3, 0]])
        expected = np.stack(
            [np.concatenate([tables[0][1], tables[1][2]]), np.concatenate([tables[0][3], tables[1][0]])]
        )
        np.testing.assert_allclose(cache.rows(ids), expected)
        assert cache.dim == 5

    def test_hit_and_miss_accounting(self):
        cache = EmbeddingRowCache(self._tables(), np.dtype(np.float64))
        cache.rows(np.array([[0, 0]]))
        cache.rows(np.array([[0, 0]]))
        cache.rows(np.array([[1, 1]]))
        assert cache.misses == 2
        assert cache.hits == 1

    def test_batched_path_counts_unique_tuples_once(self):
        cache = EmbeddingRowCache(self._tables(), np.dtype(np.float64))
        ids = np.array([[0, 0], [1, 1], [0, 0], [0, 0]])
        cache.rows(ids)
        assert cache.misses == 2  # two unique tuples, batched through np.unique

    def test_lru_eviction(self):
        cache = EmbeddingRowCache(self._tables(), np.dtype(np.float64), maxsize=2)
        cache.rows(np.array([[0, 0]]))
        cache.rows(np.array([[1, 1]]))
        cache.rows(np.array([[0, 0]]))  # refresh (0,0): now (1,1) is LRU
        cache.rows(np.array([[2, 2]]))  # evicts (1,1)
        assert len(cache) == 2
        misses = cache.misses
        cache.rows(np.array([[1, 1]]))  # was evicted -> miss again
        assert cache.misses == misses + 1
        assert len(cache) == 2

    def test_shape_validation(self):
        cache = EmbeddingRowCache(self._tables(), np.dtype(np.float64))
        with pytest.raises(ValueError, match="shape"):
            cache.rows(np.array([[0, 0, 0]]))

    def test_rejects_zero_maxsize(self):
        with pytest.raises(ValueError):
            EmbeddingRowCache(self._tables(), np.dtype(np.float64), maxsize=0)

    def test_cached_rows_are_read_only(self):
        """Regression: rows() used to hand out writable references into the
        cache, so a caller's in-place edit silently corrupted every future
        prediction for that environment."""
        cache = EmbeddingRowCache(self._tables(), np.dtype(np.float64))
        row = cache.rows(np.array([[1, 2]]))
        assert not row.flags.writeable
        with pytest.raises(ValueError):
            row[0, 0] = 99.0
        # The cached value is untouched and still served.
        np.testing.assert_array_equal(row, cache.rows(np.array([[1, 2]])))

    def test_multi_row_batches_are_writable_copies(self):
        cache = EmbeddingRowCache(self._tables(), np.dtype(np.float64))
        batch = cache.rows(np.array([[0, 0], [1, 1]]))
        expected_first = batch[0].copy()
        assert batch.flags.writeable  # fancy-indexed fresh array
        batch[0, 0] = expected_first[0] + 42.0  # must not poison the cache
        np.testing.assert_array_equal(cache.rows(np.array([[0, 0]]))[0], expected_first)


class TestEnginePredict:
    def test_chunked_predict_matches_single_shot(self):
        layer = Dense(4, 2, rng=RNG)
        engine = compile_module(layer)
        x = RNG.standard_normal((23, 4))
        np.testing.assert_allclose(
            engine.predict({"x": x}, batch_size=5), engine.predict({"x": x})
        )

    def test_predict_many_bitwise_matches_per_call_predict(self):
        layer = Dense(4, 2, rng=RNG)
        engine = compile_module(layer)
        parts = [{"x": RNG.standard_normal((n, 4))} for n in (3, 7, 1, 12)]
        coalesced = engine.predict_many(parts, batch_size=5)
        for piece, inputs in zip(coalesced, parts):
            solo = engine.predict(inputs, batch_size=5)
            assert piece.tobytes() == solo.tobytes()  # bitwise, not just close

    def test_chunked_predict_bitwise_at_large_batch(self):
        # Chunking at batch_size >= 16 must not move a bit: every kernel
        # on the compiled path is row-wise, so each chunk's rows see the
        # same arithmetic as the single-shot call.
        layer = Dense(4, 2, rng=RNG)
        engine = compile_module(layer)
        x = RNG.standard_normal((53, 4))
        chunked = engine.predict({"x": x}, batch_size=16)
        assert chunked.tobytes() == engine.predict({"x": x}).tobytes()

    def test_predict_zero_rows(self):
        layer = Dense(4, 2, rng=RNG)
        engine = compile_module(layer)
        for batch_size in (None, 5):
            out = engine.predict({"x": np.empty((0, 4))}, batch_size=batch_size)
            assert out.shape == (0, 2)

    def test_predict_rejects_empty_mapping(self):
        layer = Dense(4, 2, rng=RNG)
        engine = compile_module(layer)
        with pytest.raises(ValueError, match="at least one named array"):
            engine.predict({})

    def test_predict_many_with_zero_row_part(self):
        layer = Dense(4, 2, rng=RNG)
        engine = compile_module(layer)
        parts = [{"x": RNG.standard_normal((n, 4))} for n in (3, 0, 7)]
        pieces = engine.predict_many(parts, batch_size=4)
        assert [len(p) for p in pieces] == [3, 0, 7]
        for piece, inputs in zip(pieces, parts):
            solo = engine.predict(inputs, batch_size=4)
            assert piece.tobytes() == solo.tobytes()

    def test_predict_many_rejects_mismatched_keys(self):
        layer = Dense(4, 2, rng=RNG)
        engine = compile_module(layer)
        with pytest.raises(ValueError, match="differing keys"):
            engine.predict_many([{"x": np.ones((2, 4))}, {"y": np.ones((2, 4))}])

    def test_predict_many_empty_and_single(self):
        layer = Dense(4, 2, rng=RNG)
        engine = compile_module(layer)
        assert engine.predict_many([]) == []
        x = RNG.standard_normal((5, 4))
        [only] = engine.predict_many([{"x": x}])
        np.testing.assert_array_equal(only, engine.predict({"x": x}))

    def test_unregistered_module_raises(self):
        class Custom(Dense):
            pass

        with pytest.raises(UnsupportedModuleError, match="Custom"):
            compile_module(Custom(2, 2, rng=RNG))


class TestTrainerEngineRouting:
    def test_predict_matches_autograd_forward(self):
        model = Dense(3, 1, rng=RNG)
        trainer = Trainer(model, batch_size=8)
        x = RNG.standard_normal((20, 3))
        with no_grad():
            reference = model(Tensor(x)).numpy()
        np.testing.assert_allclose(trainer.predict({"x": x}), reference, atol=1e-12)

    def test_uncompilable_model_falls_back(self):
        class Odd(Dense):
            def forward(self, x):
                return super().forward(x) + 1.0

        model = Odd(3, 1, rng=RNG)
        trainer = Trainer(model, batch_size=8)
        x = RNG.standard_normal((10, 3))
        with no_grad():
            reference = model(Tensor(x)).numpy()
        np.testing.assert_allclose(trainer.predict({"x": x}), reference, atol=1e-12)

    def test_seeded_trainers_reproduce_histories(self):
        x = RNG.standard_normal((40, 3))
        y = x @ np.array([1.0, -2.0, 0.5])
        histories = []
        for _ in range(2):
            trainer = Trainer(
                _FlatDense(np.random.default_rng(11)), max_epochs=3, batch_size=8, seed=99
            )
            histories.append(trainer.fit({"x": x}, y).train_loss)
        assert histories[0] == histories[1]


class _FlatDense(Dense):
    """Dense that squeezes its output so MSE targets can be 1-d."""

    def __init__(self, rng):
        super().__init__(3, 1, rng=rng)

    def forward(self, x):
        return super().forward(Tensor(x)).reshape(-1)


class TestThreadLocalGradMode:
    def test_no_grad_does_not_leak_across_threads(self):
        inside = threading.Event()
        release = threading.Event()
        seen_in_other_thread = []

        def worker():
            inside.wait(timeout=5)
            seen_in_other_thread.append(is_grad_enabled())
            release.set()

        thread = threading.Thread(target=worker)
        thread.start()
        with no_grad():
            inside.set()
            assert release.wait(timeout=5)
            assert not is_grad_enabled()
        thread.join(timeout=5)
        assert seen_in_other_thread == [True]

    def test_grad_mode_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()
