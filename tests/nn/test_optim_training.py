"""Optimizers, losses, training loop, early stopping, and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    EarlyStopping,
    Module,
    Parameter,
    SGD,
    Sequential,
    Tensor,
    Trainer,
    load_model_bytes,
    load_state,
    mae_loss,
    mse_loss,
    get_loss,
    save_model_bytes,
    save_state,
)

RNG = np.random.default_rng(21)


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = Tensor(np.array([1.0, 4.0, 2.0]))
        assert mse_loss(pred, target).item() == pytest.approx((0 + 4 + 1) / 3)

    def test_mae_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = Tensor(np.array([1.0, 4.0, 2.0]))
        assert mae_loss(pred, target).item() == pytest.approx(1.0)

    def test_get_loss(self):
        from repro.nn import huber_loss

        assert get_loss("mse") is mse_loss
        assert get_loss("mae") is mae_loss
        assert get_loss("huber") is huber_loss
        with pytest.raises(ValueError):
            get_loss("quantile")

    def test_mse_gradient(self):
        pred = Tensor(np.array([2.0, 0.0]), requires_grad=True)
        mse_loss(pred, Tensor(np.array([0.0, 0.0]))).backward()
        np.testing.assert_allclose(pred.grad, [2.0, 0.0])

    def test_huber_values(self):
        from repro.nn import huber_loss

        pred = Tensor(np.array([0.5, 3.0]))
        target = Tensor(np.array([0.0, 0.0]))
        # 0.5*0.25 = 0.125 (quadratic) and 3 - 0.5 = 2.5 (linear) -> mean
        assert huber_loss(pred, target, delta=1.0).item() == pytest.approx(1.3125)

    def test_huber_equals_mse_half_inside_delta(self):
        from repro.nn import huber_loss

        rng = np.random.default_rng(0)
        pred = Tensor(rng.uniform(-0.5, 0.5, 20))
        target = Tensor(np.zeros(20))
        assert huber_loss(pred, target, delta=1.0).item() == pytest.approx(
            0.5 * mse_loss(pred, target).item()
        )

    def test_huber_gradient_bounded(self):
        from repro.nn import huber_loss

        pred = Tensor(np.array([100.0, -100.0]), requires_grad=True)
        huber_loss(pred, Tensor(np.zeros(2)), delta=1.0).backward()
        np.testing.assert_allclose(np.abs(pred.grad), 0.5)  # delta/len

    def test_huber_invalid_delta(self):
        from repro.nn import huber_loss

        with pytest.raises(ValueError):
            huber_loss(Tensor(np.zeros(2)), Tensor(np.zeros(2)), delta=0.0)


class QuadraticModel(Module):
    """f(w) = w; used so loss (w - target)^2 has a known minimum."""

    def __init__(self, start):
        super().__init__()
        self.w = Parameter(np.array(start, dtype=float))

    def forward(self):
        return self.w


class TestOptimizers:
    def _minimize(self, optimizer_factory, steps=300):
        model = QuadraticModel([5.0, -3.0])
        target = Tensor(np.array([1.0, 2.0]))
        opt = optimizer_factory(model.parameters())
        for _ in range(steps):
            opt.zero_grad()
            loss = mse_loss(model(), target)
            loss.backward()
            opt.step()
        return model.w.numpy()

    def test_sgd_converges(self):
        final = self._minimize(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(final, [1.0, 2.0], atol=1e-4)

    def test_sgd_momentum_converges(self):
        final = self._minimize(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(final, [1.0, 2.0], atol=1e-3)

    def test_adam_converges(self):
        final = self._minimize(lambda p: Adam(p, lr=0.1), steps=500)
        np.testing.assert_allclose(final, [1.0, 2.0], atol=1e-3)

    def test_adam_skips_params_without_grad(self):
        model = QuadraticModel([1.0])
        opt = Adam(model.parameters(), lr=0.1)
        opt.step()  # no backward yet; must not crash or move weights
        np.testing.assert_allclose(model.w.numpy(), [1.0])

    def test_invalid_hyperparameters(self):
        params = list(QuadraticModel([1.0]).parameters())
        with pytest.raises(ValueError):
            SGD(params, lr=-1.0)
        with pytest.raises(ValueError):
            SGD(params, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(params, beta1=1.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class Regressor(Module):
    def __init__(self, in_features, rng):
        super().__init__()
        self.net = Sequential(Dense(in_features, 16, activation="relu", rng=rng), Dense(16, 1, rng=rng))

    def forward(self, x):
        return self.net(Tensor(x)).reshape(-1)


def _toy_regression(n=400, noise=0.01):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, 3))
    y = 2.0 * x[:, 0] - x[:, 1] + 0.5 * x[:, 2] ** 2 + noise * rng.standard_normal(n)
    return x, y


class TestTrainer:
    def test_fit_reduces_loss(self):
        x, y = _toy_regression()
        model = Regressor(3, np.random.default_rng(1))
        trainer = Trainer(model, lr=0.01, batch_size=64, max_epochs=30, rng=np.random.default_rng(2))
        history = trainer.fit({"x": x}, y)
        assert history.train_loss[-1] < history.train_loss[0] * 0.3

    def test_early_stopping_restores_best(self):
        x, y = _toy_regression()
        split = 300
        model = Regressor(3, np.random.default_rng(1))
        stopper = EarlyStopping(patience=3)
        trainer = Trainer(
            model,
            lr=0.01,
            batch_size=64,
            max_epochs=200,
            early_stopping=stopper,
            rng=np.random.default_rng(2),
        )
        history = trainer.fit({"x": x[:split]}, y[:split], {"x": x[split:]}, y[split:])
        assert history.epochs_run < 200
        # The restored weights should achieve the recorded best val loss.
        final_val = trainer.evaluate({"x": x[split:]}, y[split:])
        assert final_val == pytest.approx(stopper.best_loss, rel=1e-9)

    def test_early_stopping_requires_validation(self):
        model = Regressor(3, np.random.default_rng(1))
        trainer = Trainer(model, early_stopping=EarlyStopping())
        x, y = _toy_regression(20)
        with pytest.raises(ValueError):
            trainer.fit({"x": x}, y)

    def test_predict_matches_manual_forward(self):
        x, y = _toy_regression(50)
        model = Regressor(3, np.random.default_rng(1))
        trainer = Trainer(model, batch_size=16)
        preds = trainer.predict({"x": x})
        assert preds.shape == (50,)
        model.eval()
        np.testing.assert_allclose(preds, model(x).numpy(), atol=1e-12)

    def test_mismatched_lengths_rejected(self):
        model = Regressor(3, np.random.default_rng(1))
        trainer = Trainer(model)
        with pytest.raises(ValueError):
            trainer.fit({"x": np.zeros((5, 3))}, np.zeros(4))

    def test_empty_data_rejected(self):
        model = Regressor(3, np.random.default_rng(1))
        trainer = Trainer(model)
        with pytest.raises(ValueError):
            trainer.fit({"x": np.zeros((0, 3))}, np.zeros(0))

    def test_invalid_constructor_args(self):
        model = Regressor(3, np.random.default_rng(1))
        with pytest.raises(ValueError):
            Trainer(model, batch_size=0)
        with pytest.raises(ValueError):
            Trainer(model, max_epochs=0)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        model = QuadraticModel([0.0])
        stopper = EarlyStopping(patience=2, restore_best=False)
        assert not stopper.update(1.0, model)
        assert not stopper.update(1.0, model)  # wait=1
        assert stopper.update(1.0, model)  # wait=2 -> stop

    def test_improvement_resets_wait(self):
        model = QuadraticModel([0.0])
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, model)
        stopper.update(1.0, model)
        assert not stopper.update(0.5, model)
        assert stopper.wait == 0

    def test_min_delta(self):
        model = QuadraticModel([0.0])
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(1.0, model)
        # 0.95 is not enough improvement given min_delta=0.1
        assert stopper.update(0.95, model)

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestSerialization:
    def test_bytes_roundtrip(self):
        model = Regressor(3, np.random.default_rng(1))
        blob = save_model_bytes(model, {"arch": "test", "n": 3})
        state, config = load_model_bytes(blob)
        assert config == {"arch": "test", "n": 3}
        other = Regressor(3, np.random.default_rng(99))
        other.net.load_state_dict({k.removeprefix("net."): v for k, v in state.items()})
        x = RNG.standard_normal((4, 3))
        model.eval(), other.eval()
        np.testing.assert_allclose(model(x).numpy(), other(x).numpy())

    def test_file_roundtrip(self, tmp_path):
        model = Regressor(3, np.random.default_rng(1))
        path = tmp_path / "model.npz"
        size = save_state(model, path, {"v": 1})
        assert path.stat().st_size == size
        other = Regressor(3, np.random.default_rng(5))
        config = load_state(other, path)
        assert config == {"v": 1}
        x = RNG.standard_normal((4, 3))
        model.eval(), other.eval()
        np.testing.assert_allclose(model(x).numpy(), other(x).numpy())

    def test_model_smaller_than_paper_budget(self, tmp_path):
        # Paper §6: the serialized Env2Vec artifact is < 10 MB.
        model = Regressor(3, np.random.default_rng(1))
        size = save_state(model, tmp_path / "m.npz")
        assert size < 10 * 1024 * 1024


class TestReduceLROnPlateau:
    def test_reduces_after_patience(self):
        from repro.nn import ReduceLROnPlateau

        model = QuadraticModel([1.0])
        opt = Adam(model.parameters(), lr=0.1)
        scheduler = ReduceLROnPlateau(patience=2, factor=0.5)
        scheduler.update(1.0, opt)
        assert not scheduler.update(1.0, opt)  # wait=1
        assert scheduler.update(1.0, opt)  # wait=2 -> reduce
        assert opt.lr == pytest.approx(0.05)
        assert scheduler.reductions == 1

    def test_improvement_resets(self):
        from repro.nn import ReduceLROnPlateau

        opt = Adam(list(QuadraticModel([1.0]).parameters()), lr=0.1)
        scheduler = ReduceLROnPlateau(patience=1)
        scheduler.update(1.0, opt)
        assert not scheduler.update(0.5, opt)
        assert opt.lr == 0.1

    def test_min_lr_floor(self):
        from repro.nn import ReduceLROnPlateau

        opt = Adam(list(QuadraticModel([1.0]).parameters()), lr=2e-5)
        scheduler = ReduceLROnPlateau(patience=1, factor=0.5, min_lr=1e-5)
        scheduler.update(1.0, opt)
        scheduler.update(1.0, opt)  # reduce to max(1e-5, 1e-5) = 1e-5
        scheduler.update(1.0, opt)  # at the floor: no further reduction
        assert opt.lr == pytest.approx(1e-5)

    def test_validation(self):
        from repro.nn import ReduceLROnPlateau

        with pytest.raises(ValueError):
            ReduceLROnPlateau(patience=0)
        with pytest.raises(ValueError):
            ReduceLROnPlateau(factor=1.0)
        with pytest.raises(ValueError):
            ReduceLROnPlateau(min_lr=0.0)

    def test_trainer_integration(self):
        from repro.nn import ReduceLROnPlateau

        x, y = _toy_regression()
        model = Regressor(3, np.random.default_rng(1))
        scheduler = ReduceLROnPlateau(patience=1, factor=0.5)
        trainer = Trainer(
            model,
            lr=0.01,
            batch_size=64,
            max_epochs=25,
            lr_scheduler=scheduler,
            rng=np.random.default_rng(2),
        )
        trainer.fit({"x": x[:300]}, y[:300], {"x": x[300:]}, y[300:])
        # The scheduler observed every epoch; lr never increased.
        assert trainer.optimizer.lr <= 0.01

    def test_trainer_requires_val_for_scheduler(self):
        from repro.nn import ReduceLROnPlateau

        x, y = _toy_regression(30)
        model = Regressor(3, np.random.default_rng(1))
        trainer = Trainer(model, lr_scheduler=ReduceLROnPlateau())
        with pytest.raises(ValueError):
            trainer.fit({"x": x}, y)


class TestWeightDecayAndClipping:
    def test_weight_decay_shrinks_weights(self):
        model = QuadraticModel([10.0])
        opt = SGD(model.parameters(), lr=0.1, weight_decay=0.5)
        # Zero gradient: only decay acts.
        model.w.grad = np.zeros(1)
        opt.step()
        assert model.w.numpy()[0] == pytest.approx(10.0 - 0.1 * 0.5 * 10.0)

    def test_adam_weight_decay_decoupled(self):
        model = QuadraticModel([4.0])
        opt = Adam(model.parameters(), lr=0.01, weight_decay=1.0)
        model.w.grad = np.zeros(1)
        opt.step()
        # Decoupled decay ignores Adam moments entirely (grad is zero).
        assert model.w.numpy()[0] == pytest.approx(4.0 - 0.01 * 4.0)

    def test_invalid_weight_decay(self):
        with pytest.raises(ValueError):
            SGD(list(QuadraticModel([1.0]).parameters()), weight_decay=-0.1)

    def test_clip_gradients_scales_to_norm(self):
        from repro.nn import clip_gradients

        p1 = Parameter(np.zeros(2))
        p2 = Parameter(np.zeros(2))
        p1.grad = np.array([3.0, 0.0])
        p2.grad = np.array([0.0, 4.0])
        pre = clip_gradients([p1, p2], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        total = np.sqrt(np.sum(p1.grad**2) + np.sum(p2.grad**2))
        assert total == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        from repro.nn import clip_gradients

        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_gradients([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clip_skips_gradless_params(self):
        from repro.nn import clip_gradients

        assert clip_gradients([Parameter(np.zeros(2))], max_norm=1.0) == 0.0

    def test_clip_invalid_norm(self):
        from repro.nn import clip_gradients

        with pytest.raises(ValueError):
            clip_gradients([], max_norm=0.0)
