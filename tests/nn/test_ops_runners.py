"""Fused sequence-runner contracts: bitwise float64, bounded float32.

The batched restructure of the :mod:`repro.nn.ops` runners (workspace
buffers, precombined input GEMMs, ``out=`` hot loops — DESIGN.md §6)
promises three things this file pins down:

- **float64 is bitwise.** The compiled runners replay the autograd
  recurrence scalar-op for scalar-op, so their float64 outputs equal the
  ``no_grad`` forward byte for byte — not merely to a tolerance.
- **float32 is bounded.** The low-precision paths may reassociate
  (single-GEMM affine projection, composed sigmoid) but stay within
  :data:`repro.nn.inference.FLOAT32_ATOL` of the float64 answer.
- **Workspace reuse is invisible.** Per-thread scratch buffers must
  never alias a returned array: results survive later calls, and the
  empty/zero-length edges still come back in the right shape and dtype.
"""

import numpy as np
import pytest

from repro.nn import GRU, LSTM, Tensor, no_grad
from repro.nn.inference import FLOAT32_ATOL, compile_recurrent
from repro.nn import ops

RNG = np.random.default_rng(11)


def _gru_fused(input_dim=3, hidden=16, dtype=np.float64, seed=5):
    rng = np.random.default_rng(seed)
    parts = []
    for gate in range(3):
        parts += [
            rng.standard_normal((input_dim, hidden)),
            rng.standard_normal((hidden, hidden)),
            rng.standard_normal(hidden),
        ]
    return ops.fuse_gru_weights(*parts, dtype=dtype)


def _lstm_fused(input_dim=3, hidden=16, dtype=np.float64, seed=5):
    rng = np.random.default_rng(seed)
    parts = []
    for gate in range(4):
        parts += [
            rng.standard_normal((input_dim, hidden)),
            rng.standard_normal((hidden, hidden)),
            rng.standard_normal(hidden),
        ]
    return ops.fuse_lstm_weights(*parts, dtype=dtype)


class TestFloat64Bitwise:
    """The restructured runners must not move a single float64 bit."""

    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid", "linear"])
    @pytest.mark.parametrize("return_sequences", [False, True])
    def test_gru_matches_autograd_bytes(self, activation, return_sequences):
        layer = GRU(3, 16, activation=activation, return_sequences=return_sequences, rng=RNG)
        run = compile_recurrent(layer, np.dtype(np.float64))
        x = RNG.standard_normal((5, 9, 3))
        with no_grad():
            reference = layer(Tensor(x)).numpy()
        assert run(x).tobytes() == reference.tobytes()

    @pytest.mark.parametrize("return_sequences", [False, True])
    def test_lstm_matches_autograd_bytes(self, return_sequences):
        layer = LSTM(3, 16, return_sequences=return_sequences, rng=RNG)
        run = compile_recurrent(layer, np.dtype(np.float64))
        x = RNG.standard_normal((5, 9, 3))
        with no_grad():
            reference = layer(Tensor(x)).numpy()
        assert run(x).tobytes() == reference.tobytes()

    def test_single_feature_broadcast_projection_is_bitwise(self):
        # K=1 is the RU-history hot path where the input GEMM degenerates
        # to a broadcast multiply; it must still match autograd exactly.
        layer = GRU(1, 16, activation="relu", rng=RNG)
        run = compile_recurrent(layer, np.dtype(np.float64))
        x = RNG.standard_normal((1, 3, 1))
        with no_grad():
            reference = layer(Tensor(x)).numpy()
        assert run(x).tobytes() == reference.tobytes()


class TestFloat32Parity:
    @pytest.mark.parametrize("runner,fused,extra", [
        (ops.gru_sequence, _gru_fused, ("relu",)),
        (ops.lstm_sequence, _lstm_fused, ()),
    ])
    def test_lowp_path_within_bound(self, runner, fused, extra):
        x = RNG.standard_normal((8, 6, 3))
        exact = runner(x, fused(dtype=np.float64), *extra, True)
        lowp = runner(
            x.astype(np.float32), fused(dtype=np.float32), *extra, True
        )
        assert lowp.dtype == np.float32
        assert np.max(np.abs(lowp - exact)) <= FLOAT32_ATOL

    def test_unknown_activation_raises(self):
        fused = _gru_fused(dtype=np.float32)
        x = RNG.standard_normal((2, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="unknown activation"):
            ops.gru_sequence(x, fused, "softmax")


class TestWorkspaceIsolation:
    """Returned arrays must be fresh — never views of the scratch pool."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_gru_results_survive_later_calls(self, dtype):
        fused = _gru_fused(dtype=dtype)
        a = RNG.standard_normal((4, 7, 3)).astype(dtype)
        b = RNG.standard_normal((4, 7, 3)).astype(dtype)
        first = ops.gru_sequence(a, fused, "tanh")
        snapshot = first.copy()
        ops.gru_sequence(b, fused, "tanh")  # same workspace key
        np.testing.assert_array_equal(first, snapshot)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_lstm_results_survive_later_calls(self, dtype):
        fused = _lstm_fused(dtype=dtype)
        a = RNG.standard_normal((4, 7, 3)).astype(dtype)
        b = RNG.standard_normal((4, 7, 3)).astype(dtype)
        first = ops.lstm_sequence(a, fused, True)
        snapshot = first.copy()
        ops.lstm_sequence(b, fused, True)
        np.testing.assert_array_equal(first, snapshot)

    def test_augmented_input_ones_column_survives_reuse(self):
        x1 = RNG.standard_normal((2, 3, 2)).astype(np.float32)
        x2 = RNG.standard_normal((2, 3, 2)).astype(np.float32)
        a1 = ops._augmented_input(x1, 3, 2, np.dtype(np.float32))
        np.testing.assert_array_equal(a1[:, -1], np.ones(6, dtype=np.float32))
        a2 = ops._augmented_input(x2, 3, 2, np.dtype(np.float32))
        np.testing.assert_array_equal(a2[:, -1], np.ones(6, dtype=np.float32))
        np.testing.assert_array_equal(
            a2[:, :2], x2.transpose(1, 0, 2).reshape(6, 2)
        )


class TestZeroLengthEdges:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_gru_zero_timesteps(self, dtype):
        fused = _gru_fused(dtype=dtype)
        x = np.empty((4, 0, 3), dtype=dtype)
        last = ops.gru_sequence(x, fused, "relu", False)
        seq = ops.gru_sequence(x, fused, "relu", True)
        assert last.shape == (4, 16) and last.dtype == dtype
        np.testing.assert_array_equal(last, np.zeros((4, 16), dtype=dtype))
        assert seq.shape == (4, 0, 16) and seq.dtype == dtype

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_lstm_zero_timesteps(self, dtype):
        fused = _lstm_fused(dtype=dtype)
        x = np.empty((4, 0, 3), dtype=dtype)
        last = ops.lstm_sequence(x, fused, False)
        seq = ops.lstm_sequence(x, fused, True)
        assert last.shape == (4, 16) and last.dtype == dtype
        np.testing.assert_array_equal(last, np.zeros((4, 16), dtype=dtype))
        assert seq.shape == (4, 0, 16) and seq.dtype == dtype
