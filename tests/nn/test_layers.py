"""Tests for Dense/Dropout/Embedding/Sequential and Module mechanics."""

import numpy as np
import pytest

from repro.nn import Dense, Dropout, Embedding, Module, Parameter, Sequential, Tensor

RNG = np.random.default_rng(11)


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 6, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((10, 4))))
        assert out.shape == (10, 6)

    def test_linear_activation_matches_numpy(self):
        layer = Dense(3, 2, rng=RNG)
        x = RNG.standard_normal((5, 3))
        out = layer(Tensor(x))
        expected = x @ layer.weight.numpy() + layer.bias.numpy()
        np.testing.assert_allclose(out.numpy(), expected)

    def test_sigmoid_activation_bounded(self):
        layer = Dense(3, 2, activation="sigmoid", rng=RNG)
        out = layer(Tensor(RNG.standard_normal((50, 3)) * 10)).numpy()
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_relu_activation_nonnegative(self):
        layer = Dense(3, 2, activation="relu", rng=RNG)
        out = layer(Tensor(RNG.standard_normal((50, 3)))).numpy()
        assert out.min() >= 0.0

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError, match="unknown activation"):
            Dense(3, 2, activation="softmax")

    def test_gradients_reach_weights(self):
        layer = Dense(3, 2, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((5, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [5.0, 5.0])


class TestDropout:
    def test_train_mode_masks(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.train()
        out = layer(Tensor(np.ones((200, 10)), requires_grad=True)).numpy()
        assert (out == 0).any()
        # Inverted dropout keeps the expectation ~1
        assert abs(out.mean() - 1.0) < 0.1

    def test_eval_mode_is_identity(self):
        layer = Dropout(0.9, rng=np.random.default_rng(0))
        layer.eval()
        x = np.ones((5, 5))
        np.testing.assert_allclose(layer(Tensor(x, requires_grad=True)).numpy(), x)

    def test_zero_rate_is_identity(self):
        layer = Dropout(0.0)
        x = Tensor(np.ones(4), requires_grad=True)
        assert layer(x) is x

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestEmbedding:
    def test_lookup_returns_rows(self):
        emb = Embedding(5, 3, rng=RNG)
        ids = np.array([0, 4, 2])
        out = emb(ids)
        np.testing.assert_allclose(out.numpy(), emb.weight.numpy()[ids])

    def test_gradient_is_sparse_scatter(self):
        emb = Embedding(5, 3, rng=RNG)
        ids = np.array([1, 1, 3])
        emb(ids).sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[1], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(grad[3], [1.0, 1.0, 1.0])
        np.testing.assert_allclose(grad[0], 0.0)

    def test_out_of_range_ids_rejected(self):
        emb = Embedding(5, 3, rng=RNG)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_needs_at_least_one_row(self):
        with pytest.raises(ValueError):
            Embedding(0, 3)


class TestModuleMechanics:
    def _model(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Dense(3, 4, rng=RNG)
                self.drop = Dropout(0.5, rng=np.random.default_rng(1))
                self.fc2 = Dense(4, 1, rng=RNG)
                self.extra = [Dense(2, 2, rng=RNG)]
                self.table = {"emb": Embedding(3, 2, rng=RNG)}

            def forward(self, x):
                return self.fc2(self.drop(self.fc1(x)))

        return Net()

    def test_parameters_recurse_containers(self):
        model = self._model()
        params = list(model.parameters())
        # fc1 (2) + fc2 (2) + extra dense (2) + embedding (1)
        assert len(params) == 7

    def test_named_parameters_unique_names(self):
        model = self._model()
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names))
        assert "fc1.weight" in names
        assert "table.emb.weight" in names
        assert "extra.0.bias" in names

    def test_train_eval_propagates(self):
        model = self._model()
        model.eval()
        assert not model.drop.training
        model.train()
        assert model.drop.training

    def test_zero_grad_clears_all(self):
        model = self._model()
        out = model(Tensor(RNG.standard_normal((2, 3))))
        out.sum().backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert model.fc1.weight.grad is None

    def test_state_dict_roundtrip(self):
        model = self._model()
        state = model.state_dict()
        other = self._model()
        other.load_state_dict(state)
        for (_, p1), (_, p2) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_allclose(p1.numpy(), p2.numpy())

    def test_load_state_dict_rejects_mismatch(self):
        model = self._model()
        state = model.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        model = self._model()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((99, 99))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_num_parameters(self):
        model = self._model()
        expected = sum(p.size for p in model.parameters())
        assert model.num_parameters() == expected

    def test_shared_parameter_counted_once(self):
        class Tied(Module):
            def __init__(self):
                super().__init__()
                self.shared = Parameter(np.ones((2, 2)))
                self.alias = self.shared

            def forward(self, x):  # pragma: no cover
                return x

        assert len(list(Tied().parameters())) == 1


class TestSequential:
    def test_applies_in_order(self):
        seq = Sequential(Dense(3, 4, activation="relu", rng=RNG), Dense(4, 1, rng=RNG))
        out = seq(Tensor(RNG.standard_normal((6, 3))))
        assert out.shape == (6, 1)

    def test_append(self):
        seq = Sequential(Dense(3, 4, rng=RNG))
        seq.append(Dense(4, 2, rng=RNG))
        assert seq(Tensor(RNG.standard_normal((2, 3)))).shape == (2, 2)

    def test_parameters_collected(self):
        seq = Sequential(Dense(3, 4, rng=RNG), Dense(4, 1, rng=RNG))
        assert len(list(seq.parameters())) == 4
