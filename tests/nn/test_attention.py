"""Additive attention tests (the §6 future-work extension)."""

import numpy as np
import pytest

from repro.nn import AdditiveAttention, Tensor

RNG = np.random.default_rng(41)


class TestAdditiveAttention:
    def test_output_shape(self):
        attention = AdditiveAttention(6, rng=RNG)
        out = attention(Tensor(RNG.standard_normal((4, 7, 6))))
        assert out.shape == (4, 6)

    def test_weights_are_a_distribution(self):
        attention = AdditiveAttention(5, rng=RNG)
        attention(Tensor(RNG.standard_normal((3, 9, 5))))
        weights = attention.last_weights
        assert weights.shape == (3, 9)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-12)
        assert (weights >= 0).all()

    def test_output_is_weighted_average(self):
        attention = AdditiveAttention(4, rng=RNG)
        sequence = RNG.standard_normal((2, 5, 4))
        out = attention(Tensor(sequence)).numpy()
        weights = attention.last_weights
        expected = np.einsum("bt,bth->bh", weights, sequence)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_identical_timesteps_uniform_weights(self):
        attention = AdditiveAttention(4, rng=RNG)
        step = RNG.standard_normal((1, 1, 4))
        sequence = np.repeat(step, 6, axis=1)
        attention(Tensor(sequence))
        np.testing.assert_allclose(attention.last_weights, 1.0 / 6.0, atol=1e-12)

    def test_single_timestep_passthrough(self):
        attention = AdditiveAttention(4, rng=RNG)
        sequence = RNG.standard_normal((3, 1, 4))
        out = attention(Tensor(sequence)).numpy()
        np.testing.assert_allclose(out, sequence[:, 0, :], atol=1e-12)

    def test_gradients_flow(self):
        attention = AdditiveAttention(3, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 4, 3)), requires_grad=True)
        (attention(x) ** 2).sum().backward()
        assert x.grad is not None
        assert attention.projection.grad is not None
        assert attention.context.grad is not None

    def test_gradcheck_against_numeric(self):
        attention = AdditiveAttention(2, attention_size=3, rng=RNG)
        x = RNG.standard_normal((1, 3, 2))

        def value(arr):
            return (attention(Tensor(arr)) ** 2).sum().item()

        t = Tensor(x.copy(), requires_grad=True)
        (attention(t) ** 2).sum().backward()
        eps = 1e-6
        numeric = np.zeros_like(x)
        flat, num_flat = x.reshape(-1), numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = value(x)
            flat[i] = original - eps
            minus = value(x)
            flat[i] = original
            num_flat[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(t.grad, numeric, rtol=1e-4, atol=1e-7)

    def test_invalid_shapes(self):
        attention = AdditiveAttention(4, rng=RNG)
        with pytest.raises(ValueError):
            attention(Tensor(RNG.standard_normal((2, 4))))
        with pytest.raises(ValueError):
            attention(Tensor(RNG.standard_normal((2, 3, 5))))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdditiveAttention(0)
        with pytest.raises(ValueError):
            AdditiveAttention(4, attention_size=0)

    def test_weights_before_forward_raise(self):
        with pytest.raises(RuntimeError):
            AdditiveAttention(4, rng=RNG).last_weights

    def test_attends_to_informative_timestep_after_training(self):
        """Train attention so only timestep 0 predicts the target; its
        weight should dominate."""
        from repro.nn import Adam, mse_loss

        rng = np.random.default_rng(3)
        attention = AdditiveAttention(1, attention_size=8, rng=rng)
        optimizer = Adam(attention.parameters(), lr=0.05)
        for _ in range(200):
            sequence = rng.standard_normal((32, 4, 1))
            target = Tensor(sequence[:, 0, 0])
            optimizer.zero_grad()
            out = attention(Tensor(sequence)).reshape(-1)
            loss = mse_loss(out, target)
            loss.backward()
            optimizer.step()
        attention(Tensor(rng.standard_normal((64, 4, 1))))
        # Timestep 0 gets the most attention on average.
        mean_weights = attention.last_weights.mean(axis=0)
        assert mean_weights[0] == max(mean_weights)


class TestThreadSafety:
    """Regression: last_weights must not be a shared mutable buffer.

    The parallel campaign executor's workers share one model; before the
    per-thread fix, worker A could read the attention weights of worker
    B's coalesced batch through ``last_weights``.
    """

    def test_attend_returns_per_call_weights(self):
        attention = AdditiveAttention(4, rng=RNG)
        first_seq = RNG.standard_normal((2, 5, 4))
        second_seq = RNG.standard_normal((3, 6, 4))
        _, first_weights = attention.attend(Tensor(first_seq))
        _, second_weights = attention.attend(Tensor(second_seq))
        # the handle from the first call is unaffected by the second
        assert first_weights.shape == (2, 5)
        assert second_weights.shape == (3, 6)
        out = attention(Tensor(first_seq)).numpy()
        np.testing.assert_allclose(
            out, np.einsum("bt,bth->bh", first_weights, first_seq), atol=1e-12
        )

    def test_last_weights_is_per_thread_under_worker_pool(self):
        from repro.parallel import WorkerPool

        attention = AdditiveAttention(3, rng=np.random.default_rng(7))
        rng = np.random.default_rng(9)
        # distinct batch shapes per task so cross-thread bleed is detectable
        batches = [rng.standard_normal((i + 1, 4 + i, 3)) for i in range(8)]

        def run(batch: np.ndarray) -> bool:
            for _ in range(20):  # many forwards to interleave threads
                out = attention(Tensor(batch)).numpy()
                weights = attention.last_weights
                if weights.shape != batch.shape[:2]:
                    return False
                if not np.allclose(out, np.einsum("bt,bth->bh", weights, batch), atol=1e-12):
                    return False
            return True

        with WorkerPool(n_workers=4) as pool:
            results = pool.map(run, batches)
        assert all(results)

    def test_fresh_thread_sees_no_weights(self):
        import threading

        attention = AdditiveAttention(3, rng=np.random.default_rng(5))
        attention(Tensor(np.random.default_rng(1).standard_normal((2, 4, 3))))
        outcome = {}

        def probe():
            try:
                attention.last_weights
                outcome["raised"] = False
            except RuntimeError:
                outcome["raised"] = True

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert outcome["raised"] is True
