"""SequenceEncoder registry tests, parametrized over every registered encoder.

New encoders added via ``@register_encoder`` are picked up automatically:
each one must pass autograd-vs-compiled parity (≤1e-10), byte-identical
``save_encoder_bytes``/``load_encoder_bytes`` round-trips, config
round-trips, and seed determinism.
"""

import numpy as np
import pytest

from repro.nn import (
    SequenceEncoder,
    Tensor,
    available_encoders,
    compile_module,
    create_encoder,
    encoder_from_config,
    load_encoder_bytes,
    register_encoder,
    resolve_encoder_name,
    save_encoder_bytes,
    validate_encoder_name,
)
from repro.nn.encoders import _ENCODERS
from repro.nn.inference import FLOAT32_ATOL

INPUT_SIZE = 1
HIDDEN = 5


def _make(name: str, seed: int = 11) -> SequenceEncoder:
    return create_encoder(name, INPUT_SIZE, HIDDEN, rng=np.random.default_rng(seed))


def _sequence(batch: int = 6, timesteps: int = 7, seed: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((batch, timesteps, INPUT_SIZE))


class TestRegistry:
    def test_zoo_is_registered(self):
        for name in ("gru", "lstm", "stacked", "bidirectional", "attention", "lstm_attention"):
            assert name in available_encoders()

    def test_available_encoders_sorted(self):
        assert list(available_encoders()) == sorted(available_encoders())

    def test_validate_lists_all_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            validate_encoder_name("transformer")
        message = str(excinfo.value)
        for name in available_encoders():
            assert name in message

    def test_create_unknown_encoder_raises(self):
        with pytest.raises(ValueError, match="unknown encoder"):
            create_encoder("nope", 1, 4)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_encoder("gru")(type("Dup", (SequenceEncoder,), {}))

    def test_registered_class_carries_name(self):
        for name, cls in _ENCODERS.items():
            assert cls.name == name


class TestAliasResolution:
    @pytest.mark.parametrize(
        ("unit", "attention", "expected"),
        [
            (None, None, "gru"),
            ("gru", None, "gru"),
            ("gru", True, "attention"),
            ("lstm", None, "lstm"),
            ("lstm", True, "lstm_attention"),
        ],
    )
    def test_alias_map(self, unit, attention, expected):
        assert resolve_encoder_name(None, unit, attention) == expected

    def test_direct_name_passthrough(self):
        assert resolve_encoder_name("bidirectional") == "bidirectional"

    def test_registered_name_as_recurrent_unit(self):
        # an unmapped unit naming a registered encoder is a direct alias
        assert resolve_encoder_name(None, "stacked", None) == "stacked"

    def test_both_spellings_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_encoder_name("gru", "lstm", None)
        with pytest.raises(ValueError, match="not both"):
            resolve_encoder_name("gru", None, True)

    def test_attention_with_unmapped_unit_rejected(self):
        with pytest.raises(ValueError, match="use_attention"):
            resolve_encoder_name(None, "stacked", True)

    def test_unknown_unit_lists_encoders(self):
        with pytest.raises(ValueError, match="registered encoders"):
            resolve_encoder_name(None, "rnn", None)


@pytest.mark.parametrize("name", available_encoders())
class TestEveryEncoder:
    def test_forward_shape_matches_output_dim(self, name):
        encoder = _make(name)
        out = encoder(Tensor(_sequence()))
        assert out.shape == (6, encoder.output_dim)

    def test_gradients_reach_every_parameter(self, name):
        encoder = _make(name)
        out = encoder(Tensor(_sequence()))
        (out * out).sum().backward()
        for param_name, param in encoder.named_parameters():
            assert param.grad is not None, param_name
            assert np.isfinite(param.grad).all(), param_name

    def test_compiled_parity(self, name):
        encoder = _make(name)
        encoder.eval()
        engine = compile_module(encoder)
        max_diff = engine.assert_close({"sequence": _sequence(batch=9)}, atol=1e-10)
        assert max_diff <= 1e-10

    def test_compiled_float32_parity(self, name):
        # The low-precision batch path may reassociate (fused affine
        # GEMM, composed sigmoid) but must stay inside the f32 bound.
        encoder = _make(name)
        encoder.eval()
        engine = compile_module(encoder, dtype=np.float32)
        max_diff = engine.assert_close({"sequence": _sequence(batch=9)})
        assert max_diff <= FLOAT32_ATOL

    def test_compiled_zero_timesteps(self, name):
        if "attention" in name:
            # softmax pooling over zero timesteps is undefined — the
            # autograd forward rejects it too, so there is no contract
            # for the compiled plan to match.
            pytest.skip("attention pooling has no zero-timestep meaning")
        encoder = _make(name)
        encoder.eval()
        engine = compile_module(encoder)
        out = engine(sequence=np.empty((4, 0, INPUT_SIZE)))
        assert out.shape == (4, encoder.output_dim)
        assert out.dtype == np.float64

    def test_serialization_byte_identity(self, name):
        encoder = _make(name)
        blob = save_encoder_bytes(encoder)
        restored = load_encoder_bytes(blob)
        assert type(restored) is type(encoder)
        assert save_encoder_bytes(restored) == blob

    def test_restored_encoder_predicts_identically(self, name):
        encoder = _make(name)
        restored = load_encoder_bytes(save_encoder_bytes(encoder))
        encoder.eval()
        restored.eval()
        sequence = _sequence(batch=4)
        np.testing.assert_array_equal(
            encoder(Tensor(sequence)).numpy(), restored(Tensor(sequence)).numpy()
        )

    def test_config_roundtrip(self, name):
        encoder = _make(name)
        rebuilt = encoder_from_config(encoder.to_config(), rng=np.random.default_rng(0))
        assert rebuilt.to_config() == encoder.to_config()

    def test_seed_determinism(self, name):
        a, b = _make(name, seed=21), _make(name, seed=21)
        for (key_a, param_a), (key_b, param_b) in zip(
            a.named_parameters(), b.named_parameters()
        ):
            assert key_a == key_b
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_input_validation(self, name):
        encoder = _make(name)
        with pytest.raises(ValueError, match="expected"):
            encoder(Tensor(np.zeros((2, 5))))
        with pytest.raises(ValueError, match="expected"):
            encoder(Tensor(np.zeros((2, 5, INPUT_SIZE + 1))))


def test_bidirectional_output_dim_doubles():
    encoder = _make("bidirectional")
    assert encoder.output_dim == 2 * HIDDEN


def test_encoder_from_config_missing_key():
    with pytest.raises(ValueError, match="missing"):
        encoder_from_config({"name": "gru", "input_size": 1})


def test_load_encoder_bytes_rejects_plain_model_blob():
    from repro.nn import Dense, save_model_bytes

    blob = save_model_bytes(Dense(2, 2, rng=np.random.default_rng(0)))
    with pytest.raises(ValueError, match="missing recipe"):
        load_encoder_bytes(blob)
