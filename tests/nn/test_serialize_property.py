"""Property-based round-trip tests for model serialization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    GRU,
    Dense,
    Embedding,
    Module,
    Sequential,
    Tensor,
    load_model_bytes,
    save_model_bytes,
)


class MixedModel(Module):
    """Exercises every layer family in one state dict."""

    def __init__(self, in_features, hidden, n_embeddings, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.net = Sequential(
            Dense(in_features, hidden, activation="relu", rng=rng),
            Dense(hidden, 4, rng=rng),
        )
        self.gru = GRU(1, hidden, rng=rng)
        self.table = Embedding(n_embeddings, 4, rng=rng)

    def forward(self, x, seq, ids):
        dense = self.net(Tensor(x))
        recurrent = self.gru(Tensor(seq))
        emb = self.table(ids)
        return (dense * emb).sum(axis=1) + recurrent.sum(axis=1)


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_state_roundtrip_preserves_forward(in_features, hidden, n_embeddings, seed):
    """save -> load into a differently-initialized clone -> identical outputs."""
    rng = np.random.default_rng(seed)
    model = MixedModel(in_features, hidden, n_embeddings, seed)
    blob = save_model_bytes(model, {"seed": seed})
    clone = MixedModel(in_features, hidden, n_embeddings, seed + 1)
    state, config = load_model_bytes(blob)
    clone.load_state_dict(state)
    assert config == {"seed": seed}

    x = rng.standard_normal((5, in_features))
    seq = rng.standard_normal((5, 3, 1))
    ids = rng.integers(0, n_embeddings, 5)
    model.eval(), clone.eval()
    np.testing.assert_allclose(
        model(x, seq, ids).numpy(), clone(x, seq, ids).numpy(), atol=0
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_blob_is_stable_for_same_state(seed):
    """Serializing twice without touching the model yields identical state."""
    model = MixedModel(3, 4, 5, seed)
    state_a, _ = load_model_bytes(save_model_bytes(model))
    state_b, _ = load_model_bytes(save_model_bytes(model))
    assert state_a.keys() == state_b.keys()
    for key in state_a:
        np.testing.assert_array_equal(state_a[key], state_b[key])


def test_reserved_config_key_rejected():
    model = MixedModel(2, 3, 4, 0)
    blob = save_model_bytes(model)
    state, _ = load_model_bytes(blob)
    assert all(not k.startswith("__") for k in state)
