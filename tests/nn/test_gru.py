"""GRU correctness: equations of Appendix A, shapes, and gradient checks."""

import numpy as np
import pytest

from repro.nn import GRU, GRUCell, Tensor

RNG = np.random.default_rng(3)


def manual_gru_step(cell: GRUCell, y, h, activation):
    """Reference implementation of the Appendix A equations in raw numpy."""

    def sigmoid(v):
        return 1.0 / (1.0 + np.exp(-v))

    z = sigmoid(y @ cell.w_z.numpy() + h @ cell.u_z.numpy() + cell.b_z.numpy())
    r = sigmoid(y @ cell.w_r.numpy() + h @ cell.u_r.numpy() + cell.b_r.numpy())
    candidate = y @ cell.w_h.numpy() + r * (h @ cell.u_h.numpy()) + cell.b_h.numpy()
    if activation == "relu":
        candidate = np.maximum(candidate, 0.0)
    else:
        candidate = np.tanh(candidate)
    return (1.0 - z) * candidate + z * h


class TestGRUCell:
    @pytest.mark.parametrize("activation", ["relu", "tanh"])
    def test_matches_reference_equations(self, activation):
        cell = GRUCell(2, 4, activation=activation, rng=RNG)
        y = RNG.standard_normal((5, 2))
        h = RNG.standard_normal((5, 4))
        out = cell(Tensor(y), Tensor(h))
        np.testing.assert_allclose(out.numpy(), manual_gru_step(cell, y, h, activation), atol=1e-12)

    def test_update_gate_one_keeps_state(self):
        # Forcing z_t -> 1 (huge positive bias) should pass h_prev through.
        cell = GRUCell(1, 3, rng=RNG)
        cell.b_z.data[:] = 50.0
        h = RNG.standard_normal((2, 3))
        out = cell(Tensor(RNG.standard_normal((2, 1))), Tensor(h))
        np.testing.assert_allclose(out.numpy(), h, atol=1e-8)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            GRUCell(1, 2, activation="softmax")

    def test_gradcheck_all_parameters(self):
        cell = GRUCell(2, 3, activation="tanh", rng=RNG)
        y = RNG.standard_normal((4, 2))
        h0 = RNG.standard_normal((4, 3))

        def loss_value():
            return (cell(Tensor(y), Tensor(h0)) ** 2).sum()

        loss_value().backward()
        eps = 1e-6
        for name, param in cell.named_parameters():
            analytic = param.grad
            assert analytic is not None, name
            flat = param.data.reshape(-1)
            for i in range(0, flat.size, max(1, flat.size // 4)):
                orig = flat[i]
                flat[i] = orig + eps
                plus = loss_value().item()
                flat[i] = orig - eps
                minus = loss_value().item()
                flat[i] = orig
                numeric = (plus - minus) / (2 * eps)
                np.testing.assert_allclose(
                    analytic.reshape(-1)[i], numeric, rtol=1e-4, atol=1e-6, err_msg=name
                )


class TestGRULayer:
    def test_output_shape_last_state(self):
        gru = GRU(2, 5, rng=RNG)
        out = gru(Tensor(RNG.standard_normal((7, 4, 2))))
        assert out.shape == (7, 5)

    def test_return_sequences_shape(self):
        gru = GRU(2, 5, return_sequences=True, rng=RNG)
        out = gru(Tensor(RNG.standard_normal((7, 4, 2))))
        assert out.shape == (7, 4, 5)

    def test_last_state_matches_sequence_tail(self):
        rng = np.random.default_rng(5)
        gru_last = GRU(2, 3, rng=rng)
        gru_seq = GRU(2, 3, rng=np.random.default_rng(5))
        gru_seq.cell.load_state_dict(gru_last.cell.state_dict())
        gru_seq.return_sequences = True
        x = RNG.standard_normal((4, 6, 2))
        last = gru_last(Tensor(x)).numpy()
        seq = gru_seq(Tensor(x)).numpy()
        np.testing.assert_allclose(last, seq[:, -1, :])

    def test_manual_unroll_matches(self):
        gru = GRU(1, 3, activation="tanh", rng=RNG)
        x = RNG.standard_normal((2, 5, 1))
        h = np.zeros((2, 3))
        for t in range(5):
            h = manual_gru_step(gru.cell, x[:, t, :], h, "tanh")
        np.testing.assert_allclose(gru(Tensor(x)).numpy(), h, atol=1e-12)

    def test_rejects_non_3d(self):
        gru = GRU(2, 3, rng=RNG)
        with pytest.raises(ValueError):
            gru(Tensor(RNG.standard_normal((5, 2))))

    def test_gradient_flows_through_time(self):
        gru = GRU(1, 3, activation="tanh", rng=RNG)
        x = Tensor(RNG.standard_normal((2, 4, 1)), requires_grad=True)
        gru(x).sum().backward()
        # Every timestep influences the final state.
        assert x.grad is not None
        assert (np.abs(x.grad) > 0).all()

    def test_gradcheck_input_through_time(self):
        gru = GRU(1, 2, activation="tanh", rng=RNG)
        x = RNG.standard_normal((1, 3, 1))

        def run(arr):
            return (gru(Tensor(arr)) ** 2).sum()

        t = Tensor(x.copy(), requires_grad=True)
        (gru(t) ** 2).sum().backward()
        eps = 1e-6
        numeric = np.zeros_like(x)
        flat = x.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = run(x).item()
            flat[i] = orig - eps
            minus = run(x).item()
            flat[i] = orig
            num_flat[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(t.grad, numeric, rtol=1e-4, atol=1e-7)
