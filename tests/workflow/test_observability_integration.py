"""End-to-end dogfood loop: a campaign's self-metrics through its own TSDB.

Runs a short :class:`TestingCampaign` and asserts the observability
acceptance bar: the daily scrapes land ≥10 distinct ``repro_*`` metrics in
the campaign-owned TSDB, and both a ``rate()`` and a
``histogram_quantile()`` query succeed through the in-repo PromQL engine.
"""

import numpy as np
import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.obs import OBS
from repro.workflow import TestingCampaign, observability_summary, promql_query


@pytest.fixture(scope="module")
def campaign():
    OBS.reset()
    dataset = generate_telecom(
        TelecomConfig(
            n_chains=8,
            n_testbeds=4,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=2,
            include_rare_testbed=False,
            fault_magnitude=(14.0, 25.0),
            seed=4,
        )
    )
    campaign = TestingCampaign(model_params={"max_epochs": 6, "batch_size": 256})
    campaign.run(dataset)
    return campaign


class TestCampaignSelfMetrics:
    def test_scrapes_cover_at_least_ten_distinct_metrics(self, campaign):
        tsdb = campaign.observability_tsdb
        metrics = [name for name in tsdb.metrics() if name.startswith("repro_")]
        assert len(metrics) >= 10, metrics
        # One scrape per day, all timestamps on the daily cadence.
        series = tsdb.query_one("repro_campaign_days_total")
        assert len(series) >= 3
        assert series.values == sorted(series.values)  # counters only go up

    def test_rate_query_succeeds(self, campaign):
        samples = promql_query(
            campaign.observability_tsdb,
            "rate(repro_campaign_executions_total[2d])",
            at=campaign.observability_now,
        )
        assert len(samples) == 1
        assert samples[0].value > 0.0

    def test_histogram_quantile_query_succeeds(self, campaign):
        samples = promql_query(
            campaign.observability_tsdb,
            "histogram_quantile(0.9, repro_nn_predict_batch_seconds_bucket)",
            at=campaign.observability_now,
        )
        assert len(samples) == 1
        assert 0.0 < samples[0].value < 10.0

    def test_span_quantiles_by_name(self, campaign):
        samples = promql_query(
            campaign.observability_tsdb,
            'histogram_quantile(0.5, repro_span_duration_seconds_bucket{span="campaign.day"})',
            at=campaign.observability_now,
        )
        assert len(samples) == 1
        assert samples[0].labels == {"span": "campaign.day"}

    def test_campaign_counters_match_reality(self, campaign):
        tsdb = campaign.observability_tsdb
        at = campaign.observability_now
        (days,) = promql_query(tsdb, "repro_campaign_days_total", at=at)
        assert days.value == len(tsdb.query_one("repro_campaign_days_total"))
        (masked,) = promql_query(tsdb, "repro_campaign_masked_executions", at=at)
        assert masked.value == len(campaign.masked_environments)

    def test_recent_span_tree_records_the_day_pipeline(self, campaign):
        root = OBS.recent_spans[-1]
        assert root.name == "campaign.day"
        names = {span.name for _, span in root.walk()}
        assert {"campaign.retrain", "train.fit"} <= names

    def test_observability_summary_renders(self, campaign):
        text = observability_summary(campaign)
        assert "SELF-METRICS" in text
        assert "rate(repro_campaign_executions_total[2d])" in text
        assert "histogram_quantile" in text
        assert "campaign.day" in text
        assert "error:" not in text
        assert "(no data)" not in text

    def test_disabling_self_monitor_raises_on_access(self):
        campaign = TestingCampaign(self_monitor=False)
        with pytest.raises(RuntimeError, match="self-monitoring is disabled"):
            campaign.observability_tsdb

    def test_prometheus_exposition_of_live_registry(self, campaign):
        text = OBS.expose()
        assert "# TYPE repro_campaign_days_total counter" in text
        assert "# TYPE repro_span_duration_seconds histogram" in text

    def test_exposition_counts_are_coherent(self, campaign):
        # The registry's current counter equals the TSDB's last scrape value.
        tsdb = campaign.observability_tsdb
        live = OBS.registry.get("repro_campaign_days_total").value
        scraped = tsdb.query_one("repro_campaign_days_total").values[-1]
        assert live == scraped

    def test_predictions_counter_tracks_monitoring_volume(self, campaign):
        counter = OBS.registry.get("repro_predictions_total")
        assert counter.value > 0
        assert counter.value == float(int(counter.value))

    def test_scrape_timestamps_are_daily(self, campaign):
        series = campaign.observability_tsdb.query_one("repro_campaign_days_total")
        gaps = np.diff(series.timestamps)
        assert (gaps == 86400.0).all()
