"""Lossy-testbed acceptance test: a full campaign under chaos injection.

Runs the telecom corpus twice — once clean, once under a seeded
:class:`~repro.resilience.ChaosProfile` — and asserts the robustness bar:
the chaotic run completes every day with zero unhandled exceptions, every
un-processable execution is accounted for in the dead-letter store, the
detection quality stays within a documented bound of the clean run, and
the whole incident trail is queryable through the in-repo PromQL engine.

The profile is seeded, so the injected faults (and therefore every number
asserted here) are exactly reproducible; see EXPERIMENTS.md for the
methodology and measured degradation.
"""

import pytest

from repro.core import Alarm, AlarmScore, score_alarms
from repro.data import TelecomConfig, generate_telecom
from repro.obs import OBS
from repro.resilience import ChaosProfile
from repro.workflow import TestingCampaign, promql_query

pytestmark = pytest.mark.chaos

MODEL_PARAMS = {"max_epochs": 10, "batch_size": 256}

#: gamma tuned on the clean corpus: all 4 seeded problems detected with no
#: false alarms (clean F1 = 1.0), which makes the degradation measurement
#: meaningful rather than noise-dominated.
GAMMA = 4.0

#: Documented quality bound (EXPERIMENTS.md): under ~10% sample loss, two
#: collector outages and a divergent retrain, campaign-level F1 may drop
#: by at most this much versus the clean run on the same corpus.
F1_DEGRADATION_BOUND = 0.35

#: Seed 8 deterministically yields >=2 collector outages on this corpus
#: and a divergent retrain on day 1 (probed; the profile RNG is keyed by
#: (seed, kind, record/day), so these counts cannot drift).
CHAOS = ChaosProfile(
    seed=8,
    drop_rate=0.10,
    duplicate_rate=0.02,
    reorder_rate=0.02,
    nan_rate=0.02,
    tsdb_failure_rate=0.03,
    outage_rate=0.12,
    training_divergence_rate=0.4,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=8,
            n_testbeds=4,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=2,
            include_rare_testbed=False,
            fault_magnitude=(14.0, 25.0),
            seed=4,
        )
    )


@pytest.fixture(scope="module")
def clean(dataset):
    OBS.reset()
    campaign = TestingCampaign(model_params=dict(MODEL_PARAMS), gamma=GAMMA)
    reports = campaign.run(dataset)
    return campaign, reports


@pytest.fixture(scope="module")
def chaotic(dataset, clean):
    # Reset after the clean run so every counter asserted below reflects
    # the chaotic campaign alone (cached metric handles stay valid).
    OBS.reset()
    campaign = TestingCampaign(model_params=dict(MODEL_PARAMS), gamma=GAMMA, chaos=CHAOS)
    reports = campaign.run(dataset)
    return campaign, reports


def _campaign_f1(campaign, dataset) -> tuple[float, AlarmScore]:
    """Score every scheduled execution's alarms against ground truth.

    Quarantined executions raise no alarms, so their problems count as
    missed — infrastructure loss shows up as recall loss, by design.
    """
    total = AlarmScore(n_alarms=0, correct_alarms=0)
    for chain in dataset.chains:
        for execution in chain.executions:
            records = campaign.alarm_store.fetch(environment=execution.environment)
            alarms = [
                Alarm(start=r.start_step, end=r.end_step, peak_deviation=r.peak_deviation)
                for r in records
            ]
            n = execution.n_timesteps
            intervals = [(f.start, min(f.end, n)) for f in execution.impactful_faults]
            total = total + score_alarms(alarms, execution.anomaly_mask(), intervals)
    return total.f1, total


def _counter(name, **labels):
    metric = OBS.counter(name, labels=tuple(labels) if labels else ())
    return (metric.labels(**labels) if labels else metric).value


class TestChaoticCampaignSurvives:
    def test_every_day_completes(self, dataset, chaotic):
        _, reports = chaotic
        assert len(reports) == max(len(chain) for chain in dataset.chains)

    def test_scheduled_equals_delivered_plus_quarantined(self, dataset, chaotic):
        _, reports = chaotic
        for day, report in enumerate(reports):
            scheduled = sum(1 for chain in dataset.chains if day < len(chain))
            assert report.executions_run + len(report.quarantined_environments) == scheduled

    def test_injected_chaos_meets_the_acceptance_floor(self, dataset, chaotic):
        _, reports = chaotic
        total_samples = sum(
            execution.n_timesteps for chain in dataset.chains for execution in chain.executions
        )
        dropped = _counter("repro_chaos_injected_total", kind="drop")
        assert dropped / total_samples >= 0.05  # >=5% of samples lost
        assert _counter("repro_chaos_injected_total", kind="outage") >= 2
        assert _counter("repro_chaos_injected_total", kind="tsdb_failure") >= 1
        assert sum(r.training_diverged for r in reports) >= 1

    def test_divergent_retrain_keeps_previous_model_serving(self, chaotic):
        _, reports = chaotic
        for report in reports:
            if report.training_diverged:
                previous = next(
                    (r.model_version for r in reports if r.day == report.day - 1), 0
                )
                assert report.model_version == previous
        # the campaign recovers: later days publish new versions again
        assert reports[-1].model_version > 0

    def test_quarantined_executions_all_dead_lettered(self, chaotic):
        campaign, reports = chaotic
        quarantined = [
            env for report in reports for env in report.quarantined_environments
        ]
        assert quarantined, "this profile must quarantine at least the outages"
        for env in quarantined:
            key = "/".join(env.as_tuple())
            assert key in campaign.dead_letters
        assert len(campaign.dead_letters) == len(set(
            "/".join(env.as_tuple()) for env in quarantined
        ))
        known = {
            "collector_outage", "tsdb_unavailable", "gap_too_long",
            "too_many_gaps", "all_samples_missing", "series_missing",
        }
        assert set(campaign.dead_letters.reasons()) <= known
        assert len(campaign.dead_letters.records(reason="collector_outage")) >= 2

    def test_detection_quality_within_documented_bound(self, dataset, clean, chaotic):
        clean_campaign, _ = clean
        chaos_campaign, _ = chaotic
        clean_f1, clean_score = _campaign_f1(clean_campaign, dataset)
        chaos_f1, chaos_score = _campaign_f1(chaos_campaign, dataset)
        assert clean_score.total_problems > 0
        assert clean_f1 > 0.5, "clean campaign must detect problems well"
        assert chaos_f1 >= clean_f1 - F1_DEGRADATION_BOUND, (
            f"chaos degraded F1 from {clean_f1:.3f} to {chaos_f1:.3f}, "
            f"more than the documented bound of {F1_DEGRADATION_BOUND}"
        )

    def test_resilience_metrics_queryable_via_promql(self, chaotic):
        campaign, _ = chaotic
        tsdb, at = campaign.observability_tsdb, campaign.observability_now

        (drops,) = promql_query(tsdb, 'repro_chaos_injected_total{kind="drop"}', at=at)
        assert drops.value >= 1

        samples = promql_query(tsdb, "repro_resilience_dead_letters_total", at=at)
        assert sum(s.value for s in samples) == len(campaign.dead_letters)

        (quarantined,) = promql_query(
            tsdb, "repro_resilience_quarantined_executions_total", at=at
        )
        assert quarantined.value == len(campaign.dead_letters)

        window = "2d"
        (rate,) = promql_query(
            tsdb, f"rate(repro_campaign_executions_total[{window}])", at=at
        )
        assert rate.value > 0

        repairs = promql_query(tsdb, "repro_resilience_scrape_repairs_total", at=at)
        assert {s.labels["repair"] for s in repairs} >= {"resort", "dedupe", "nan_drop"}
        imputed = promql_query(tsdb, "repro_resilience_imputed_samples_total", at=at)
        assert imputed and imputed[0].value > 0
