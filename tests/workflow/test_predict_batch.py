"""PredictBatch: the shared request type, and the deprecated aliases.

Satellite contract of the serve PR: ``run``/``run_many`` survive as thin
aliases over :meth:`PredictionPipeline.execute` — they must warn, and
their results must be byte-identical to the canonical call.
"""

import numpy as np
import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.workflow import (
    AlarmStore,
    ModelStore,
    PredictBatch,
    PredictionPipeline,
    TrainingPipeline,
)


@pytest.fixture(scope="module")
def trained():
    dataset = generate_telecom(
        TelecomConfig(
            n_chains=6,
            n_testbeds=3,
            builds_per_chain=(3, 4),
            timesteps_per_build=(60, 80),
            n_focus=2,
            include_rare_testbed=False,
            seed=11,
        )
    )
    store = ModelStore()
    TrainingPipeline(
        store,
        n_lags=3,
        model_params={"max_epochs": 5, "batch_size": 256, "dropout": 0.0},
        seed=0,
    ).train(dataset.history_training_series())
    return store, [chain.current for chain in dataset.chains]


def _runs_equal(a, b):
    assert a.predictions.tobytes() == b.predictions.tobytes()
    assert a.observations.tobytes() == b.observations.tobytes()
    assert a.model_version == b.model_version
    assert a.terminated_early == b.terminated_early
    assert len(a.report.alarms) == len(b.report.alarms)
    np.testing.assert_array_equal(a.report.flags, b.report.flags)


class TestPredictBatch:
    def test_alignment_validated(self, trained):
        _, executions = trained
        with pytest.raises(ValueError, match="error_models"):
            PredictBatch(tuple(executions), (None,))

    def test_aligned_error_models_fill(self, trained):
        _, executions = trained
        batch = PredictBatch(tuple(executions))
        assert batch.aligned_error_models() == (None,) * len(executions)
        assert len(batch) == len(executions)

    def test_executions_coerced_to_tuple(self, trained):
        _, executions = trained
        batch = PredictBatch(executions)
        assert isinstance(batch.executions, tuple)


class TestDeprecatedAliases:
    def test_run_warns_and_matches_execute(self, trained):
        store, executions = trained
        canonical = PredictionPipeline(store, AlarmStore()).execute(
            PredictBatch((executions[0],))
        )[0]
        legacy_pipeline = PredictionPipeline(store, AlarmStore())
        with pytest.warns(DeprecationWarning, match="PredictionPipeline.run is deprecated"):
            legacy = legacy_pipeline.run(executions[0])
        _runs_equal(legacy, canonical)
        assert legacy.alarm_ids == canonical.alarm_ids

    def test_run_many_warns_and_matches_execute(self, trained):
        store, executions = trained
        canonical = PredictionPipeline(store, AlarmStore()).execute(
            PredictBatch(tuple(executions))
        )
        legacy_pipeline = PredictionPipeline(store, AlarmStore())
        with pytest.warns(DeprecationWarning, match="run_many is deprecated"):
            legacy = legacy_pipeline.run_many(list(executions))
        assert len(legacy) == len(canonical)
        for a, b in zip(legacy, canonical):
            _runs_equal(a, b)
            assert a.alarm_ids == b.alarm_ids
