"""Reporting module tests: sparklines, execution reports, alarm summaries."""

import numpy as np
import pytest

from repro.core import Alarm, AnomalyReport
from repro.data import Environment
from repro.data import TestExecution as Execution
from repro.workflow import AlarmStore, campaign_summary, execution_report, sparkline


def _execution(n=60, testbed="Testbed_01"):
    rng = np.random.default_rng(0)
    return Execution(
        environment=Environment(testbed, "SUT_A", "Testcase_Load", "Build_S05"),
        features=rng.standard_normal((n, 3)),
        cpu=50.0 + 5.0 * np.sin(np.linspace(0, 6, n)),
    )


def _report(alarms, n=57, gamma=2.0):
    return AnomalyReport(
        flags=np.zeros(n, dtype=bool),
        alarms=alarms,
        errors=np.zeros(n),
        gamma=gamma,
    )


class TestSparkline:
    def test_length_capped_at_width(self):
        assert len(sparkline(np.arange(500.0), width=40)) == 40

    def test_short_series_one_char_each(self):
        assert len(sparkline(np.arange(5.0), width=40)) == 5

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(np.arange(8.0), width=8)
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        line = sparkline(np.full(10, 3.0), width=10)
        assert len(set(line)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline(np.array([]))
        with pytest.raises(ValueError):
            sparkline(np.ones(3), width=0)


class TestExecutionReport:
    def test_contains_environment_and_alarms(self):
        execution = _execution()
        report = _report([Alarm(start=10, end=14, peak_deviation=12.3)])
        text = execution_report(execution, report, n_lags=3)
        assert "Testbed_01" in text and "Build_S05" in text
        assert "[13, 17)" in text  # alarm offset by n_lags
        assert "12.3% CPU" in text
        assert "ACTION" in text
        assert "^" in text  # ruler marks the interval

    def test_clean_report_has_no_action(self):
        text = execution_report(_execution(), _report([]), n_lags=3)
        assert "no alarms" in text
        assert "ACTION" not in text

    def test_alarm_duration_in_hours(self):
        # 8 timesteps x 15 min = 2 hours.
        report = _report([Alarm(start=0, end=8, peak_deviation=9.0)])
        text = execution_report(_execution(), report, n_lags=3)
        assert "~2.0 h" in text


class TestCampaignSummary:
    def test_empty_store(self):
        with AlarmStore() as store:
            assert campaign_summary(store) == "no alarms recorded."

    def test_grouped_by_testbed_sorted_by_count(self):
        with AlarmStore() as store:
            env_a = _execution(testbed="Testbed_A").environment
            env_b = _execution(testbed="Testbed_B").environment
            for _ in range(3):
                store.push(env_a, 0, 5, 10.0, 2.0)
            store.push(env_b, 0, 5, 10.0, 2.0)
            text = campaign_summary(store)
            assert text.index("Testbed_A") < text.index("Testbed_B")
            assert "4 alarms across 2 testbeds" in text

    def test_triage_count(self):
        with AlarmStore() as store:
            env = _execution().environment
            first = store.push(env, 0, 5, 10.0, 2.0)
            store.push(env, 10, 15, 10.0, 2.0)
            store.acknowledge(first)
            assert "1 alarm(s) awaiting engineer triage" in campaign_summary(store)
