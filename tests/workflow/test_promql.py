"""PromQL-subset parser and evaluator tests."""

import numpy as np
import pytest

from repro.workflow import TimeSeriesDB
from repro.workflow.promql import (
    FunctionCall,
    PromQLError,
    RangeQuery,
    Selector,
    evaluate,
    parse,
    query,
)


@pytest.fixture()
def db():
    store = TimeSeriesDB()
    for i in range(10):
        store.write("cpu_usage", {"env": "em-1", "testbed": "T1"}, i * 60.0, 40.0 + i)
        store.write("cpu_usage", {"env": "em-2", "testbed": "T2"}, i * 60.0, 70.0 + i)
    store.write("net_tx", {"env": "em-1"}, 0.0, 100.0)
    store.write("net_tx", {"env": "em-1"}, 300.0, 400.0)
    return store


class TestParser:
    def test_bare_selector(self):
        ast = parse("cpu_usage")
        assert ast == Selector(metric="cpu_usage")

    def test_selector_with_matchers(self):
        ast = parse('cpu_usage{env="em-1", testbed!="T2"}')
        assert isinstance(ast, Selector)
        assert ast.equals == (("env", "em-1"),)
        assert ast.not_equals == (("testbed", "T2"),)

    def test_range_query(self):
        ast = parse('cpu_usage{env="em-1"}[5m]')
        assert isinstance(ast, RangeQuery)
        assert ast.window_seconds == 300.0

    def test_duration_units(self):
        assert parse("cpu[30s]").window_seconds == 30.0
        assert parse("cpu[2h]").window_seconds == 7200.0
        assert parse("cpu[1d]").window_seconds == 86400.0
        assert parse("cpu[1.5m]").window_seconds == 90.0

    def test_function_call(self):
        ast = parse('avg_over_time(cpu_usage{env="em-1"}[1h])')
        assert isinstance(ast, FunctionCall)
        assert ast.function == "avg_over_time"
        assert ast.argument.window_seconds == 3600.0

    def test_escaped_quotes_in_value(self):
        ast = parse('cpu{build="Build_\\"S1\\""}')
        assert ast.equals == (("build", 'Build_"S1"'),)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "cpu{",
            "cpu{env}",
            'cpu{env="a"',
            "cpu[5x]",
            "cpu[5m",
            "rate(cpu)",  # function needs a range vector
            'cpu{env="a"} extra',
            "avg_over_time(cpu[5m]",
            "{env=\"a\"}",
            "cpu{env='a'}",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(PromQLError):
            parse(bad)


class TestEvaluator:
    def test_instant_vector_latest_sample(self, db):
        samples = query(db, 'cpu_usage{env="em-1"}', at=10_000.0)
        assert len(samples) == 1
        assert samples[0].value == 49.0  # last written sample
        assert samples[0].timestamp == 540.0

    def test_instant_vector_respects_eval_time(self, db):
        samples = query(db, 'cpu_usage{env="em-1"}', at=125.0)
        assert samples[0].value == 42.0  # sample at t=120

    def test_instant_vector_before_first_sample_empty(self, db):
        assert query(db, 'cpu_usage{env="em-1"}', at=-5.0) == []

    def test_matcher_inequality(self, db):
        samples = query(db, 'cpu_usage{testbed!="T2"}', at=10_000.0)
        assert len(samples) == 1
        assert samples[0].labels["env"] == "em-1"

    def test_unmatched_metric_empty(self, db):
        assert query(db, "memory_usage", at=10_000.0) == []

    def test_range_vector_window(self, db):
        (window,) = query(db, 'cpu_usage{env="em-1"}[3m]', at=540.0)
        # (540-180, 540] -> t in {420, 480, 540}
        np.testing.assert_allclose(window.timestamps, [420.0, 480.0, 540.0])

    def test_avg_over_time(self, db):
        (sample,) = query(db, 'avg_over_time(cpu_usage{env="em-1"}[3m])', at=540.0)
        assert sample.value == pytest.approx(np.mean([47.0, 48.0, 49.0]))

    def test_max_min_sum_count(self, db):
        at = 540.0
        expr = 'cpu_usage{env="em-1"}[3m]'
        assert query(db, f"max_over_time({expr})", at=at)[0].value == 49.0
        assert query(db, f"min_over_time({expr})", at=at)[0].value == 47.0
        assert query(db, f"sum_over_time({expr})", at=at)[0].value == pytest.approx(144.0)
        assert query(db, f"count_over_time({expr})", at=at)[0].value == 3.0

    def test_rate(self, db):
        (sample,) = query(db, 'rate(net_tx{env="em-1"}[10m])', at=300.0)
        # (400 - 100) / (300 - 0) = 1.0 per second
        assert sample.value == pytest.approx(1.0)

    def test_rate_needs_two_samples(self, db):
        assert query(db, 'rate(net_tx{env="em-1"}[1m])', at=300.0) == []

    def test_function_over_multiple_series(self, db):
        samples = query(db, "avg_over_time(cpu_usage[1h])", at=540.0)
        assert len(samples) == 2
        values = {s.labels["env"]: s.value for s in samples}
        assert values["em-2"] == pytest.approx(values["em-1"] + 30.0)

    def test_evaluate_rejects_unknown_node(self, db):
        with pytest.raises(PromQLError):
            evaluate(db, "not-an-ast", at=0.0)


class TestWorkflowIntegration:
    def test_collector_data_queryable_via_promql(self):
        """The step-1/step-3 loop: collect an execution, query it back."""
        from repro.data import FEATURE_NAMES, TelecomConfig, generate_telecom
        from repro.workflow import EMRegistry, MetricCollector

        dataset = generate_telecom(
            TelecomConfig(
                n_chains=3,
                n_testbeds=2,
                builds_per_chain=(2, 2),
                timesteps_per_build=(40, 45),
                n_focus=2,
                include_rare_testbed=False,
                seed=3,
            )
        )
        db = TimeSeriesDB()
        collector = MetricCollector(db, EMRegistry(), feature_names=FEATURE_NAMES)
        execution = dataset.chains[0].current
        record_id = collector.collect(execution)

        horizon = 900.0 * execution.n_timesteps
        (sample,) = query(
            db,
            f'avg_over_time(cpu_usage{{env="{record_id}"}}[{int(2 * horizon)}s])',
            at=horizon,
        )
        assert sample.value == pytest.approx(execution.cpu.mean())


class TestHistogramQuantile:
    @staticmethod
    def _write_buckets(db, at, counts, metric="lat_seconds_bucket", labels=None):
        """Write one cumulative-bucket snapshot: {le: count}."""
        for le, count in counts.items():
            db.write(metric, {**(labels or {}), "le": le}, at, count)

    def test_parse(self):
        from repro.workflow.promql import HistogramQuantile

        ast = parse("histogram_quantile(0.9, lat_seconds_bucket)")
        assert isinstance(ast, HistogramQuantile)
        assert ast.quantile == 0.9
        assert ast.argument == Selector(metric="lat_seconds_bucket")

    def test_parse_rejects_out_of_range_quantile(self):
        with pytest.raises(PromQLError, match=r"\[0, 1\]"):
            parse("histogram_quantile(1.5, lat_seconds_bucket)")

    def test_parse_rejects_missing_quantile(self):
        with pytest.raises(PromQLError, match="numeric quantile"):
            parse("histogram_quantile(lat_seconds_bucket)")

    def test_median_interpolates_within_bucket(self):
        db = TimeSeriesDB()
        # 10 observations uniformly below 1.0: 5 in (0, 0.5], 5 in (0.5, 1].
        self._write_buckets(db, 10.0, {"0.5": 5.0, "1": 10.0, "+Inf": 10.0})
        (sample,) = query(db, "histogram_quantile(0.5, lat_seconds_bucket)", at=10.0)
        assert sample.metric == "lat_seconds"
        assert sample.value == pytest.approx(0.5)
        (q75,) = query(db, "histogram_quantile(0.75, lat_seconds_bucket)", at=10.0)
        assert q75.value == pytest.approx(0.75)

    def test_first_bucket_interpolates_from_zero(self):
        db = TimeSeriesDB()
        self._write_buckets(db, 10.0, {"2": 4.0, "+Inf": 4.0})
        (sample,) = query(db, "histogram_quantile(0.5, lat_seconds_bucket)", at=10.0)
        assert sample.value == pytest.approx(1.0)

    def test_mass_beyond_last_finite_bound_reports_that_bound(self):
        db = TimeSeriesDB()
        self._write_buckets(db, 10.0, {"1": 0.0, "2": 0.0, "+Inf": 10.0})
        (sample,) = query(db, "histogram_quantile(0.9, lat_seconds_bucket)", at=10.0)
        assert sample.value == pytest.approx(2.0)

    def test_groups_by_labels_minus_le(self):
        db = TimeSeriesDB()
        self._write_buckets(db, 10.0, {"1": 10.0, "+Inf": 10.0}, labels={"stage": "fit"})
        self._write_buckets(
            db, 10.0, {"1": 0.0, "2": 10.0, "+Inf": 10.0}, labels={"stage": "predict"}
        )
        samples = query(db, "histogram_quantile(0.5, lat_seconds_bucket)", at=10.0)
        by_stage = {s.labels["stage"]: s.value for s in samples}
        assert by_stage["fit"] == pytest.approx(0.5)
        assert by_stage["predict"] == pytest.approx(1.5)
        assert all("le" not in s.labels for s in samples)

    def test_empty_histogram_yields_no_sample(self):
        db = TimeSeriesDB()
        self._write_buckets(db, 10.0, {"1": 0.0, "+Inf": 0.0})
        assert query(db, "histogram_quantile(0.9, lat_seconds_bucket)", at=10.0) == []

    def test_missing_le_label_raises(self):
        db = TimeSeriesDB()
        db.write("lat_seconds_bucket", {"stage": "fit"}, 10.0, 5.0)
        with pytest.raises(PromQLError, match="'le' label"):
            query(db, "histogram_quantile(0.9, lat_seconds_bucket)", at=10.0)

    def test_quantile_over_rate_of_buckets(self):
        db = TimeSeriesDB()
        # Two scrapes 60s apart; only the (0.5, 1] bucket grows.
        self._write_buckets(db, 0.0, {"0.5": 5.0, "1": 5.0, "+Inf": 5.0})
        self._write_buckets(db, 60.0, {"0.5": 5.0, "1": 11.0, "+Inf": 11.0})
        (sample,) = query(
            db, "histogram_quantile(0.5, rate(lat_seconds_bucket[2m]))", at=60.0
        )
        # All new mass landed in (0.5, 1] -> the median of the rate is inside it.
        assert 0.5 < sample.value <= 1.0
