"""Multi-day campaign orchestration tests."""

import numpy as np
import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.workflow import TestingCampaign


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=8,
            n_testbeds=4,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=2,
            include_rare_testbed=False,
            fault_magnitude=(14.0, 25.0),
            seed=4,
        )
    )


@pytest.fixture(scope="module")
def finished_campaign(dataset):
    campaign = TestingCampaign(model_params={"max_epochs": 12, "batch_size": 256})
    reports = campaign.run(dataset)
    return campaign, reports


class TestCampaignLifecycle:
    def test_one_model_version_per_day(self, dataset, finished_campaign):
        _, reports = finished_campaign
        max_builds = max(len(chain) for chain in dataset.chains)
        assert len(reports) == max_builds
        assert [r.model_version for r in reports] == list(range(1, max_builds + 1))

    def test_day_zero_raises_no_alarms(self, finished_campaign):
        # No model exists before the first training, so day 0 only ingests.
        _, reports = finished_campaign
        assert reports[0].alarms_raised == 0
        assert not reports[0].any_flagged

    def test_executions_per_day_match_chain_lengths(self, dataset, finished_campaign):
        _, reports = finished_campaign
        for day, report in enumerate(reports):
            expected = sum(1 for chain in dataset.chains if day < len(chain))
            assert report.executions_run == expected

    def test_problem_builds_get_masked(self, dataset, finished_campaign):
        campaign, _ = finished_campaign
        problem_envs = {
            execution.environment
            for chain in dataset.chains
            for execution in chain.executions
            if execution.has_performance_problem
        }
        # Every ground-truth problem execution ends up masked (flagged by
        # alarms or discovered independently, per workflow step 2).
        assert problem_envs <= campaign.masked_environments

    def test_clean_builds_mostly_unmasked(self, dataset, finished_campaign):
        campaign, _ = finished_campaign
        clean = [
            execution.environment
            for chain in dataset.chains
            for execution in chain.executions
            if not execution.has_performance_problem
        ]
        masked_clean = sum(1 for env in clean if env in campaign.masked_environments)
        assert masked_clean == 0

    def test_alarm_store_populated(self, finished_campaign):
        campaign, reports = finished_campaign
        assert campaign.alarm_store.count() == sum(r.alarms_raised for r in reports)

    def test_latest_model_usable(self, dataset, finished_campaign):
        campaign, _ = finished_campaign
        from repro.data.windows import build_windows

        execution = dataset.chains[0].current
        X, history, y = build_windows(execution.features, execution.cpu, campaign.n_lags)
        predictions = campaign.latest_model.predict(
            [execution.environment] * len(y), X, history
        )
        assert np.isfinite(predictions).all()


class TestCampaignValidation:
    def test_empty_day_rejected(self):
        campaign = TestingCampaign(model_params={"max_epochs": 1})
        with pytest.raises(ValueError):
            campaign.run_day(0, [])

    def test_latest_model_before_training_raises(self):
        with pytest.raises(RuntimeError):
            TestingCampaign().latest_model
