"""Property-based tests on workflow substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Environment
from repro.workflow import AlarmStore, EMRegistry, ModelStore, TimeSeriesDB

label_values = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=8
)


class TestTSDBProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(label_values, label_values),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_sample_conservation(self, writes):
        """Total samples written == total samples stored, regardless of how
        writes are distributed over (metric, label) combinations."""
        db = TimeSeriesDB()
        clocks: dict[tuple, float] = {}
        for metric, env in writes:
            key = (metric, env)
            clocks[key] = clocks.get(key, 0.0) + 1.0
            db.write(metric, {"env": env}, clocks[key], 1.0)
        assert db.n_samples() == len(writes)
        # Every series is recoverable through its exact label match.
        total = 0
        for metric, env in {(m, e) for m, e in writes}:
            series = db.query_one(metric, {"env": env})
            total += len(series)
        assert total == len(writes)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=30, unique=True),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=50.001, max_value=120.0),
    )
    def test_property_range_query_is_filter(self, timestamps, start, end):
        """query_range returns exactly the samples with start <= t < end."""
        timestamps = sorted(timestamps)
        db = TimeSeriesDB()
        for t in timestamps:
            db.write("cpu", {"env": "a"}, t, t * 2)
        (ranged,) = db.query_range("cpu", {"env": "a"}, start, end)
        expected = [t for t in timestamps if start <= t < end]
        np.testing.assert_allclose(ranged.timestamps, expected)


class TestAlarmStoreProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=1, max_value=20),
                st.sampled_from(["Testbed_01", "Testbed_02", "Testbed_03"]),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_property_fetch_partitions_by_testbed(self, alarms):
        """Per-testbed fetches partition the full alarm set."""
        with AlarmStore() as store:
            for start, length, testbed in alarms:
                env = Environment(testbed, "SUT_A", "Testcase_Load", "Build_S01")
                store.push(env, start, start + length, 1.0, 2.0)
            per_testbed = sum(
                len(store.fetch(testbed=tb))
                for tb in ("Testbed_01", "Testbed_02", "Testbed_03")
            )
            assert per_testbed == store.count() == len(alarms)


class TestModelStoreProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=10))
    def test_property_latest_is_last_published(self, blobs):
        store = ModelStore()
        for blob in blobs:
            store.publish(blob)
        latest, version = store.fetch_latest()
        assert latest == blobs[-1]
        assert version.version == len(blobs)
        # Every historical version remains fetchable and intact.
        for i, blob in enumerate(blobs, start=1):
            stored, _ = store.fetch(i)
            assert stored == blob


class TestEMRegistryProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(label_values, label_values),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_register_is_injective(self, pairs):
        """Distinct environments get distinct ids; equal ones share an id."""
        registry = EMRegistry()
        ids = {}
        for testbed, build in pairs:
            env = Environment(f"T_{testbed}", "SUT_A", "Testcase_Load", f"B_{build}")
            record = registry.register(env)
            if env in ids:
                assert ids[env] == record
            ids[env] = record
            assert registry.lookup(record) == env
        assert len(registry) == len(ids)
