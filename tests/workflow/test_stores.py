"""Alarm store and model store tests."""

import pytest

from repro.data import Environment
from repro.workflow import AlarmStore, ModelStore


def _env(build="Build_S01", testbed="Testbed_01"):
    return Environment(testbed, "SUT_A", "Testcase_Load", build)


class TestAlarmStore:
    def test_push_and_fetch(self):
        with AlarmStore() as store:
            alarm_id = store.push(_env(), 10, 20, peak_deviation=12.5, gamma=2.0)
            records = store.fetch()
            assert len(records) == 1
            record = records[0]
            assert record.alarm_id == alarm_id
            assert record.environment == _env()
            assert record.interval == (10, 20)
            assert record.peak_deviation == 12.5
            assert not record.acknowledged

    def test_fetch_filters(self):
        with AlarmStore() as store:
            store.push(_env(testbed="Testbed_01"), 0, 5, 1.0, 2.0)
            store.push(_env(testbed="Testbed_02"), 0, 5, 1.0, 2.0)
            store.push(_env(testbed="Testbed_02", build="Build_S02"), 0, 5, 1.0, 2.0)
            assert len(store.fetch(testbed="Testbed_02")) == 2
            assert len(store.fetch(build="Build_S02")) == 1
            assert len(store.fetch(environment=_env(testbed="Testbed_01"))) == 1
            assert store.count() == 3

    def test_acknowledge(self):
        with AlarmStore() as store:
            alarm_id = store.push(_env(), 0, 5, 1.0, 2.0)
            store.acknowledge(alarm_id)
            assert store.fetch()[0].acknowledged
            assert store.fetch(unacknowledged_only=True) == []
            with pytest.raises(KeyError):
                store.acknowledge(9999)

    def test_invalid_interval(self):
        with AlarmStore() as store:
            with pytest.raises(ValueError):
                store.push(_env(), 5, 5, 1.0, 2.0)
            with pytest.raises(ValueError):
                store.push(_env(), -1, 5, 1.0, 2.0)

    def test_should_terminate(self):
        with AlarmStore() as store:
            env = _env()
            assert not store.should_terminate(env, threshold=2)
            store.push(env, 0, 5, 1.0, 2.0)
            store.push(env, 10, 15, 1.0, 2.0)
            assert store.should_terminate(env, threshold=2)
            # Other environments don't count.
            assert not store.should_terminate(_env(build="Build_S09"), threshold=1)
            with pytest.raises(ValueError):
                store.should_terminate(env, threshold=0)

    def test_persistence_on_disk(self, tmp_path):
        path = tmp_path / "alarms.sqlite"
        with AlarmStore(path) as store:
            store.push(_env(), 0, 5, 1.0, 2.0)
        with AlarmStore(path) as reopened:
            assert reopened.count() == 1


class TestModelStore:
    def test_publish_and_fetch_latest(self):
        store = ModelStore()
        store.publish(b"model-v1", {"mae": 1.0})
        record = store.publish(b"model-v2", {"mae": 0.9})
        blob, version = store.fetch_latest()
        assert blob == b"model-v2"
        assert version.version == record.version == 2
        assert version.metadata == {"mae": 0.9}

    def test_fetch_specific_version(self):
        store = ModelStore()
        store.publish(b"v1")
        store.publish(b"v2")
        blob, version = store.fetch(1)
        assert blob == b"v1" and version.version == 1
        with pytest.raises(LookupError):
            store.fetch(99)

    def test_empty_store(self):
        with pytest.raises(LookupError):
            ModelStore().fetch_latest()

    def test_empty_blob_rejected(self):
        with pytest.raises(ValueError):
            ModelStore().publish(b"")

    def test_versions_listing(self):
        store = ModelStore()
        store.publish(b"a")
        store.publish(b"b")
        assert [v.version for v in store.versions()] == [1, 2]
        assert store.latest_version == 2

    def test_disk_persistence(self, tmp_path):
        store = ModelStore(tmp_path / "models")
        store.publish(b"payload", {"note": "x"})
        reopened = ModelStore(tmp_path / "models")
        blob, version = reopened.fetch_latest()
        assert blob == b"payload"
        assert version.version == 1
        assert version.metadata == {"note": "x"}
        # Publishing continues the version sequence.
        reopened.publish(b"next")
        assert reopened.latest_version == 2
