"""Campaign checkpointing: snapshot round-trips and idempotent resume."""

import numpy as np
import pytest

from repro.data import Environment, TelecomConfig, generate_telecom
from repro.obs import OBS
from repro.workflow import (
    CampaignState,
    ModelStore,
    TestingCampaign,
    checkpoint_days,
    load_latest_checkpoint,
    save_checkpoint,
)

MODEL_PARAMS = {"max_epochs": 8, "batch_size": 256}


@pytest.fixture(scope="module")
def dataset():
    OBS.reset()
    return generate_telecom(
        TelecomConfig(
            n_chains=8,
            n_testbeds=4,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=2,
            include_rare_testbed=False,
            fault_magnitude=(14.0, 25.0),
            seed=4,
        )
    )


def _env(i):
    return Environment(
        testbed=f"tb-{i}", sut=f"sut-{i}", testcase=f"tc-{i}", build=f"b-{i}"
    )


def _report_fields(report):
    return (
        report.day,
        report.executions_run,
        report.alarms_raised,
        [e.as_tuple() for e in report.flagged_environments],
        [e.as_tuple() for e in report.masked_environments],
        report.model_version,
        report.drift_detected,
        report.training_diverged,
        [e.as_tuple() for e in report.quarantined_environments],
    )


class TestSnapshotRoundTrip:
    def test_state_round_trips(self, tmp_path):
        rng = np.random.default_rng(0)
        pool = [
            (_env(i), rng.normal(size=(20, 3)), rng.normal(size=20)) for i in range(3)
        ]
        state = CampaignState(
            day=2,
            pool=pool,
            masked=[_env(1)],
            model_blob=b"\x00\x01npz-ish-bytes\xff",
            drift_state={"detector": {"count": 4, "mean": 0.5, "cumulative": 0.1, "minimum": 0.0},
                         "retrain_recommendations": 1, "observations": 4},
            exporter_now=86400.0 * 3,
            reports=[{"day": 2, "executions_run": 3}],
            dead_letters=[{"key": "a/b/c/d", "reason": "outage", "detail": "", "day": 2}],
        )
        save_checkpoint(tmp_path, state)
        loaded = load_latest_checkpoint(tmp_path)
        assert loaded.day == 2
        assert loaded.model_blob == state.model_blob
        assert loaded.masked == [_env(1)]
        assert loaded.drift_state == state.drift_state
        assert loaded.exporter_now == state.exporter_now
        assert loaded.reports == state.reports
        assert loaded.dead_letters == state.dead_letters
        assert len(loaded.pool) == 3
        for (env_a, f_a, c_a), (env_b, f_b, c_b) in zip(pool, loaded.pool):
            assert env_a == env_b
            assert np.array_equal(f_a, f_b)
            assert np.array_equal(c_a, c_b)

    def test_state_without_model_round_trips(self, tmp_path):
        state = CampaignState(
            day=0, pool=[], masked=[], model_blob=None, drift_state={},
            exporter_now=None,
        )
        save_checkpoint(tmp_path, state)
        loaded = load_latest_checkpoint(tmp_path)
        assert loaded.model_blob is None
        assert loaded.pool == []
        assert loaded.exporter_now is None

    def test_checkpoint_days_sorted_and_latest_wins(self, tmp_path):
        for day in (3, 0, 1):
            save_checkpoint(
                tmp_path,
                CampaignState(day=day, pool=[], masked=[], model_blob=None,
                              drift_state={}, exporter_now=None),
            )
        assert checkpoint_days(tmp_path) == [0, 1, 3]
        assert load_latest_checkpoint(tmp_path).day == 3
        assert checkpoint_days(tmp_path / "missing") == []
        assert load_latest_checkpoint(tmp_path / "missing") is None

    def test_no_torn_tmp_files_left_behind(self, tmp_path):
        save_checkpoint(
            tmp_path,
            CampaignState(day=0, pool=[], masked=[], model_blob=None,
                          drift_state={}, exporter_now=None),
        )
        assert not list(tmp_path.glob("*.tmp"))


class TestCampaignResume:
    def test_resume_matches_uninterrupted_run(self, dataset, tmp_path):
        # A: uninterrupted reference run.
        reference = TestingCampaign(model_params=dict(MODEL_PARAMS))
        reference_reports = reference.run(dataset)

        # B: checkpoints every day but is "killed" after day 1.
        ckpt = tmp_path / "ckpt"
        killed = TestingCampaign(
            model_store=ModelStore(path=tmp_path / "models"),
            model_params=dict(MODEL_PARAMS),
            checkpoint_dir=ckpt,
        )
        for day in (0, 1):
            executions = [
                chain.executions[day] for chain in dataset.chains if day < len(chain)
            ]
            killed.run_day(day, executions)
        assert checkpoint_days(ckpt) == [0, 1]

        # C: a fresh process resumes from the snapshots and finishes.
        resumed = TestingCampaign(
            model_store=ModelStore(path=tmp_path / "models"),
            model_params=dict(MODEL_PARAMS),
            checkpoint_dir=ckpt,
        )
        resumed_reports = resumed.run(dataset)

        assert [_report_fields(r) for r in resumed_reports] == [
            _report_fields(r) for r in reference_reports
        ]
        assert resumed.masked_environments == reference.masked_environments
        assert resumed.latest_model.to_bytes() == reference.latest_model.to_bytes()

    def test_rerun_after_completion_is_idempotent(self, dataset, tmp_path):
        ckpt = tmp_path / "ckpt"
        store_dir = tmp_path / "models"
        first = TestingCampaign(
            model_store=ModelStore(path=store_dir),
            model_params=dict(MODEL_PARAMS),
            checkpoint_dir=ckpt,
        )
        first_reports = first.run(dataset)
        published = first.model_store.latest_version

        again = TestingCampaign(
            model_store=ModelStore(path=store_dir),
            model_params=dict(MODEL_PARAMS),
            checkpoint_dir=ckpt,
        )
        again_reports = again.run(dataset)
        # Every day restores from the snapshots; nothing re-executes.
        assert [_report_fields(r) for r in again_reports] == [
            _report_fields(r) for r in first_reports
        ]
        assert again.model_store.latest_version == published
        assert again.latest_model.to_bytes() == first.latest_model.to_bytes()
