"""Same seed, same bytes: the REP001/REP002 audit made this a contract.

Two campaigns built from the same seeds must agree byte-for-byte — report
blobs, published model weights, and alarm timestamps (now logical, not
wall-clock). A chaos campaign with a seeded profile is held to the same
standard, and a different seed must actually change the outcome (guarding
against the degenerate "deterministic because constant" failure).
"""

import json

import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.resilience import ChaosProfile
from repro.workflow import TestingCampaign
from repro.workflow.orchestrator import _report_to_dict


def _dataset(seed=7):
    return generate_telecom(
        TelecomConfig(
            n_chains=6,
            n_testbeds=3,
            builds_per_chain=(4, 5),
            timesteps_per_build=(40, 50),
            n_focus=2,
            include_rare_testbed=False,
            seed=seed,
        )
    )


def _run(seed=1, chaos_seed=None, dataset_seed=7):
    chaos = None if chaos_seed is None else ChaosProfile(seed=chaos_seed, drop_rate=0.1)
    campaign = TestingCampaign(
        model_params={"max_epochs": 3, "batch_size": 256},
        seed=seed,
        self_monitor=False,
        chaos=chaos,
    )
    reports = campaign.run(_dataset(dataset_seed))
    blob = json.dumps(
        [_report_to_dict(report) for report in reports], sort_keys=True
    ).encode()
    return blob, campaign


class TestSeedDeterminism:
    def test_same_seed_campaigns_are_byte_identical(self):
        first_blob, first = _run(seed=1)
        second_blob, second = _run(seed=1)
        assert first_blob == second_blob
        assert first.latest_model.to_bytes() == second.latest_model.to_bytes()
        assert first.masked_environments == second.masked_environments
        # model metadata and alarm timestamps are logical, not wall-clock
        first_versions = [
            (v.version, v.published_at, v.checksum) for v in first.model_store.versions()
        ]
        second_versions = [
            (v.version, v.published_at, v.checksum) for v in second.model_store.versions()
        ]
        assert first_versions == second_versions
        first_alarms = [
            (a.environment, a.interval, a.peak_deviation, a.created_at)
            for a in first.alarm_store.fetch()
        ]
        second_alarms = [
            (a.environment, a.interval, a.peak_deviation, a.created_at)
            for a in second.alarm_store.fetch()
        ]
        assert first_alarms == second_alarms

    @pytest.mark.chaos
    def test_same_seed_chaos_campaigns_are_byte_identical(self):
        first_blob, first = _run(seed=1, chaos_seed=5)
        second_blob, second = _run(seed=1, chaos_seed=5)
        assert first_blob == second_blob
        assert first.latest_model.to_bytes() == second.latest_model.to_bytes()

    def test_different_seed_changes_the_outcome(self):
        base_blob, base = _run(seed=1)
        other_blob, other = _run(seed=2)
        assert (
            base_blob != other_blob
            or base.latest_model.to_bytes() != other.latest_model.to_bytes()
        )
