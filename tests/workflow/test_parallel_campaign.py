"""Serial vs multi-worker campaigns must be byte-identical end to end."""

import json

import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.workflow import TestingCampaign
from repro.workflow.orchestrator import _report_to_dict

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=8,
            n_testbeds=3,
            builds_per_chain=(4, 6),
            timesteps_per_build=(40, 60),
            n_focus=2,
            include_rare_testbed=False,
            seed=7,
        )
    )


def _campaign(n_workers, **kwargs):
    return TestingCampaign(
        model_params={"max_epochs": 3, "batch_size": 256},
        seed=1,
        n_workers=n_workers,
        self_monitor=False,
        **kwargs,
    )


def _run(campaign, dataset):
    reports = campaign.run(dataset)
    blob = json.dumps(
        [_report_to_dict(report) for report in reports], sort_keys=True
    ).encode()
    return blob, campaign


class TestParallelCampaignDeterminism:
    def test_four_workers_byte_identical_to_serial(self, dataset):
        serial_blob, serial = _run(_campaign(1), dataset)
        parallel_blob, parallel = _run(_campaign(4), dataset)
        assert parallel_blob == serial_blob  # reports, byte for byte
        assert parallel.masked_environments == serial.masked_environments
        assert parallel.latest_model.to_bytes() == serial.latest_model.to_bytes()
        # Alarm stores agree record by record.
        serial_alarms = serial.alarm_store.fetch()
        parallel_alarms = parallel.alarm_store.fetch()
        assert len(parallel_alarms) == len(serial_alarms)
        for left, right in zip(parallel_alarms, serial_alarms):
            assert (left.environment, left.start_step, left.end_step) == (
                right.environment,
                right.start_step,
                right.end_step,
            )
            assert left.peak_deviation == right.peak_deviation

    def test_collector_path_byte_identical(self, dataset):
        """Sharded parallel read-backs reconstruct the same executions."""
        serial_blob, serial = _run(_campaign(1, use_collector=True), dataset)
        parallel_blob, parallel = _run(_campaign(4, use_collector=True), dataset)
        assert parallel_blob == serial_blob
        assert parallel.latest_model.to_bytes() == serial.latest_model.to_bytes()
        assert not parallel.dead_letters.records()

    def test_worker_kind_threads_vs_serial_pool_identical(self, dataset):
        """n_workers=2 with a thread pool still merges deterministically."""
        two_blob, _ = _run(_campaign(2), dataset)
        four_blob, _ = _run(_campaign(4), dataset)
        assert two_blob == four_blob  # worker count never changes results

    def test_serial_checkpoint_resumes_under_parallel(self, dataset, tmp_path):
        """n_workers is not campaign state: the same serial checkpoint
        resumed with 1 worker and with 4 workers converges byte-identically.
        (Model-store version numbering restarts on resume either way, so the
        reference is the serial resume, not an uninterrupted run.)"""
        checkpoint_dir = tmp_path / "ckpt"
        interrupted = _campaign(1, checkpoint_dir=checkpoint_dir)
        max_builds = max(len(chain) for chain in dataset.chains)
        for day in range(max_builds // 2):
            executions = [
                chain.executions[day] for chain in dataset.chains if day < len(chain)
            ]
            interrupted.run_day(day, executions)

        # Each resume gets its own copy: resuming writes further snapshots,
        # and the second resume must start from the *interrupted* state.
        import shutil

        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        shutil.copytree(checkpoint_dir, serial_dir)
        shutil.copytree(checkpoint_dir, parallel_dir)
        serial_blob, serial = _run(_campaign(1, checkpoint_dir=serial_dir), dataset)
        parallel_blob, parallel = _run(_campaign(4, checkpoint_dir=parallel_dir), dataset)
        assert parallel_blob == serial_blob
        assert parallel.masked_environments == serial.masked_environments
        assert parallel.latest_model.to_bytes() == serial.latest_model.to_bytes()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            _campaign(0)
