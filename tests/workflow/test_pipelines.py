"""End-to-end workflow tests: collector -> training -> prediction -> alarms."""

import numpy as np
import pytest

from repro.data import (
    FEATURE_NAMES,
    TelecomConfig,
    generate_telecom,
)
from repro.workflow import (
    AlarmStore,
    EMRegistry,
    MetricCollector,
    ModelStore,
    PredictionPipeline,
    ServiceDiscovery,
    TimeSeriesDB,
    TrainingPipeline,
    build_prediction_frame,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=10,
            n_testbeds=4,
            builds_per_chain=(3, 4),
            timesteps_per_build=(60, 80),
            n_focus=2,
            include_rare_testbed=False,
            fault_magnitude=(15.0, 25.0),
            seed=11,
        )
    )


@pytest.fixture(scope="module")
def trained(dataset):
    """One training-pipeline run shared across the module's tests."""
    store = ModelStore()
    pipeline = TrainingPipeline(
        store,
        n_lags=3,
        model_params={"max_epochs": 15, "batch_size": 256, "dropout": 0.0},
        seed=0,
    )
    result = pipeline.train(dataset.history_training_series())
    return store, result


class TestMetricCollector:
    def test_collect_and_read_back(self, dataset):
        db = TimeSeriesDB()
        registry = EMRegistry()
        collector = MetricCollector(db, registry, feature_names=FEATURE_NAMES)
        execution = dataset.chains[0].current
        record_id = collector.collect(execution)
        assert registry.lookup(record_id) == execution.environment
        features, cpu = collector.read_back(record_id)
        np.testing.assert_allclose(features, execution.features)
        np.testing.assert_allclose(cpu, execution.cpu)

    def test_series_labelled_with_em_record(self, dataset):
        db = TimeSeriesDB()
        collector = MetricCollector(db, EMRegistry(), feature_names=FEATURE_NAMES)
        record_id = collector.collect(dataset.chains[0].current)
        series = db.query_one("cpu_usage", {"env": record_id})
        assert series.labels == {"env": record_id}
        # 15-minute sampling (paper §4.2.1).
        timestamps, _ = series.as_arrays()
        assert timestamps[1] - timestamps[0] == 900.0

    def test_registers_discovery_target(self, dataset, tmp_path):
        db = TimeSeriesDB()
        discovery = ServiceDiscovery(tmp_path / "sd.json")
        collector = MetricCollector(
            db, EMRegistry(), discovery=discovery, feature_names=FEATURE_NAMES
        )
        record_id = collector.collect(dataset.chains[0].current)
        targets = discovery.targets()
        assert len(targets) == 1
        assert targets[0]["labels"]["env"] == record_id

    def test_feature_name_mismatch_rejected(self, dataset):
        collector = MetricCollector(TimeSeriesDB(), EMRegistry(), feature_names=["just_one"])
        with pytest.raises(ValueError):
            collector.collect(dataset.chains[0].current)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            MetricCollector(TimeSeriesDB(), EMRegistry(), interval=0)


class TestTrainingPipeline:
    def test_publishes_model(self, dataset, trained):
        store, result = trained
        assert store.latest_version == result.version.version == 1
        assert result.n_examples > 0
        assert result.epochs_run > 0
        # Paper §6: serialized artifact under 10 MB.
        blob, _ = store.fetch_latest()
        assert len(blob) < 10 * 1024 * 1024

    def test_masking_excludes_environments(self, dataset):
        store = ModelStore()
        pipeline = TrainingPipeline(
            store, n_lags=3, model_params={"max_epochs": 2, "batch_size": 256}
        )
        records = dataset.history_training_series()
        masked = {records[0][0]}
        result = pipeline.train(records, masked_environments=masked)
        assert result.n_masked_executions == sum(1 for env, _, _ in records if env in masked)

    def test_all_masked_rejected(self, dataset):
        pipeline = TrainingPipeline(ModelStore(), n_lags=3)
        records = dataset.history_training_series()
        with pytest.raises(ValueError):
            pipeline.train(records, masked_environments={env for env, _, _ in records})

    def test_invalid_val_fraction(self):
        with pytest.raises(ValueError):
            TrainingPipeline(ModelStore(), val_fraction=1.0)

    def test_roundtrip_model_predicts_like_original(self, dataset, trained):
        from repro.core import Env2VecRegressor
        from repro.data.windows import build_windows

        store, result = trained
        blob, _ = store.fetch_latest()
        restored = Env2VecRegressor.from_bytes(blob)
        execution = dataset.chains[0].history[0]
        X, history, y = build_windows(execution.features, execution.cpu, 3)
        envs = [execution.environment] * len(y)
        np.testing.assert_allclose(
            restored.predict(envs, X, history),
            result.model.predict(envs, X, history),
            atol=1e-10,
        )


class TestPredictionPipeline:
    def test_detects_injected_fault_and_pushes_alarms(self, dataset, trained):
        store, _ = trained
        alarms = AlarmStore()
        pipeline = PredictionPipeline(store, alarms, gamma=2.0)
        chain = dataset.focus_chains[0]
        error_model = pipeline.calibrate(chain)
        run = pipeline.run(chain.current, error_model)
        assert run.model_version == 1
        assert run.report.n_alarms >= 1
        assert alarms.count() == run.report.n_alarms
        # At least one alarm overlaps a ground-truth fault interval
        # (alarm steps are offset by n_lags back to source timesteps).
        truth = chain.current.anomaly_mask()
        records = alarms.fetch()
        assert any(truth[r.start_step : r.end_step].any() for r in records)

    def test_clean_build_raises_no_or_few_alarms(self, dataset, trained):
        store, _ = trained
        focus = set(dataset.focus_indices)
        clean_chain = next(
            dataset.chains[i] for i in range(dataset.n_chains) if i not in focus
        )
        alarms = AlarmStore()
        pipeline = PredictionPipeline(store, alarms, gamma=3.0)
        error_model = pipeline.calibrate(clean_chain)
        run = pipeline.run(clean_chain.current, error_model)
        assert run.report.n_alarms <= 2

    def test_self_calibrated_mode_runs(self, dataset, trained):
        store, _ = trained
        pipeline = PredictionPipeline(store, AlarmStore(), gamma=2.0)
        run = pipeline.run(dataset.focus_chains[0].current)  # no error model
        assert run.predictions.shape == run.observations.shape

    def test_early_termination_hook(self, dataset, trained):
        store, _ = trained
        alarms = AlarmStore()
        pipeline = PredictionPipeline(
            store, alarms, gamma=1.0, termination_threshold=1
        )
        chain = dataset.focus_chains[0]
        error_model = pipeline.calibrate(chain)
        run = pipeline.run(chain.current, error_model)
        if run.report.n_alarms >= 1:
            assert run.terminated_early

    @pytest.mark.parallel
    def test_run_many_bitwise_matches_sequential_runs(self, dataset, trained):
        """Coalesced, pooled run_many == one pipeline.run per execution."""
        store, _ = trained
        executions = [chain.current for chain in dataset.chains[:6]]

        solo_alarms = AlarmStore()
        solo = PredictionPipeline(store, solo_alarms, gamma=2.0)
        solo_runs = [solo.run(execution) for execution in executions]

        pooled_alarms = AlarmStore()
        pooled = PredictionPipeline(store, pooled_alarms, gamma=2.0)
        pooled_runs = pooled.run_many(executions, n_workers=4)

        assert len(pooled_runs) == len(solo_runs)
        for left, right in zip(pooled_runs, solo_runs):
            assert left.predictions.tobytes() == right.predictions.tobytes()
            assert left.observations.tobytes() == right.observations.tobytes()
            assert left.report.alarms == right.report.alarms
            assert left.model_version == right.model_version
        assert pooled_alarms.count() == solo_alarms.count()

    @pytest.mark.parallel
    def test_run_many_validates_error_model_alignment(self, dataset, trained):
        store, _ = trained
        pipeline = PredictionPipeline(store, AlarmStore())
        with pytest.raises(ValueError, match="error_models"):
            pipeline.run_many(
                [dataset.chains[0].current], error_models=[None, None]
            )

    def test_calibrate_requires_history(self, dataset, trained):
        from repro.data import BuildChain

        store, _ = trained
        pipeline = PredictionPipeline(store, AlarmStore())
        single = BuildChain([dataset.chains[0].executions[0]])
        with pytest.raises(ValueError):
            pipeline.calibrate(single)


class TestPredictionFrame:
    def test_table2_layout(self, dataset):
        execution = dataset.chains[0].current
        frame = build_prediction_frame(execution, n_lags=2, feature_names=FEATURE_NAMES)
        # CFs + 4 EM columns + 2 history lags + observed RU.
        assert frame.shape == (execution.n_timesteps - 2, len(FEATURE_NAMES) + 4 + 2 + 1)
        assert "cpu_t_minus_1" in frame and "cpu_t_minus_2" in frame
        assert frame["build"][0] == execution.environment.build
        # Lag columns really are lagged copies of the RU series.
        np.testing.assert_allclose(frame["cpu_t_minus_1"][1:], frame["cpu_usage"][:-1])

    def test_feature_name_mismatch(self, dataset):
        with pytest.raises(ValueError):
            build_prediction_frame(dataset.chains[0].current, n_lags=2, feature_names=["x"])
