"""TSDB, service discovery, and EM registry tests."""

import json

import numpy as np
import pytest

from repro.data import Environment
from repro.workflow import (
    AmbiguousSeries,
    EMRegistry,
    SeriesNotFound,
    ServiceDiscovery,
    TimeSeriesDB,
)


def _env(testbed="Testbed_01"):
    return Environment(testbed, "SUT_A", "Testcase_Load", "Build_S01")


class TestTimeSeriesDB:
    def test_write_and_query(self):
        db = TimeSeriesDB()
        db.write("cpu", {"env": "em-1"}, 0.0, 50.0)
        db.write("cpu", {"env": "em-1"}, 900.0, 52.0)
        series = db.query_one("cpu", {"env": "em-1"})
        timestamps, values = series.as_arrays()
        np.testing.assert_allclose(timestamps, [0.0, 900.0])
        np.testing.assert_allclose(values, [50.0, 52.0])

    def test_label_isolation(self):
        db = TimeSeriesDB()
        db.write("cpu", {"env": "em-1"}, 0.0, 50.0)
        db.write("cpu", {"env": "em-2"}, 0.0, 70.0)
        assert len(db.query("cpu")) == 2
        assert len(db.query("cpu", {"env": "em-1"})) == 1

    def test_query_one_requires_unique_match(self):
        db = TimeSeriesDB()
        db.write("cpu", {"env": "em-1"}, 0.0, 1.0)
        db.write("cpu", {"env": "em-2"}, 0.0, 1.0)
        with pytest.raises(LookupError):
            db.query_one("cpu")
        with pytest.raises(LookupError):
            db.query_one("cpu", {"env": "em-3"})

    def test_query_one_error_types_distinguish_failures(self):
        db = TimeSeriesDB()
        db.write("cpu", {"env": "em-1"}, 0.0, 1.0)
        db.write("cpu", {"env": "em-2"}, 0.0, 1.0)
        with pytest.raises(SeriesNotFound, match="no series matches"):
            db.query_one("cpu", {"env": "em-3"})
        with pytest.raises(AmbiguousSeries, match="add labels to disambiguate"):
            db.query_one("cpu")
        # Both stay LookupError subclasses for existing handlers.
        assert issubclass(SeriesNotFound, LookupError)
        assert issubclass(AmbiguousSeries, LookupError)

    def test_timestamps_strictly_increasing(self):
        db = TimeSeriesDB()
        db.write("cpu", {}, 10.0, 1.0)
        with pytest.raises(ValueError):
            db.write("cpu", {}, 10.0, 2.0)
        with pytest.raises(ValueError):
            db.write("cpu", {}, 5.0, 2.0)

    def test_write_array(self):
        db = TimeSeriesDB()
        db.write_array("mem", {"env": "a"}, np.arange(5.0), np.arange(5.0) * 2)
        assert len(db.query_one("mem", {"env": "a"})) == 5
        with pytest.raises(ValueError):
            db.write_array("mem", {"env": "b"}, np.arange(5.0), np.arange(4.0))

    def test_write_array_names_the_offending_timestamp(self):
        db = TimeSeriesDB()
        with pytest.raises(ValueError, match=r"timestamps\[2\] = 1\.0 does not advance"):
            db.write_array("mem", {}, np.array([0.0, 2.0, 1.0]), np.zeros(3))
        # A rejected batch writes nothing.
        assert db.n_samples() == 0

    def test_write_array_must_advance_past_existing_series(self):
        db = TimeSeriesDB()
        db.write("mem", {}, 10.0, 1.0)
        with pytest.raises(ValueError, match="strictly increasing"):
            db.write_array("mem", {}, np.array([10.0, 11.0]), np.zeros(2))
        db.write_array("mem", {}, np.array([11.0, 12.0]), np.zeros(2))
        assert db.n_samples() == 3

    def test_query_range(self):
        db = TimeSeriesDB()
        db.write_array("cpu", {"env": "a"}, np.arange(10.0), np.arange(10.0))
        (ranged,) = db.query_range("cpu", {"env": "a"}, 3.0, 7.0)
        timestamps, values = ranged.as_arrays()
        np.testing.assert_allclose(timestamps, [3, 4, 5, 6])
        with pytest.raises(ValueError):
            db.query_range("cpu", None, 5.0, 5.0)

    def test_series_range_is_half_open(self):
        """Boundary: range(start, end) includes a sample at exactly `start`
        and excludes one at exactly `end` — start-inclusive, end-exclusive."""
        db = TimeSeriesDB()
        db.write_array("cpu", {"env": "a"}, np.arange(5.0), np.arange(5.0) * 10)
        series = db.query_one("cpu", {"env": "a"})
        timestamps, values = series.range(1.0, 3.0).as_arrays()
        np.testing.assert_allclose(timestamps, [1.0, 2.0])
        np.testing.assert_allclose(values, [10.0, 20.0])
        # Degenerate and out-of-bounds windows are empty, never an error.
        assert len(series.range(2.0, 2.0)) == 0
        assert len(series.range(10.0, 20.0)) == 0
        # A window past both ends returns every sample.
        assert len(series.range(-1.0, 100.0)) == 5

    def test_introspection(self):
        db = TimeSeriesDB()
        db.write("cpu", {"env": "a"}, 0, 1)
        db.write("mem", {"env": "b"}, 0, 1)
        assert db.metrics() == ["cpu", "mem"]
        assert db.label_values("env") == ["a", "b"]
        assert db.n_series() == 2
        assert db.n_samples() == 2

    def test_empty_metric_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesDB().write("", {}, 0, 1)


class TestEMRegistry:
    def test_register_idempotent(self):
        registry = EMRegistry()
        record_a = registry.register(_env())
        record_b = registry.register(_env())
        assert record_a == record_b
        assert len(registry) == 1

    def test_lookup_roundtrip(self):
        registry = EMRegistry()
        record = registry.register(_env())
        assert registry.lookup(record) == _env()
        assert record in registry

    def test_distinct_envs_distinct_ids(self):
        registry = EMRegistry()
        a = registry.register(_env("Testbed_01"))
        b = registry.register(_env("Testbed_02"))
        assert a != b

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            EMRegistry().lookup("em-999999")


class TestServiceDiscovery:
    def test_paper_json_shape(self, tmp_path):
        config = tmp_path / "sd.json"
        discovery = ServiceDiscovery(config)
        discovery.add_target("10.0.0.1:9100", "em-000001")
        data = json.loads(config.read_text())
        assert data == [{"targets": ["10.0.0.1:9100"], "labels": {"env": "em-000001"}}]

    def test_add_remove(self, tmp_path):
        discovery = ServiceDiscovery(tmp_path / "sd.json")
        discovery.add_target("10.0.0.1:9100", "em-1")
        discovery.add_target("10.0.0.2:9100", "em-2")
        assert len(discovery) == 2
        assert discovery.env_of("10.0.0.2:9100") == "em-2"
        discovery.remove_target("10.0.0.1:9100")
        assert len(discovery) == 1
        with pytest.raises(KeyError):
            discovery.remove_target("10.0.0.1:9100")
        with pytest.raises(KeyError):
            discovery.env_of("10.0.0.1:9100")

    def test_duplicate_endpoint_rejected(self, tmp_path):
        discovery = ServiceDiscovery(tmp_path / "sd.json")
        discovery.add_target("10.0.0.1:9100", "em-1")
        with pytest.raises(ValueError):
            discovery.add_target("10.0.0.1:9100", "em-2")

    def test_malformed_endpoint_rejected(self, tmp_path):
        discovery = ServiceDiscovery(tmp_path / "sd.json")
        with pytest.raises(ValueError):
            discovery.add_target("not-an-endpoint", "em-1")

    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "sd.json"
        first = ServiceDiscovery(path)
        first.add_target("10.0.0.1:9100", "em-1")
        second = ServiceDiscovery(path)
        assert second.env_of("10.0.0.1:9100") == "em-1"

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "sd.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ValueError):
            ServiceDiscovery(path)
