"""Page-Hinkley drift detection tests."""

import numpy as np
import pytest

from repro.workflow import DriftMonitor, PageHinkley


class TestPageHinkley:
    def test_no_drift_on_stationary_stream(self):
        rng = np.random.default_rng(0)
        detector = PageHinkley(delta=0.1, threshold=5.0, warmup=10)
        fired = [detector.update(float(v)) for v in 2.0 + 0.2 * rng.standard_normal(300)]
        assert not any(fired)

    def test_detects_upward_shift(self):
        rng = np.random.default_rng(1)
        detector = PageHinkley(delta=0.05, threshold=3.0, warmup=10)
        stream = np.concatenate([
            2.0 + 0.2 * rng.standard_normal(50),
            3.5 + 0.2 * rng.standard_normal(50),
        ])
        fired_at = next((i for i, v in enumerate(stream) if detector.update(float(v))), None)
        assert fired_at is not None
        assert fired_at >= 50  # not before the shift

    def test_ignores_downward_shift(self):
        detector = PageHinkley(delta=0.05, threshold=3.0, warmup=5)
        stream = [3.0] * 30 + [1.0] * 50
        assert not any(detector.update(v) for v in stream)

    def test_warmup_suppresses_early_alarms(self):
        detector = PageHinkley(delta=0.0, threshold=0.001, warmup=20)
        # Even wildly shifting values cannot fire during warmup.
        for i, value in enumerate([0.0, 100.0] * 10):
            assert not detector.update(value) or i >= 20

    def test_reset(self):
        detector = PageHinkley(delta=0.0, threshold=1.0, warmup=1)
        for v in [1.0, 1.0, 5.0, 5.0, 5.0]:
            detector.update(v)
        detector.reset()
        assert detector.statistic == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(delta=-0.1)
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(warmup=0)
        with pytest.raises(ValueError):
            PageHinkley().update(float("nan"))


class TestDriftMonitor:
    def test_recommends_retrain_after_drift(self):
        monitor = DriftMonitor(delta=0.05, threshold=2.0, warmup=5)
        decisions = [monitor.observe(2.0) for _ in range(20)]
        assert not any(d.drifted for d in decisions)
        drifted = []
        for _ in range(20):
            drifted.append(monitor.observe(3.5).drifted)
        assert any(drifted)
        assert monitor.retrain_recommendations == sum(drifted)

    def test_resets_after_recommendation(self):
        monitor = DriftMonitor(delta=0.05, threshold=1.0, warmup=2)
        for _ in range(10):
            monitor.observe(1.0)
        # Force drift.
        while not monitor.observe(5.0).drifted:
            pass
        # After reset the statistic starts over.
        decision = monitor.observe(5.0)
        assert not decision.drifted
        assert decision.observations == 1

    def test_negative_mae_rejected(self):
        with pytest.raises(ValueError):
            DriftMonitor().observe(-1.0)

    def test_end_to_end_with_model_errors(self):
        """Aging model scenario: response shifts between build generations."""
        rng = np.random.default_rng(7)
        monitor = DriftMonitor(delta=0.02, threshold=1.5, warmup=5)
        # Generation 1: model fits well (MAE ~1.2).
        for _ in range(25):
            assert not monitor.observe(float(1.2 + 0.1 * rng.standard_normal())).drifted
        # Generation 2: infrastructure change doubles the error.
        fired = False
        for _ in range(25):
            fired = fired or monitor.observe(float(2.6 + 0.1 * rng.standard_normal())).drifted
        assert fired
