"""CLI tests: argument parsing and a fast end-to-end experiment run."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table5"])
        assert args.experiment == "table5"
        assert not args.full
        assert args.chains == 125

    def test_all_choice(self):
        assert build_parser().parse_args(["all"]).experiment == "all"

    def test_flags(self):
        args = build_parser().parse_args(["table4", "--full", "--seed", "3", "--chains", "30"])
        assert args.full and args.seed == 3 and args.chains == 30

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_experiment_registry_complete(self):
        from repro.cli import _RUNNERS

        assert set(_RUNNERS) == set(EXPERIMENTS)


class TestMain:
    def test_figure1_small_corpus(self, capsys):
        exit_code = main(["figure1", "--chains", "10", "--seed", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "### figure1" in out
        assert "chains" in out
