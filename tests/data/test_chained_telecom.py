"""Chained-VNF (service chain) workload generator tests."""

import numpy as np
import pytest

from repro.data import (
    ChainedTelecomConfig,
    ChainedTelecomDataset,
    ServiceChainTopology,
    TelecomConfig,
    VNFPlacement,
    dataset_from_bytes,
    dataset_to_bytes,
    generate_chained_telecom,
    generate_telecom,
)

CFG = dict(n_chains=14, n_testbeds=6, n_focus=4, seed=5)


@pytest.fixture(scope="module")
def chained():
    return generate_chained_telecom(ChainedTelecomConfig(**CFG))


@pytest.fixture(scope="module")
def independent():
    return generate_telecom(TelecomConfig(**CFG))


class TestTopologyDataclasses:
    def test_placement_validation(self):
        with pytest.raises(ValueError, match="position"):
            VNFPlacement(position=-1, testbed="Testbed_01")
        with pytest.raises(ValueError, match="upstream delay"):
            VNFPlacement(position=0, testbed="Testbed_01", delay=2)
        with pytest.raises(ValueError, match="colocated"):
            VNFPlacement(position=1, testbed="Testbed_01", colocated=True, delay=2)
        with pytest.raises(ValueError, match="damping"):
            VNFPlacement(position=1, testbed="Testbed_01", damping=0.0)

    def test_topology_validation(self):
        head = VNFPlacement(position=0, testbed="Testbed_01")
        hop = VNFPlacement(position=1, testbed="Testbed_02", delay=1, damping=0.8)
        with pytest.raises(ValueError, match="at least 2"):
            ServiceChainTopology(name="t", members=(1,), placements=(head,))
        with pytest.raises(ValueError, match="aligned"):
            ServiceChainTopology(name="t", members=(1, 2), placements=(head,))
        with pytest.raises(ValueError, match="twice"):
            ServiceChainTopology(name="t", members=(1, 1), placements=(head, hop))
        with pytest.raises(ValueError, match="ordered"):
            ServiceChainTopology(name="t", members=(1, 2), placements=(head, head))

    def test_upstream_of(self):
        topology = ServiceChainTopology(
            name="t",
            members=(4, 9),
            placements=(
                VNFPlacement(position=0, testbed="Testbed_01"),
                VNFPlacement(position=1, testbed="Testbed_02", delay=2, damping=0.7),
            ),
        )
        assert topology.upstream_of(0) is None
        assert topology.upstream_of(1) == 4
        with pytest.raises(IndexError):
            topology.upstream_of(2)


class TestChainedGeneration:
    def test_produces_topologies_over_valid_members(self, chained):
        assert isinstance(chained, ChainedTelecomDataset)
        assert chained.topologies
        n = len(chained.chains)
        for topology in chained.topologies:
            assert len(topology) >= 2
            assert all(0 <= index < n for index in topology.members)

    def test_rare_chain_stays_independent(self, chained):
        rare_index = len(chained.chains) - 1
        assert chained.chains[rare_index].key[0] == "Testbed_rare"
        assert rare_index not in chained.chained_indices()

    def test_members_appear_in_exactly_one_topology(self, chained):
        seen = [index for topology in chained.topologies for index in topology.members]
        assert len(seen) == len(set(seen))

    def test_downstream_members_are_coupled(self, chained, independent):
        """Downstream CPU differs from the independent corpus; heads do not."""
        heads = {topology.members[0] for topology in chained.topologies}
        downstream = chained.chained_indices() - heads
        assert downstream
        for index in downstream:
            assert not np.allclose(
                chained.chains[index].current.cpu, independent.chains[index].current.cpu
            )
        for index in heads:
            np.testing.assert_array_equal(
                chained.chains[index].current.cpu, independent.chains[index].current.cpu
            )

    def test_coupling_preserves_ground_truth_labels(self, chained, independent):
        """Upstream fault deltas propagate as CPU, never as fault records."""
        for chain_a, chain_b in zip(chained.chains, independent.chains):
            for exec_a, exec_b in zip(chain_a.executions, chain_b.executions):
                assert exec_a.faults == exec_b.faults
        assert chained.focus_indices == independent.focus_indices

    def test_cpu_stays_in_bounds(self, chained):
        for chain in chained.chains:
            for execution in chain.executions:
                assert execution.cpu.min() >= 2.0
                assert execution.cpu.max() <= 98.0

    def test_deterministic(self, chained):
        again = generate_chained_telecom(ChainedTelecomConfig(**CFG))
        assert again.topologies == chained.topologies
        for chain_a, chain_b in zip(again.chains, chained.chains):
            for exec_a, exec_b in zip(chain_a.executions, chain_b.executions):
                np.testing.assert_array_equal(exec_a.cpu, exec_b.cpu)
                np.testing.assert_array_equal(exec_a.features, exec_b.features)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            ChainedTelecomConfig(**CFG, chain_length=(1, 3))
        with pytest.raises(ValueError, match="inverted"):
            ChainedTelecomConfig(**CFG, chain_length=(4, 2))
        with pytest.raises(ValueError, match="colocation_probability"):
            ChainedTelecomConfig(**CFG, colocation_probability=1.5)
        with pytest.raises(ValueError, match="delay_range"):
            ChainedTelecomConfig(**CFG, delay_range=(0, 3))
        with pytest.raises(ValueError, match="damping_range"):
            ChainedTelecomConfig(**CFG, damping_range=(0.5, 1.2))
        with pytest.raises(ValueError, match="gains"):
            ChainedTelecomConfig(**CFG, queue_gain=-0.1)


class TestChainedSerialization:
    def test_roundtrip_preserves_type_config_and_topologies(self, chained):
        restored = dataset_from_bytes(dataset_to_bytes(chained))
        assert isinstance(restored, ChainedTelecomDataset)
        assert isinstance(restored.config, ChainedTelecomConfig)
        assert restored.config == chained.config
        assert restored.topologies == chained.topologies
        for chain_a, chain_b in zip(restored.chains, chained.chains):
            for exec_a, exec_b in zip(chain_a.executions, chain_b.executions):
                np.testing.assert_array_equal(exec_a.cpu, exec_b.cpu)

    def test_roundtrip_is_byte_identical(self, chained):
        blob = dataset_to_bytes(chained)
        assert dataset_to_bytes(dataset_from_bytes(blob)) == blob

    def test_independent_corpus_keeps_plain_type(self, independent):
        restored = dataset_from_bytes(dataset_to_bytes(independent))
        assert type(restored) is type(independent)
        assert not isinstance(restored, ChainedTelecomDataset)
