"""Environment / Testbed / EM schema tests."""

import numpy as np
import pytest

from repro.data import EM_FIELDS, TABLE1_SCHEMA, Environment, random_testbed


class TestEnvironment:
    def _env(self, **overrides):
        base = dict(
            testbed="Testbed_15",
            sut="SUT_DB",
            testcase="Testcase_Regression",
            build="Build_S10",
        )
        base.update(overrides)
        return Environment(**base)

    def test_fields_and_dict(self):
        env = self._env()
        assert env.as_dict() == {
            "testbed": "Testbed_15",
            "sut": "SUT_DB",
            "testcase": "Testcase_Regression",
            "build": "Build_S10",
        }
        assert env.as_tuple() == ("Testbed_15", "SUT_DB", "Testcase_Regression", "Build_S10")

    def test_empty_field_rejected(self):
        with pytest.raises(ValueError):
            self._env(testbed="")

    def test_build_type_letter(self):
        assert self._env(build="Build_S10").build_type == "S"
        assert self._env(build="Build_D02").build_type == "D"

    def test_chain_key_excludes_build(self):
        a = self._env(build="Build_S10")
        b = self._env(build="Build_S11")
        assert a.chain_key == b.chain_key

    def test_with_build(self):
        env = self._env()
        upgraded = env.with_build("Build_S11")
        assert upgraded.build == "Build_S11"
        assert upgraded.chain_key == env.chain_key

    def test_overlap_counts_shared_fields(self):
        # The §3.1 example: same testbed and SUT, different testcase/build.
        a = Environment("Testbed_15", "SUT_DB", "Testcase_Regression", "Build_S10")
        b = Environment("Testbed_15", "SUT_DB", "Testcase_Endurance", "Build_S11")
        assert a.overlap(b) == 2
        assert a.overlap(a) == 4

    def test_hashable_and_equal(self):
        assert self._env() == self._env()
        assert len({self._env(), self._env()}) == 1

    def test_em_fields_constant(self):
        assert EM_FIELDS == ("testbed", "sut", "testcase", "build")


class TestTestbed:
    def test_schema_has_five_layers(self):
        assert set(TABLE1_SCHEMA) == {
            "hardware",
            "virtualization",
            "operating_system",
            "application",
            "test_case",
        }

    def test_random_testbed_covers_stack_layers(self):
        testbed = random_testbed("Testbed_01", np.random.default_rng(0))
        # One label per entry in layers 1-4.
        expected = sum(
            len(TABLE1_SCHEMA[layer])
            for layer in ("hardware", "virtualization", "operating_system", "application")
        )
        assert len(testbed.labels) == expected
        assert testbed.label("hypervisor") in [str(v) for v in TABLE1_SCHEMA["virtualization"]["hypervisor"]]

    def test_values_come_from_domains(self):
        testbed = random_testbed("tb", np.random.default_rng(1))
        for layer in ("hardware", "virtualization", "operating_system", "application"):
            for name, domain in TABLE1_SCHEMA[layer].items():
                assert testbed.label(name) in {str(v) for v in domain}

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            random_testbed("", np.random.default_rng(0))

    def test_deterministic_given_rng_seed(self):
        a = random_testbed("tb", np.random.default_rng(5))
        b = random_testbed("tb", np.random.default_rng(5))
        assert a.labels == b.labels
