"""Telecom build-chain simulator tests."""

import numpy as np
import pytest

from repro.data import FEATURE_NAMES, TelecomConfig, generate_telecom
from repro.ml import Ridge


def small_config(**overrides):
    defaults = dict(
        n_chains=15,
        n_testbeds=6,
        builds_per_chain=(3, 4),
        timesteps_per_build=(60, 80),
        n_focus=3,
        seed=5,
    )
    defaults.update(overrides)
    return TelecomConfig(**defaults)


class TestTelecomConfig:
    def test_defaults_match_paper_scale(self):
        config = TelecomConfig()
        assert config.n_chains == 125
        assert config.n_focus == 11
        assert config.rare_history_timesteps == 17  # Table 7

    def test_validation(self):
        with pytest.raises(ValueError):
            TelecomConfig(n_chains=0)
        with pytest.raises(ValueError):
            TelecomConfig(builds_per_chain=(1, 3))
        with pytest.raises(ValueError):
            TelecomConfig(builds_per_chain=(5, 3))
        with pytest.raises(ValueError):
            TelecomConfig(timesteps_per_build=(10, 20))
        with pytest.raises(ValueError):
            TelecomConfig(n_focus=200, n_chains=100)
        with pytest.raises(ValueError):
            TelecomConfig(n_chains=100_000)


class TestTelecomStructure:
    def test_chain_count(self):
        dataset = generate_telecom(small_config())
        assert dataset.n_chains == 15

    def test_chain_keys_unique(self):
        dataset = generate_telecom(small_config())
        keys = [chain.key for chain in dataset.chains]
        assert len(set(keys)) == len(keys)

    def test_builds_within_configured_range(self):
        config = small_config(include_rare_testbed=False)
        dataset = generate_telecom(config)
        for chain in dataset.chains:
            assert config.builds_per_chain[0] <= len(chain) <= config.builds_per_chain[1]

    def test_builds_are_consecutive_versions_of_one_type(self):
        dataset = generate_telecom(small_config(include_rare_testbed=False))
        for chain in dataset.chains:
            types = {env_build.removeprefix("Build_")[0] for env_build in chain.builds}
            assert len(types) == 1
            versions = [int(b.removeprefix("Build_")[1:]) for b in chain.builds]
            assert versions == list(range(versions[0], versions[0] + len(versions)))

    def test_feature_names(self):
        dataset = generate_telecom(small_config())
        assert dataset.feature_names == FEATURE_NAMES
        for chain in dataset.chains:
            assert chain.current.features.shape[1] == len(FEATURE_NAMES)

    def test_cpu_in_percent_range(self):
        dataset = generate_telecom(small_config())
        for chain in dataset.chains:
            for execution in chain.executions:
                assert execution.cpu.min() >= 0.0
                assert execution.cpu.max() <= 100.0

    def test_focus_chains_have_problems_history_clean(self):
        dataset = generate_telecom(small_config())
        assert len(dataset.focus_indices) == 3
        for chain in dataset.focus_chains:
            assert chain.current.has_performance_problem
            for execution in chain.history:
                assert not execution.has_performance_problem

    def test_non_focus_currents_clean(self):
        dataset = generate_telecom(small_config())
        focus = set(dataset.focus_indices)
        for i, chain in enumerate(dataset.chains):
            if i not in focus:
                assert not chain.current.has_performance_problem

    def test_ground_truth_count_positive(self):
        dataset = generate_telecom(small_config())
        assert dataset.total_ground_truth_problems() >= 3

    def test_deterministic(self):
        a = generate_telecom(small_config())
        b = generate_telecom(small_config())
        assert a.focus_indices == b.focus_indices
        np.testing.assert_allclose(a.chains[0].current.cpu, b.chains[0].current.cpu)

    def test_seed_changes_corpus(self):
        a = generate_telecom(small_config(seed=1))
        b = generate_telecom(small_config(seed=2))
        keys_differ = [c.key for c in a.chains] != [c.key for c in b.chains]
        sizes_differ = a.total_timesteps() != b.total_timesteps()
        cpu_a, cpu_b = a.chains[0].current.cpu, b.chains[0].current.cpu
        cpu_differ = cpu_a.shape != cpu_b.shape or not np.allclose(cpu_a, cpu_b)
        assert keys_differ or sizes_differ or cpu_differ

    def test_rare_testbed_chain(self):
        config = small_config(include_rare_testbed=True)
        dataset = generate_telecom(config)
        rare_chains = [c for c in dataset.chains if c.key[0] == "Testbed_rare"]
        assert len(rare_chains) == 1
        rare = rare_chains[0]
        # Table 7: tiny history (17 examples), and it is a focus execution.
        assert rare.history[0].n_timesteps == config.rare_history_timesteps
        assert rare.current.has_performance_problem

    def test_environments_listing(self):
        dataset = generate_telecom(small_config())
        envs = dataset.environments()
        assert len(envs) == len(set(envs))
        without_current = dataset.environments(include_current=False)
        assert len(without_current) < len(envs)

    def test_history_training_series_excludes_currents(self):
        dataset = generate_telecom(small_config())
        training_builds = {env.build for env, _, _ in dataset.history_training_series()}
        for chain in dataset.chains:
            # A chain's current build never appears in its own training data
            # (builds are per-chain consecutive versions).
            assert chain.current.environment not in [
                env for env, _, _ in dataset.history_training_series()
            ]
        assert training_builds  # non-empty


class TestTelecomLearnability:
    def test_environment_determines_response(self):
        """Chains sharing EM values respond more similarly than random pairs.

        The response is estimated in the generator's driver space (which is
        a deterministic function of the observable features), where the
        compositional latent structure shows up directly — this is the
        property environment embeddings exploit (§3.1).
        """
        from repro.data.telecom import _drivers

        dataset = generate_telecom(
            small_config(n_chains=30, n_testbeds=4, include_rare_testbed=False)
        )

        def chain_weights(chain):
            X = np.concatenate([e.features for e in chain.executions])
            y = np.concatenate([e.cpu for e in chain.executions])
            return Ridge(alpha=1.0).fit(_drivers(None, X), y).coef_

        weights = {chain.key: chain_weights(chain) for chain in dataset.chains}
        similar, dissimilar = [], []
        keys = list(weights)
        for i in range(len(keys)):
            for j in range(i + 1, len(keys)):
                a, b = keys[i], keys[j]
                shared = sum(x == y for x, y in zip(a, b))
                distance = np.linalg.norm(weights[a] - weights[b])
                if shared == 2:
                    similar.append(distance)
                elif shared == 0:
                    dissimilar.append(distance)
        assert similar and dissimilar
        assert np.mean(similar) < np.mean(dissimilar)

    def test_cpu_predictable_within_chain(self):
        dataset = generate_telecom(small_config())
        chain = dataset.chains[0]
        X = np.concatenate([e.features for e in chain.history])
        y = np.concatenate([e.cpu for e in chain.history])
        model = Ridge(alpha=1.0).fit(X, y)
        mse = np.mean((model.predict(X) - y) ** 2)
        assert mse < y.var()  # features clearly informative

    def test_faults_visible_in_cpu(self):
        dataset = generate_telecom(small_config())
        chain = dataset.focus_chains[0]
        mask = chain.current.anomaly_mask()
        cpu = chain.current.cpu
        # Mean CPU inside impactful intervals differs from outside.
        assert abs(cpu[mask].mean() - cpu[~mask].mean()) > 2.0


class TestTestbedMetadata:
    def test_every_testbed_has_table1_labels(self):
        from repro.data import TABLE1_SCHEMA

        dataset = generate_telecom(small_config())
        used = {chain.key[0] for chain in dataset.chains}
        assert set(dataset.testbeds) == used
        hardware_labels = set(TABLE1_SCHEMA["hardware"])
        for testbed in dataset.testbeds.values():
            assert hardware_labels <= set(testbed.labels)

    def test_labels_deterministic_per_seed(self):
        a = generate_telecom(small_config())
        b = generate_telecom(small_config())
        for name in a.testbeds:
            assert a.testbeds[name].labels == b.testbeds[name].labels

    def test_testbeds_differ_from_each_other(self):
        dataset = generate_telecom(small_config())
        label_sets = [tuple(sorted(t.labels.items())) for t in dataset.testbeds.values()]
        assert len(set(label_sets)) > 1
