"""Multi-KPI support: memory series generation and modelling (§4.2 claim)."""

import numpy as np
import pytest

from repro.data import Environment, TelecomConfig, generate_telecom
from repro.data import TestExecution as Execution
from repro.data.windows import build_windows_multi
from repro.core import Env2VecRegressor


def _dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=10,
            n_testbeds=4,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=2,
            include_rare_testbed=False,
            emit_memory=True,
            seed=1,
        )
    )


class TestExtraKPIs:
    def test_memory_emitted_when_enabled(self):
        dataset = _dataset()
        for chain in dataset.chains:
            for execution in chain.executions:
                assert "memory" in execution.extra_kpis
                assert execution.extra_kpis["memory"].shape == execution.cpu.shape

    def test_memory_absent_by_default(self):
        dataset = generate_telecom(
            TelecomConfig(
                n_chains=4,
                n_testbeds=3,
                builds_per_chain=(3, 3),
                timesteps_per_build=(50, 55),
                n_focus=2,
                include_rare_testbed=False,
                seed=6,
            )
        )
        assert dataset.chains[0].current.extra_kpis == {}

    def test_kpi_accessor(self):
        dataset = _dataset()
        execution = dataset.chains[0].current
        np.testing.assert_array_equal(execution.kpi("cpu"), execution.cpu)
        np.testing.assert_array_equal(execution.kpi("memory"), execution.extra_kpis["memory"])
        with pytest.raises(KeyError, match="disk"):
            execution.kpi("disk")

    def test_memory_in_valid_range(self):
        dataset = _dataset()
        for chain in dataset.chains:
            for execution in chain.executions:
                memory = execution.extra_kpis["memory"]
                assert memory.min() >= 0.0 and memory.max() <= 100.0

    def test_debug_builds_leak(self):
        """Debug-type builds drift upward in memory (the injected leak)."""
        dataset = _dataset()
        debug = [
            e
            for c in dataset.chains
            for e in c.executions
            if e.environment.build_type == "D"
        ]
        stable = [
            e
            for c in dataset.chains
            for e in c.executions
            if e.environment.build_type == "S"
        ]
        if not debug or not stable:
            pytest.skip("corpus lacks both build types at this seed")

        def drift(execution):
            memory = execution.extra_kpis["memory"]
            half = len(memory) // 2
            return memory[half:].mean() - memory[:half].mean()

        assert np.mean([drift(e) for e in debug]) > np.mean([drift(e) for e in stable])

    def test_misaligned_kpi_rejected(self):
        env = Environment("T1", "S1", "C1", "B1")
        with pytest.raises(ValueError, match="KPI 'memory'"):
            Execution(
                environment=env,
                features=np.zeros((5, 2)),
                cpu=np.zeros(5),
                extra_kpis={"memory": np.zeros(4)},
            )


class TestMemoryModelling:
    def test_env2vec_models_memory_kpi(self):
        """The same architecture characterizes the memory KPI (§4.2)."""
        dataset = _dataset()
        series, envs_per_series = [], []
        for chain in dataset.chains:
            for execution in chain.history:
                series.append((execution.features, execution.kpi("memory")))
                envs_per_series.append(execution.environment)
        X, history, y, ids = build_windows_multi(series, 3)
        environments = [envs_per_series[i] for i in ids]
        model = Env2VecRegressor(n_lags=3, max_epochs=15, batch_size=256, seed=0)
        model.fit(environments, X, history, y)
        predictions = model.predict(environments[:200], X[:200], history[:200])
        mae = np.abs(predictions - y[:200]).mean()
        assert mae < y.std()  # clearly better than the trivial predictor
