"""Corpus-statistics tests."""

import numpy as np
import pytest

from repro.data import (
    BuildChain,
    Environment,
    TelecomConfig,
    TelecomDataset,
    corpus_stats,
    generate_telecom,
)
from repro.data import TestExecution as Execution


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=12,
            n_testbeds=5,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=3,
            include_rare_testbed=True,
            seed=2,
        )
    )


class TestCorpusStats:
    def test_totals(self, dataset):
        stats = corpus_stats(dataset)
        expected_executions = sum(len(chain.history) for chain in dataset.chains)
        assert stats.n_executions == expected_executions
        assert stats.n_chains == dataset.n_chains
        assert stats.n_timesteps == sum(
            execution.n_timesteps for chain in dataset.chains for execution in chain.history
        )

    def test_training_only_excludes_currents(self, dataset):
        training = corpus_stats(dataset, training_only=True)
        everything = corpus_stats(dataset, training_only=False)
        assert everything.n_executions > training.n_executions
        # All injected problems live in current builds.
        assert training.n_problem_executions == 0
        assert everything.n_problem_executions == len(dataset.focus_indices)

    def test_rare_testbed_is_thinnest(self, dataset):
        stats = corpus_stats(dataset)
        thinnest_value, thinnest_count = stats.fields["testbed"].thinnest(1)[0]
        assert thinnest_value == "Testbed_rare"
        assert thinnest_count == dataset.config.rare_history_timesteps

    def test_execution_counts_sum(self, dataset):
        stats = corpus_stats(dataset)
        for field_coverage in stats.fields.values():
            assert sum(field_coverage.executions.values()) == stats.n_executions
            assert sum(field_coverage.timesteps.values()) == stats.n_timesteps

    def test_balance_bounds(self, dataset):
        stats = corpus_stats(dataset)
        for field_coverage in stats.fields.values():
            assert 0.0 <= field_coverage.balance() <= 1.0

    def test_perfectly_balanced_field(self):
        rng = np.random.default_rng(0)

        def execution(testbed, build):
            return Execution(
                environment=Environment(testbed, "SUT_A", "Testcase_Load", build),
                features=rng.standard_normal((50, 2)),
                cpu=np.full(50, 40.0),
            )

        chains = [
            BuildChain([execution("T1", "Build_S01"), execution("T1", "Build_S02")]),
            BuildChain([execution("T2", "Build_S01"), execution("T2", "Build_S02")]),
        ]
        dataset = TelecomDataset(chains=chains, feature_names=["a", "b"], config=TelecomConfig())
        stats = corpus_stats(dataset)
        assert stats.fields["testbed"].balance() == pytest.approx(1.0)
        # Single-value field is trivially balanced.
        assert stats.fields["sut"].balance() == 1.0

    def test_table_text(self, dataset):
        text = corpus_stats(dataset).table()
        assert "testbed" in text and "balance" in text

    def test_empty_corpus_rejected(self):
        rng = np.random.default_rng(0)
        single = Execution(
            environment=Environment("T1", "S1", "C1", "B1"),
            features=rng.standard_normal((10, 2)),
            cpu=np.full(10, 40.0),
        )
        dataset = TelecomDataset(
            chains=[BuildChain([single])], feature_names=["a", "b"], config=TelecomConfig()
        )
        # One-execution chains have no history -> empty training pool.
        with pytest.raises(ValueError):
            corpus_stats(dataset, training_only=True)
