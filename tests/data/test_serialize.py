"""Corpus serialization round-trip tests."""

import numpy as np
import pytest

from repro.data import (
    TelecomConfig,
    dataset_from_bytes,
    dataset_to_bytes,
    generate_telecom,
    load_dataset,
    save_dataset,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=6,
            n_testbeds=3,
            builds_per_chain=(2, 3),
            timesteps_per_build=(40, 50),
            n_focus=2,
            include_rare_testbed=True,
            emit_memory=True,
            seed=8,
        )
    )


class TestRoundTrip:
    def test_structure_preserved(self, dataset):
        restored = dataset_from_bytes(dataset_to_bytes(dataset))
        assert restored.n_chains == dataset.n_chains
        assert restored.focus_indices == dataset.focus_indices
        assert restored.feature_names == dataset.feature_names
        assert [c.key for c in restored.chains] == [c.key for c in dataset.chains]
        assert [len(c) for c in restored.chains] == [len(c) for c in dataset.chains]

    def test_series_bitwise_equal(self, dataset):
        restored = dataset_from_bytes(dataset_to_bytes(dataset))
        for original, copy in zip(dataset.chains, restored.chains):
            for a, b in zip(original.executions, copy.executions):
                np.testing.assert_array_equal(a.features, b.features)
                np.testing.assert_array_equal(a.cpu, b.cpu)
                np.testing.assert_array_equal(a.extra_kpis["memory"], b.extra_kpis["memory"])

    def test_faults_preserved(self, dataset):
        restored = dataset_from_bytes(dataset_to_bytes(dataset))
        for original, copy in zip(dataset.focus_chains, restored.focus_chains):
            assert copy.current.faults == original.current.faults
            np.testing.assert_array_equal(
                copy.current.anomaly_mask(), original.current.anomaly_mask()
            )

    def test_config_preserved(self, dataset):
        restored = dataset_from_bytes(dataset_to_bytes(dataset))
        assert restored.config == dataset.config

    def test_file_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "corpus.npz"
        size = save_dataset(dataset, path)
        assert path.stat().st_size == size
        restored = load_dataset(path)
        assert restored.total_timesteps() == dataset.total_timesteps()

    def test_restored_corpus_usable_for_training(self, dataset):
        from repro.eval import train_env2vec_telecom

        restored = dataset_from_bytes(dataset_to_bytes(dataset))
        model = train_env2vec_telecom(restored, fast=True, max_epochs=3)
        assert model.model is not None


class TestValidation:
    def test_garbage_blob_rejected(self):
        import io

        import numpy as np

        buffer = io.BytesIO()
        np.savez(buffer, data=np.zeros(3))
        with pytest.raises(ValueError, match="manifest"):
            dataset_from_bytes(buffer.getvalue())

    def test_wrong_version_rejected(self, dataset):
        import io
        import json

        blob = dataset_to_bytes(dataset)
        with np.load(io.BytesIO(blob)) as archive:
            arrays = {name: archive[name] for name in archive.files}
        manifest = json.loads(arrays["__manifest__"].tobytes().decode())
        manifest["format_version"] = 99
        arrays["__manifest__"] = np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        with pytest.raises(ValueError, match="version"):
            dataset_from_bytes(buffer.getvalue())


class TestTestbedMetadataRoundTrip:
    def test_testbed_labels_preserved(self, dataset):
        from repro.data import dataset_from_bytes, dataset_to_bytes

        restored = dataset_from_bytes(dataset_to_bytes(dataset))
        assert set(restored.testbeds) == set(dataset.testbeds)
        for name, testbed in dataset.testbeds.items():
            assert restored.testbeds[name].labels == testbed.labels
