"""Frame (mini dataframe) and sliding-window tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Frame, build_windows, build_windows_multi


class TestFrame:
    def _frame(self):
        return Frame(
            {
                "demand": [10.0, 20.0, 30.0],
                "cpu": [40.0, 50.0, 60.0],
                "build": ["S01", "S01", "S02"],
            }
        )

    def test_shape_and_columns(self):
        frame = self._frame()
        assert frame.shape == (3, 3)
        assert frame.columns == ["demand", "cpu", "build"]
        assert "cpu" in frame and "nope" not in frame

    def test_column_access(self):
        np.testing.assert_allclose(self._frame()["cpu"], [40, 50, 60])
        with pytest.raises(KeyError, match="nope"):
            self._frame()["nope"]

    def test_length_consistency_enforced(self):
        frame = self._frame()
        with pytest.raises(ValueError):
            frame["bad"] = [1.0, 2.0]

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            Frame({"x": np.zeros((2, 2))})

    def test_row(self):
        row = self._frame().row(1)
        assert row == {"demand": 20.0, "cpu": 50.0, "build": "S01"}
        with pytest.raises(IndexError):
            self._frame().row(5)

    def test_select_and_take(self):
        frame = self._frame()
        sub = frame.select(["cpu"])
        assert sub.columns == ["cpu"]
        taken = frame.take(np.array([2, 0]))
        np.testing.assert_allclose(taken["demand"], [30.0, 10.0])
        masked = frame.take(frame["demand"] > 15)
        assert len(masked) == 2

    def test_filter(self):
        frame = self._frame()
        filtered = frame.filter(lambda row: row["build"] == "S01")
        assert len(filtered) == 2

    def test_with_columns(self):
        frame = self._frame()
        extended = frame.with_columns({"mem": [1.0, 2.0, 3.0]})
        assert "mem" in extended
        assert "mem" not in frame  # original untouched

    def test_concat_rows(self):
        frame = self._frame()
        combined = Frame.concat_rows([frame, frame])
        assert len(combined) == 6
        with pytest.raises(ValueError):
            Frame.concat_rows([frame, frame.select(["cpu"])])
        with pytest.raises(ValueError):
            Frame.concat_rows([])

    def test_to_matrix_numeric_only(self):
        frame = self._frame()
        matrix = frame.to_matrix(["demand", "cpu"])
        assert matrix.shape == (3, 2)
        with pytest.raises(TypeError):
            frame.to_matrix(["build"])

    def test_head(self):
        assert len(self._frame().head(2)) == 2
        assert len(self._frame().head(99)) == 3


class TestBuildWindows:
    def test_alignment(self):
        features = np.arange(12, dtype=float).reshape(6, 2)
        target = np.array([10.0, 11, 12, 13, 14, 15])
        X, history, y = build_windows(features, target, n_lags=2)
        assert X.shape == (4, 2)
        np.testing.assert_allclose(y, [12, 13, 14, 15])
        # history row i holds [y_{p-2}, y_{p-1}] oldest first
        np.testing.assert_allclose(history[0], [10, 11])
        np.testing.assert_allclose(history[-1], [13, 14])
        np.testing.assert_allclose(X[0], features[2])

    def test_single_lag(self):
        target = np.array([1.0, 2, 3])
        X, history, y = build_windows(np.zeros((3, 1)), target, n_lags=1)
        np.testing.assert_allclose(history[:, 0], [1, 2])
        np.testing.assert_allclose(y, [2, 3])

    def test_too_short_series(self):
        with pytest.raises(ValueError):
            build_windows(np.zeros((3, 1)), np.zeros(3), n_lags=3)

    def test_minimum_length_yields_exactly_one_window(self):
        """Boundary: len(target) == n_lags + 1 is the shortest legal series
        (one supervised example); one sample fewer must raise. The campaign
        skip rule `n_timesteps <= n_lags + 1` deliberately also skips the
        one-window case, so both sides of that fence are pinned here."""
        n_lags = 3
        target = np.array([1.0, 2.0, 3.0, 4.0])  # length n_lags + 1
        X, history, y = build_windows(np.zeros((4, 2)), target, n_lags=n_lags)
        assert X.shape == (1, 2)
        np.testing.assert_allclose(history, [[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(y, [4.0])
        with pytest.raises(ValueError, match="too short"):
            build_windows(np.zeros((3, 2)), target[:3], n_lags=n_lags)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_windows(np.zeros((5, 1)), np.zeros(5), n_lags=0)
        with pytest.raises(ValueError):
            build_windows(np.zeros(5), np.zeros(5), n_lags=1)
        with pytest.raises(ValueError):
            build_windows(np.zeros((5, 1)), np.zeros((5, 1)), n_lags=1)
        with pytest.raises(ValueError):
            build_windows(np.zeros((4, 1)), np.zeros(5), n_lags=1)

    def test_multi_series_no_straddling(self):
        series = [
            (np.zeros((5, 1)), np.array([1.0, 2, 3, 4, 5])),
            (np.zeros((4, 1)), np.array([10.0, 20, 30, 40])),
        ]
        X, history, y, ids = build_windows_multi(series, n_lags=2)
        assert len(y) == 3 + 2
        # No window mixes values from both series.
        np.testing.assert_allclose(history[3], [10, 20])
        np.testing.assert_allclose(ids, [0, 0, 0, 1, 1])

    def test_multi_requires_series(self):
        with pytest.raises(ValueError):
            build_windows_multi([], n_lags=1)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=6, max_value=40),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_window_contents_match_source(self, n_lags, length, seed):
        """Every history row equals the target slice immediately before y."""
        rng = np.random.default_rng(seed)
        features = rng.standard_normal((length, 3))
        target = rng.standard_normal(length)
        X, history, y = build_windows(features, target, n_lags)
        assert len(y) == length - n_lags
        for i in range(len(y)):
            p = i + n_lags
            np.testing.assert_allclose(history[i], target[p - n_lags : p])
            assert y[i] == target[p]
            np.testing.assert_allclose(X[i], features[p])
