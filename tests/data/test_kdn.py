"""Synthetic KDN dataset tests (Table 3 splits, Table 4 scale, VNF shapes)."""

import numpy as np
import pytest

from repro.data import KDN_CPU_SCALE, KDN_NAMES, KDN_SPLITS, load_all_kdn, load_kdn
from repro.ml import Ridge, RidgeTS
from repro.data.windows import build_windows


class TestKDNStructure:
    def test_table3_totals(self):
        # Table 3: Snort 1,359; Switch 1,191; Firewall 755.
        assert load_kdn("snort").n_samples == 1359
        assert load_kdn("switch").n_samples == 1191
        assert load_kdn("firewall").n_samples == 755

    @pytest.mark.parametrize("name", KDN_NAMES)
    def test_table3_split_sizes(self, name):
        dataset = load_kdn(name)
        train, val, test = dataset.split()
        expected = KDN_SPLITS[name]
        assert (len(train), len(val), len(test)) == expected
        # Splits are disjoint and ordered.
        assert train[-1] < val[0] <= val[-1] < test[0]

    @pytest.mark.parametrize("name", KDN_NAMES)
    def test_86_features(self, name):
        dataset = load_kdn(name)
        assert dataset.features.shape == (dataset.n_samples, 86)
        assert len(dataset.feature_names) == 86
        assert len(set(dataset.feature_names)) == 86

    @pytest.mark.parametrize("name", KDN_NAMES)
    def test_table4_cpu_scale(self, name):
        dataset = load_kdn(name)
        mean, std = KDN_CPU_SCALE[name]
        assert dataset.cpu.mean() == pytest.approx(mean, abs=0.5)
        assert dataset.cpu.std() == pytest.approx(std, abs=0.5)

    def test_environments_differ_by_sut(self):
        datasets = load_all_kdn()
        suts = {d.environment.sut for d in datasets.values()}
        assert len(suts) == 3
        testbeds = {d.environment.testbed for d in datasets.values()}
        assert len(testbeds) == 1

    def test_deterministic_given_seed(self):
        a = load_kdn("snort", seed=3)
        b = load_kdn("snort", seed=3)
        np.testing.assert_allclose(a.features, b.features)
        np.testing.assert_allclose(a.cpu, b.cpu)

    def test_seed_changes_data(self):
        a = load_kdn("snort", seed=1)
        b = load_kdn("snort", seed=2)
        assert not np.allclose(a.cpu, b.cpu)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            load_kdn("router")

    def test_features_finite_and_nonnegative_counts(self):
        dataset = load_kdn("firewall")
        assert np.isfinite(dataset.features).all()
        packets = dataset.features[:, dataset.feature_names.index("packets_total")]
        assert (packets > 0).all()


class TestKDNLearnability:
    """The generated data must preserve the paper's qualitative regimes."""

    def test_cpu_predictable_from_features(self):
        # A ridge model must beat the mean predictor by a wide margin
        # (otherwise Table 4's comparisons would be meaningless).
        dataset = load_kdn("snort")
        train, _, test = dataset.split()
        model = Ridge(alpha=1.0).fit(dataset.features[train], dataset.cpu[train])
        predictions = model.predict(dataset.features[test])
        mse = np.mean((predictions - dataset.cpu[test]) ** 2)
        assert mse < dataset.cpu[test].var() * 0.7

    def test_switch_history_helps_linear_model(self):
        # Table 4: Ridge_ts wins on Switch thanks to the AR component.
        dataset = load_kdn("switch")
        X, history, y = build_windows(dataset.features, dataset.cpu, n_lags=1)
        n_train = 800
        plain = Ridge(alpha=1.0).fit(X[:n_train], y[:n_train])
        with_ts = RidgeTS(alpha=1.0, n_lags=1).fit(
            X[:n_train], y[:n_train], history=history[:n_train]
        )
        mae_plain = np.abs(plain.predict(X[n_train:]) - y[n_train:]).mean()
        mae_ts = np.abs(with_ts.predict(X[n_train:], history=history[n_train:]) - y[n_train:]).mean()
        assert mae_ts < mae_plain

    def test_vnf_responses_differ(self):
        # Fitting Snort's model on Firewall data must be much worse than
        # Firewall's own model: the per-VNF response shapes differ, which is
        # what makes pooling without embeddings (RFNN_all) lossy.
        snort = load_kdn("snort")
        firewall = load_kdn("firewall")
        model_snort = Ridge(alpha=1.0).fit(snort.features, snort.cpu)
        model_fw = Ridge(alpha=1.0).fit(firewall.features, firewall.cpu)
        own = np.mean((model_fw.predict(firewall.features) - firewall.cpu) ** 2)
        cross = np.mean((model_snort.predict(firewall.features) - firewall.cpu) ** 2)
        assert cross > own * 2
