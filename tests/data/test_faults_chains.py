"""Fault injection and build-chain structure tests."""

import numpy as np
import pytest

from repro.data import BuildChain, Environment, InjectedFault, apply_fault, inject_faults
from repro.data import TestExecution as Execution

RNG = np.random.default_rng(17)


def _env(build="Build_S01"):
    return Environment("Testbed_01", "SUT_A", "Testcase_Load", build)


def _execution(build="Build_S01", n=50, faults=()):
    return Execution(
        environment=_env(build),
        features=RNG.standard_normal((n, 3)),
        cpu=np.full(n, 50.0),
        faults=list(faults),
    )


class TestInjectedFault:
    def test_interval(self):
        fault = InjectedFault("level_shift", start=10, length=5, magnitude=12.0)
        assert fault.interval() == (10, 15)
        assert fault.overlaps(10) and fault.overlaps(14)
        assert not fault.overlaps(15)

    def test_validation(self):
        with pytest.raises(ValueError):
            InjectedFault("meteor", 0, 5, 1.0)
        with pytest.raises(ValueError):
            InjectedFault("spike", -1, 5, 1.0)
        with pytest.raises(ValueError):
            InjectedFault("spike", 0, 0, 1.0)
        with pytest.raises(ValueError):
            InjectedFault("spike", 0, 5, 0.0)


class TestApplyFault:
    def test_level_shift(self):
        cpu = np.full(30, 40.0)
        fault = InjectedFault("level_shift", 10, 5, 15.0)
        out = apply_fault(cpu, fault, RNG)
        np.testing.assert_allclose(out[10:15], 55.0)
        np.testing.assert_allclose(out[:10], 40.0)
        np.testing.assert_allclose(out[15:], 40.0)

    def test_spike_peaks_mid_interval(self):
        cpu = np.full(30, 40.0)
        fault = InjectedFault("spike", 10, 9, 20.0)
        out = apply_fault(cpu, fault, RNG)
        assert out[14] == pytest.approx(60.0)
        assert out[10] < out[14]

    def test_drift_ramps_up(self):
        cpu = np.full(30, 40.0)
        fault = InjectedFault("drift", 5, 10, 10.0)
        out = apply_fault(cpu, fault, RNG)
        deltas = out[5:15] - 40.0
        assert deltas[0] == pytest.approx(0.0)
        assert deltas[-1] == pytest.approx(10.0)
        assert (np.diff(deltas) >= 0).all()

    def test_noise_burst_changes_interval_only(self):
        cpu = np.full(60, 40.0)
        fault = InjectedFault("noise_burst", 20, 10, 8.0)
        out = apply_fault(cpu, fault, np.random.default_rng(0))
        np.testing.assert_allclose(out[:20], 40.0)
        assert out[20:30].std() > 1.0

    def test_harmless_fault_is_identity(self):
        cpu = np.full(30, 40.0)
        fault = InjectedFault("level_shift", 5, 5, 20.0, impactful=False)
        np.testing.assert_allclose(apply_fault(cpu, fault, RNG), cpu)

    def test_does_not_mutate_input(self):
        cpu = np.full(30, 40.0)
        apply_fault(cpu, InjectedFault("level_shift", 0, 5, 10.0), RNG)
        np.testing.assert_allclose(cpu, 40.0)

    def test_clipped_to_valid_cpu_range(self):
        cpu = np.full(30, 90.0)
        out = apply_fault(cpu, InjectedFault("level_shift", 0, 30, 25.0), RNG)
        assert out.max() <= 100.0

    def test_out_of_bounds_interval_rejected(self):
        with pytest.raises(ValueError):
            apply_fault(np.zeros(10), InjectedFault("spike", 8, 5, 1.0), RNG)


class TestInjectFaults:
    def test_counts_and_flags(self):
        cpu = np.full(200, 50.0)
        out, faults = inject_faults(cpu, np.random.default_rng(0), n_impactful=3, n_harmless=2)
        assert sum(f.impactful for f in faults) == 3
        assert sum(not f.impactful for f in faults) == 2
        assert not np.allclose(out, cpu)

    def test_series_too_short_rejected(self):
        with pytest.raises(ValueError):
            inject_faults(np.zeros(10), RNG, 1, 0)

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            inject_faults(np.zeros(100), RNG, 1, 0, min_length=0)
        with pytest.raises(ValueError):
            inject_faults(np.zeros(100), RNG, 1, 0, min_length=10, max_length=5)


class TestTestExecution:
    def test_validation(self):
        with pytest.raises(ValueError):
            Execution(_env(), np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            Execution(_env(), np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            Execution(_env(), np.zeros((5, 2)), np.zeros((5, 1)))

    def test_anomaly_mask_from_impactful_faults(self):
        execution = _execution(
            faults=[
                InjectedFault("level_shift", 5, 5, 10.0),
                InjectedFault("spike", 20, 3, 10.0, impactful=False),
            ]
        )
        mask = execution.anomaly_mask()
        assert mask[5:10].all()
        assert not mask[20:23].any()
        assert execution.has_performance_problem
        assert len(execution.impactful_faults) == 1

    def test_no_faults_no_problem(self):
        execution = _execution()
        assert not execution.has_performance_problem
        assert not execution.anomaly_mask().any()


class TestBuildChain:
    def test_current_and_history(self):
        chain = BuildChain([_execution("Build_S01"), _execution("Build_S02"), _execution("Build_S03")])
        assert chain.current.environment.build == "Build_S03"
        assert [e.environment.build for e in chain.history] == ["Build_S01", "Build_S02"]
        assert chain.builds == ["Build_S01", "Build_S02", "Build_S03"]
        assert len(chain) == 3

    def test_key(self):
        chain = BuildChain([_execution()])
        assert chain.key == ("Testbed_01", "SUT_A", "Testcase_Load")

    def test_mixed_chain_keys_rejected(self):
        other = Execution(
            Environment("Testbed_02", "SUT_A", "Testcase_Load", "Build_S02"),
            np.zeros((5, 3)),
            np.zeros(5),
        )
        with pytest.raises(ValueError, match="different chains"):
            BuildChain([_execution(), other])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            BuildChain([])

    def test_total_timesteps_and_history_series(self):
        chain = BuildChain([_execution(n=30), _execution("Build_S02", n=40)])
        assert chain.total_timesteps() == 70
        series = chain.history_series()
        assert len(series) == 1
        assert series[0][1].shape == (30,)


class TestFaultEdgeCases:
    """Boundary and composition cases mirroring the paper's overlapping
    test scenarios ("often overlapping in time")."""

    def test_overlapping_impactful_faults_compose_additively(self):
        cpu = np.full(40, 30.0)
        first = InjectedFault("level_shift", 5, 20, 10.0)
        second = InjectedFault("level_shift", 15, 20, 5.0)
        out = apply_fault(apply_fault(cpu, first, RNG), second, RNG)
        np.testing.assert_allclose(out[5:15], 40.0)   # first only
        np.testing.assert_allclose(out[15:25], 45.0)  # overlap: both shifts
        np.testing.assert_allclose(out[25:35], 35.0)  # second only
        np.testing.assert_allclose(out[35:], 30.0)

    def test_overlapping_faults_union_in_anomaly_mask(self):
        execution = _execution(
            n=40,
            faults=[
                InjectedFault("level_shift", 5, 10, 10.0),
                InjectedFault("spike", 12, 10, 10.0),
            ],
        )
        mask = execution.anomaly_mask()
        assert mask[5:22].all()  # contiguous union of [5,15) and [12,22)
        assert not mask[:5].any() and not mask[22:].any()

    def test_fault_ending_exactly_at_series_boundary_is_valid(self):
        cpu = np.full(30, 40.0)
        out = apply_fault(cpu, InjectedFault("level_shift", 25, 5, 10.0), RNG)
        np.testing.assert_allclose(out[25:], 50.0)

    def test_fault_past_the_boundary_rejected_but_mask_clips(self):
        # apply_fault refuses to write outside the series...
        with pytest.raises(ValueError, match="exceeds series length"):
            apply_fault(np.zeros(30), InjectedFault("drift", 25, 10, 5.0), RNG)
        # ...while ground-truth labelling clips an over-long record instead
        # of crashing (executions can be truncated after fault injection).
        execution = _execution(n=30, faults=[InjectedFault("drift", 25, 10, 5.0)])
        mask = execution.anomaly_mask()
        assert len(mask) == 30
        assert mask[25:].all() and not mask[:25].any()

    def test_non_impactful_faults_never_perturb_any_kind(self):
        cpu = np.linspace(10.0, 90.0, 50)
        for kind in ("level_shift", "spike", "drift", "noise_burst"):
            fault = InjectedFault(kind, 10, 20, 25.0, impactful=False)
            np.testing.assert_array_equal(
                apply_fault(cpu, fault, np.random.default_rng(1)), cpu
            )

    def test_non_impactful_faults_are_not_ground_truth(self):
        execution = _execution(
            n=50, faults=[InjectedFault("spike", 5, 10, 20.0, impactful=False)]
        )
        assert not execution.has_performance_problem
        assert not execution.anomaly_mask().any()
        assert execution.impactful_faults == []
