"""Incremental-scan cache: replay, invalidation, and CLI wiring."""

import json
import textwrap

from repro.analysis import Analyzer, AnalysisCache, default_registry
from repro.analysis.cache import CACHE_FORMAT_VERSION
from repro.analysis.cli import main as analysis_main
from repro.analysis.rules import RULESET_VERSION
from repro.analysis.summaries import summarize_module
import ast

DIRTY = textwrap.dedent(
    """
    import numpy as np

    def build():
        return np.random.default_rng()
    """
)

CROSS_POSITIVE = {
    "proj/store.py": textwrap.dedent(
        """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}

            def put(self, key, value):
                with self._lock:
                    self._items[key] = value

            def snapshot(self):
                return dict(self._items)
        """
    ),
}


def write_tree(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)


def scan(tmp_path, cache=None):
    analyzer = Analyzer(default_registry())
    return analyzer.analyze_paths([tmp_path / "proj"], root=tmp_path, cache=cache)


def test_warm_scan_replays_every_file_and_preserves_findings(tmp_path):
    write_tree(tmp_path, CROSS_POSITIVE)
    cache = AnalysisCache(tmp_path / ".cache", ruleset_version=RULESET_VERSION)

    cold = scan(tmp_path, cache)
    assert cold.n_cache_hits == 0
    warm = scan(tmp_path, cache)
    assert warm.n_cache_hits == warm.n_files == 1

    # cross-file findings are re-linked from cached summaries, not lost
    def key(result):
        return [(f.rule, f.path, f.line, f.message, f.related) for f in result.findings]

    assert key(warm) == key(cold)
    assert any(f.rule == "REP013" for f in warm.findings)


def test_edited_file_misses_while_untouched_files_hit(tmp_path):
    write_tree(tmp_path, CROSS_POSITIVE)
    (tmp_path / "proj" / "other.py").write_text("X = 1\n")
    cache = AnalysisCache(tmp_path / ".cache", ruleset_version=RULESET_VERSION)
    scan(tmp_path, cache)

    (tmp_path / "proj" / "other.py").write_text("X = 2\n")
    warm = scan(tmp_path, cache)
    assert warm.n_files == 2
    assert warm.n_cache_hits == 1  # store.py replayed, other.py re-scanned


def test_ruleset_version_bump_invalidates_everything(tmp_path):
    write_tree(tmp_path, CROSS_POSITIVE)
    cache = AnalysisCache(tmp_path / ".cache", ruleset_version=RULESET_VERSION)
    scan(tmp_path, cache)

    bumped = AnalysisCache(tmp_path / ".cache", ruleset_version=RULESET_VERSION + 1)
    warm = scan(tmp_path, bumped)
    assert warm.n_cache_hits == 0


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path):
    write_tree(tmp_path, CROSS_POSITIVE)
    cache = AnalysisCache(tmp_path / ".cache", ruleset_version=RULESET_VERSION)
    scan(tmp_path, cache)
    for entry in (tmp_path / ".cache").glob("*.json"):
        entry.write_text("{not json")
    warm = scan(tmp_path, cache)
    assert warm.n_cache_hits == 0
    assert any(f.rule == "REP013" for f in warm.findings)


def test_cache_format_version_is_embedded(tmp_path):
    write_tree(tmp_path, CROSS_POSITIVE)
    cache = AnalysisCache(tmp_path / ".cache", ruleset_version=RULESET_VERSION)
    scan(tmp_path, cache)
    (entry,) = list((tmp_path / ".cache").glob("*.json"))
    payload = json.loads(entry.read_text())
    assert payload["cache_version"] == CACHE_FORMAT_VERSION
    assert payload["ruleset_version"] == RULESET_VERSION
    assert payload["path"].endswith("store.py")


def test_cli_no_cache_skips_cache_dir(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "src" / "repro" / "nn"
    target.mkdir(parents=True)
    (target / "mod.py").write_text(DIRTY)

    assert analysis_main(["src", "--baseline", "none", "--no-cache"]) == 1
    assert not (tmp_path / ".repro_analysis_cache").exists()

    assert analysis_main(["src", "--baseline", "none"]) == 1
    assert (tmp_path / ".repro_analysis_cache").exists()
    capsys.readouterr()


def test_cli_warm_scan_reports_cache_hits(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "src" / "repro" / "nn"
    target.mkdir(parents=True)
    (target / "mod.py").write_text(DIRTY)

    analysis_main(["src", "--baseline", "none", "--format", "json"])
    capsys.readouterr()
    analysis_main(["src", "--baseline", "none", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["cache_hits"] == 1


def test_module_summary_round_trips_through_json(tmp_path):
    source = CROSS_POSITIVE["proj/store.py"] + textwrap.dedent(
        """
        from multiprocessing import Process

        GLOBAL_STORE = None

        def start(seed, store):
            def worker():
                return store.get("m")
            proc = Process(target=worker)
            with GLOBAL_LOCK:
                proc.start()
        """
    )
    summary = summarize_module(ast.parse(source), "proj/store.py")
    data = json.loads(json.dumps(summary.to_dict()))
    assert type(summary).from_dict(data) == summary
