"""Per-rule positive/negative snippets for the REP001-REP012 catalog.

Each rule gets at least one snippet it must flag and one it must not.
Snippets are scanned under fake repo-relative paths so the package/test
scoping (`applies`) is exercised exactly as it is in a real scan.
"""

import textwrap

from repro.analysis import Analyzer, default_registry

WORKFLOW = "src/repro/workflow/mod.py"
RESILIENCE = "src/repro/resilience/mod.py"
NN = "src/repro/nn/mod.py"
TESTS = "tests/test_mod.py"


def scan(source: str, path: str = WORKFLOW):
    analyzer = Analyzer(default_registry())
    return analyzer.analyze_source(textwrap.dedent(source), path)


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


# -- REP001: unseeded RNG ---------------------------------------------------

def test_rep001_flags_unseeded_default_rng():
    findings = scan(
        """
        import numpy as np

        def build():
            return np.random.default_rng()
        """,
        path=NN,
    )
    assert rules_of(findings) == {"REP001"}


def test_rep001_flags_default_rng_none_and_randomstate():
    findings = scan(
        """
        import numpy as np

        def build():
            a = np.random.default_rng(None)
            b = np.random.RandomState()
            return a, b
        """,
        path=NN,
    )
    assert [f.rule for f in findings] == ["REP001", "REP001"]


def test_rep001_flags_legacy_global_state_api():
    findings = scan(
        """
        import numpy as np

        def noise(n):
            np.random.seed(0)
            return np.random.normal(size=n)
        """,
        path=NN,
    )
    assert [f.rule for f in findings] == ["REP001", "REP001"]


def test_rep001_allows_seeded_construction():
    findings = scan(
        """
        import numpy as np

        def build(seed):
            a = np.random.default_rng(seed)
            b = np.random.default_rng(7)
            c = np.random.RandomState(seed)
            return a, b, c
        """,
        path=NN,
    )
    assert findings == []


def test_rep001_exempt_in_tests():
    findings = scan(
        """
        import numpy as np

        def helper():
            return np.random.default_rng()
        """,
        path=TESTS,
    )
    assert findings == []


# -- REP002: wall-clock reads ----------------------------------------------

def test_rep002_flags_wall_clock_in_sim_clock_package():
    findings = scan(
        """
        import time

        def stamp():
            return time.time(), time.perf_counter()
        """,
        path=WORKFLOW,
    )
    assert [f.rule for f in findings] == ["REP002", "REP002"]


def test_rep002_flags_datetime_now():
    findings = scan(
        """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """,
        path=RESILIENCE,
    )
    assert rules_of(findings) == {"REP002"}


def test_rep002_ignores_non_sim_clock_packages():
    source = """
        import time

        def stamp():
            return time.time()
        """
    assert scan(source, path=NN) == []
    assert scan(source, path="benchmarks/bench_mod.py") == []
    assert scan(source, path="tests/workflow/test_mod.py") == []


def test_rep002_ignores_simulated_clock_calls():
    findings = scan(
        """
        def stamp(clock):
            return clock.now()
        """,
        path=WORKFLOW,
    )
    assert findings == []


# -- REP003: unlocked shared-state augmented assignment ---------------------

def test_rep003_flags_unlocked_module_global_augassign():
    findings = scan(
        """
        COUNTER = 0

        def bump():
            global COUNTER
            COUNTER += 1
        """,
        path=WORKFLOW,
    )
    assert rules_of(findings) == {"REP003"}


def test_rep003_flags_container_reached_through_module_global():
    findings = scan(
        """
        TOTALS = {}

        def bump(key):
            TOTALS[key] += 1
        """,
        path=WORKFLOW,
    )
    assert rules_of(findings) == {"REP003"}


def test_rep003_allows_lock_protected_and_local_state():
    findings = scan(
        """
        import threading

        _LOCK = threading.Lock()
        COUNTER = 0

        def bump():
            global COUNTER
            with _LOCK:
                COUNTER += 1

        def local_only():
            count = 0
            count += 1
            return count

        class Leaf:
            def inc(self):
                self._value += 1
        """,
        path=WORKFLOW,
    )
    assert findings == []


def test_rep003_ignores_module_level_augassign():
    # module bodies execute once, single-threaded, at import
    findings = scan(
        """
        TOTAL = 0
        TOTAL += 1
        """,
        path=WORKFLOW,
    )
    assert findings == []


# -- REP004: aliased cache returns ------------------------------------------

def test_rep004_flags_getter_returning_instance_attribute():
    findings = scan(
        """
        import numpy as np

        class RowCache:
            def get_rows(self):
                return self._rows

            def lookup(self, key):
                return self._cache[key]
        """,
        path=NN,
    )
    assert [f.rule for f in findings] == ["REP004", "REP004"]


def test_rep004_allows_copies_and_non_getters():
    findings = scan(
        """
        import numpy as np

        class RowCache:
            def get_rows(self):
                return self._rows.copy()

            def insert(self, key):
                return self._cache[key]
        """,
        path=NN,
    )
    assert findings == []


def test_rep004_out_of_scope_without_numpy():
    # dict-returning getters in numpy-free modules are not aliasing bugs
    findings = scan(
        """
        class Registry:
            def get_all(self):
                return self._records
        """,
        path=WORKFLOW,
    )
    assert findings == []


# -- REP005: bare lock.acquire() --------------------------------------------

def test_rep005_flags_bare_acquire():
    findings = scan(
        """
        def critical(lock):
            lock.acquire()
            try:
                pass
            finally:
                lock.release()
        """,
        path=NN,
    )
    assert rules_of(findings) == {"REP005"}


def test_rep005_allows_with_statement():
    findings = scan(
        """
        def critical(lock):
            with lock:
                pass
        """,
        path=NN,
    )
    assert findings == []


# -- REP006: float equality --------------------------------------------------

def test_rep006_flags_float_literal_equality():
    findings = scan(
        """
        def check(x, a, b):
            return x == 0.5 or a != b / 2
        """,
        path=NN,
    )
    assert [f.rule for f in findings] == ["REP006", "REP006"]


def test_rep006_flags_float_cast_equality():
    findings = scan(
        """
        def check(x, y):
            return x == float(y)
        """,
        path=NN,
    )
    assert rules_of(findings) == {"REP006"}


def test_rep006_allows_sentinels_and_ordering():
    findings = scan(
        """
        def check(x, y):
            if x == 0.0 or y == float("inf"):
                return True
            return x < 0.5 and y <= 1.5
        """,
        path=NN,
    )
    assert findings == []


# -- REP007: swallowed broad exceptions --------------------------------------

def test_rep007_flags_silent_broad_handler():
    findings = scan(
        """
        def guard(step):
            try:
                step()
            except Exception:
                pass
        """,
        path=RESILIENCE,
    )
    assert rules_of(findings) == {"REP007"}


def test_rep007_flags_bare_except():
    findings = scan(
        """
        def guard(step):
            try:
                step()
            except:
                return None
        """,
        path=RESILIENCE,
    )
    assert rules_of(findings) == {"REP007"}


def test_rep007_allows_reraise_log_or_count():
    findings = scan(
        """
        def guard(step, failures, log):
            try:
                step()
            except Exception:
                failures.inc()
            try:
                step()
            except Exception as error:
                log.warning("step failed: %s", error)
            try:
                step()
            except Exception:
                raise
            try:
                step()
            except ValueError:
                pass
        """,
        path=RESILIENCE,
    )
    assert findings == []


def test_rep007_out_of_scope_outside_resilience_ladder():
    findings = scan(
        """
        def guard(step):
            try:
                step()
            except Exception:
                pass
        """,
        path=NN,
    )
    assert findings == []


# -- REP008: snapshot mutation ------------------------------------------------

def test_rep008_flags_write_through_snapshot_binding():
    findings = scan(
        """
        from repro.parallel import snapshot_shards

        def corrupt(db):
            shards = snapshot_shards(db, 4)
            shards.names[0] = "oops"
        """,
        path="src/repro/parallel/mod.py",
    )
    assert rules_of(findings) == {"REP008"}


def test_rep008_propagates_through_for_loop_and_shard_for():
    findings = scan(
        """
        from repro.parallel import snapshot_shards

        def corrupt(db, key):
            snap = snapshot_shards(db, 4)
            for shard in snap.shards:
                shard.hits += 1
            mine = snap.shard_for(key)
            mine.series["x"] = []
        """,
        path="src/repro/parallel/mod.py",
    )
    assert [f.rule for f in findings] == ["REP008", "REP008"]


def test_rep008_allows_reads_and_unrelated_writes():
    findings = scan(
        """
        from repro.parallel import snapshot_shards

        def inspect(db, out):
            shards = snapshot_shards(db, 4)
            out.total = len(shards.shards)
            return shards.shard_for("x")
        """,
        path="src/repro/parallel/mod.py",
    )
    assert findings == []


# -- REP009: sequence-layer import boundary ---------------------------------

def test_rep009_flags_layer_class_imports_outside_nn():
    findings = scan(
        """
        from ..nn.gru import GRU
        from ..nn.lstm import LSTM
        from ..nn.attention import AdditiveAttention
        """,
        path="src/repro/core/mod.py",
    )
    assert [f.rule for f in findings] == ["REP009", "REP009", "REP009"]


def test_rep009_flags_names_via_package_import():
    findings = scan(
        """
        from repro.nn import GRUCell, LSTMCell
        """,
        path="src/repro/eval/mod.py",
    )
    assert [f.rule for f in findings] == ["REP009", "REP009"]


def test_rep009_flags_module_import():
    findings = scan(
        """
        import repro.nn.gru
        """,
        path="src/repro/core/mod.py",
    )
    assert rules_of(findings) == {"REP009"}


def test_rep009_allows_registry_entry_points():
    findings = scan(
        """
        from ..nn.encoders import create_encoder, resolve_encoder_name
        from ..nn.inference import compile_plan
        from ..nn.layers import Dense, Dropout
        """,
        path="src/repro/core/mod.py",
    )
    assert findings == []


def test_rep009_silent_inside_nn_tests_and_benchmarks():
    source = """
        from .gru import GRU
        from .attention import AdditiveAttention
        """
    assert scan(source, path=NN) == []
    source = """
        from repro.nn import GRU, AdditiveAttention
        """
    assert scan(source, path=TESTS) == []
    assert scan(source, path="benchmarks/bench_mod.py") == []


# -- REP010: serve._internal import boundary --------------------------------

def test_rep010_flags_internal_imports_outside_serve():
    findings = scan(
        """
        from repro.serve._internal.admission import AdmissionController
        from ..serve._internal.warm_pool import WarmModelPool
        import repro.serve._internal.batcher
        """,
        path=WORKFLOW,
    )
    assert [f.rule for f in findings] == ["REP010", "REP010", "REP010"]


def test_rep010_allows_public_serve_surface():
    findings = scan(
        """
        from repro.serve import Env2VecService, ServeClient
        from ..serve import PredictRequest
        import repro.serve
        """,
        path=WORKFLOW,
    )
    assert findings == []


def test_rep010_silent_inside_serve_tests_and_benchmarks():
    source = """
        from ._internal.admission import AdmissionController
        from repro.serve._internal.batcher import MicroBatcher
        """
    assert scan(source, path="src/repro/serve/mod.py") == []
    assert scan(source, path=TESTS) == []
    assert scan(source, path="benchmarks/bench_mod.py") == []


# -- REP011: process-management boundary -------------------------------------

def test_rep011_flags_process_calls_outside_supervisor():
    findings = scan(
        """
        import os, signal, multiprocessing

        def reap(pid):
            os.kill(pid, 9)
            signal.signal(signal.SIGTERM, lambda *a: None)
            multiprocessing.Process(target=print).start()
        """,
        path=WORKFLOW,
    )
    assert [f.rule for f in findings] == ["REP011", "REP011", "REP011"]


def test_rep011_flags_multiprocessing_primitive_imports():
    findings = scan(
        """
        from multiprocessing import Process, Pipe
        from multiprocessing.connection import Pipe
        """,
        path="src/repro/serve/service.py",
    )
    assert [f.rule for f in findings] == ["REP011", "REP011", "REP011"]


def test_rep011_allows_benign_os_and_signal_use():
    findings = scan(
        """
        import os
        from multiprocessing import cpu_count

        def where():
            return os.getpid(), os.path.join("a", "b"), cpu_count()
        """,
        path=WORKFLOW,
    )
    assert findings == []


def test_rep011_silent_in_supervisor_tests_and_benchmarks():
    source = """
        import multiprocessing
        import os

        def spawn(ctx):
            process = multiprocessing.Process(target=print)
            os.kill(process.pid, 9)
        """
    assert scan(source, path="src/repro/serve/_internal/supervisor.py") == []
    assert scan(source, path=TESTS) == []
    assert scan(source, path="benchmarks/bench_mod.py") == []


# -- REP012: sequence-runner hot-loop allocations -----------------------------

OPS = "src/repro/nn/ops.py"


def test_rep012_flags_allocating_ops_in_runner_loop():
    findings = scan(
        """
        import numpy as np

        def gru_sequence(xw, u, fused):
            h = xw[0]
            for t in range(xw.shape[0]):
                zr = np.hstack([h, h])
                hu = h @ u
                h = np.matmul(zr, fused)
            return h
        """,
        path=OPS,
    )
    assert [f.rule for f in findings] == ["REP012", "REP012", "REP012"]


def test_rep012_flags_lowp_runner_and_while_loops():
    findings = scan(
        """
        import numpy as np

        def _lstm_sequence_lowp(xw, u):
            t, h = 0, xw[0]
            while t < xw.shape[0]:
                scratch = np.zeros_like(h)
                t += 1
            return h
        """,
        path=OPS,
    )
    assert [f.rule for f in findings] == ["REP012"]


def test_rep012_allows_out_matmul_and_hoisted_buffers():
    findings = scan(
        """
        import numpy as np

        def gru_sequence(xw, u, fused):
            hu = np.empty_like(xw[0])
            h = xw[0].copy()
            for t in range(xw.shape[0]):
                np.matmul(h, u, hu)
                np.matmul(h, u, out=hu)
                np.add(hu, xw[t], out=h)
            return h
        """,
        path=OPS,
    )
    assert findings == []


def test_rep012_silent_outside_runner_loops_and_ops_py():
    outside_loop = """
        import numpy as np

        def gru_sequence(xw, u):
            flat = np.hstack([xw[0], xw[1]])
            return flat @ u
        """
    other_function = """
        import numpy as np

        def projection(xw, u):
            for t in range(xw.shape[0]):
                xw[t] = np.matmul(xw[t], u)
            return xw
        """
    assert scan(outside_loop, path=OPS) == []
    assert scan(other_function, path=OPS) == []
    # the same hot-loop pattern elsewhere is other rules' business
    in_loop = """
        import numpy as np

        def gru_sequence(xw, u):
            for t in range(xw.shape[0]):
                xw[t] = xw[t] @ u
            return xw
        """
    assert scan(in_loop, path=NN) == []
