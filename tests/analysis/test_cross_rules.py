"""Cross-file rules REP013-REP016: positive/negative fixture pairs.

Each fixture is a real tree of files on disk (phase 2 only runs in
``analyze_paths``), scanned with the baseline disabled so assertions see
raw findings. The deadlock fixture spans three modules and the
process-escape fixture mimics the supervisor's dispatch shape
(``Process(target=...)`` with a closure over parent-side state).
"""

import textwrap

from repro.analysis import Analyzer, default_registry


def scan_tree(tmp_path, files: dict[str, str]):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    result = Analyzer(default_registry()).analyze_paths([tmp_path], root=tmp_path)
    assert result.parse_errors == []
    return result


def by_rule(result, rule):
    return [f for f in result.findings if f.rule == rule]


# -- REP013: lock-discipline inference ---------------------------------------

GUARDED_WRITER = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._lock:
                self._items[key] = value
"""


def test_rep013_flags_bare_read_in_same_class(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/store.py": GUARDED_WRITER + """

        def snapshot(self):
            return dict(self._items)
        """,
    })
    findings = by_rule(result, "REP013")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "proj/store.py"
    assert "_items" in finding.message
    assert "_lock" in finding.message
    # the guarded-write site rides along as a related anchor
    assert finding.related and finding.related[0][0] == "proj/store.py"


def test_rep013_flags_bare_access_in_subclass_across_files(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/store.py": GUARDED_WRITER,
        "proj/fancy.py": """
        from proj.store import Store

        class FancyStore(Store):
            def peek(self, key):
                return self._items.get(key)
        """,
    })
    findings = by_rule(result, "REP013")
    assert len(findings) == 1
    assert findings[0].path == "proj/fancy.py"
    assert "_items" in findings[0].message


def test_rep013_negative_all_accesses_locked(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/store.py": GUARDED_WRITER + """

        def snapshot(self):
            with self._lock:
                return dict(self._items)
        """,
    })
    assert by_rule(result, "REP013") == []


def test_rep013_init_and_lock_attrs_are_exempt(tmp_path):
    # __init__ construction and the lock attribute itself never count as
    # bare accesses, and noqa on the flagged line suppresses cleanly.
    result = scan_tree(tmp_path, {
        "proj/store.py": GUARDED_WRITER + """

        def snapshot(self):
            return dict(self._items)  # repro: noqa[REP013]
        """,
    })
    assert by_rule(result, "REP013") == []
    assert by_rule(result, "REP000") == []  # the pragma was used, not dead


def test_rep013_unused_cross_rule_pragma_is_reported(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/clean.py": """
        def fine():
            return 1  # repro: noqa[REP013]
        """,
    })
    (finding,) = by_rule(result, "REP000")
    assert "REP013" in finding.message


# -- REP014: lock-ordering cycles --------------------------------------------

CYCLE_FILES = {
    "proj/a.py": """
    import threading
    from proj import b

    LOCK_A = threading.Lock()

    def fa():
        with LOCK_A:
            with b.LOCK_B:
                return 1
    """,
    "proj/b.py": """
    import threading
    from proj import c

    LOCK_B = threading.Lock()

    def fb():
        with LOCK_B:
            with c.LOCK_C:
                return 1
    """,
    "proj/c.py": """
    import threading
    from proj import a

    LOCK_C = threading.Lock()

    def fc():
        with LOCK_C:
            with a.LOCK_A:
                return 1
    """,
}


def test_rep014_detects_three_module_cycle_with_anchors_on_every_edge(tmp_path):
    result = scan_tree(tmp_path, CYCLE_FILES)
    findings = by_rule(result, "REP014")
    assert findings, "cycle across proj/a.py, proj/b.py, proj/c.py not detected"
    cycles = [f for f in findings if "cycle" in f.message]
    assert cycles
    finding = cycles[0]
    for lock in ("proj.a.LOCK_A", "proj.b.LOCK_B", "proj.c.LOCK_C"):
        assert lock in finding.message
    # every edge of the cycle is anchored: the finding's own location
    # plus related anchors must cover all three files with real lines
    anchored = {(finding.path, finding.line)} | {
        (path, line) for path, line, _ in finding.related
    }
    anchored_files = {path for path, _ in anchored}
    assert anchored_files == {"proj/a.py", "proj/b.py", "proj/c.py"}
    assert all(line > 0 for _, line in anchored)


def test_rep014_cycle_through_calls_made_under_a_lock(tmp_path):
    # the interprocedural half: fa holds LOCK_A while *calling* into b,
    # whose callee chain transitively acquires LOCK_A again
    result = scan_tree(tmp_path, {
        "proj/a.py": """
        import threading
        from proj import b

        LOCK_A = threading.Lock()

        def fa():
            with LOCK_A:
                b.fb()

        def fa2():
            with LOCK_A:
                return 1
        """,
        "proj/b.py": """
        import threading
        from proj import a

        LOCK_B = threading.Lock()

        def fb():
            with LOCK_B:
                a.fa2()
        """,
    })
    cycles = [f for f in by_rule(result, "REP014") if "cycle" in f.message]
    assert cycles
    finding = cycles[0]
    assert "proj.a.LOCK_A" in finding.message
    assert "proj.b.LOCK_B" in finding.message
    # call-site and callee-acquire anchors both present
    notes = " | ".join(note for _, _, note in finding.related)
    assert "called in" in notes or "called in" in finding.message or finding.related


def test_rep014_negative_consistent_lock_order(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/a.py": """
        import threading
        from proj import b

        LOCK_A = threading.Lock()

        def fa():
            with LOCK_A:
                b.fb()
        """,
        "proj/b.py": """
        import threading

        LOCK_B = threading.Lock()

        def fb():
            with LOCK_B:
                return 1
        """,
    })
    assert by_rule(result, "REP014") == []


def test_rep014_self_deadlock_through_self_call(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/cache.py": """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def get_or_build(self, key):
                with self._lock:
                    return self.build(key)

            def build(self, key):
                with self._lock:
                    self._data[key] = key
                    return key
        """,
    })
    findings = [f for f in by_rule(result, "REP014") if "re-acquired" in f.message]
    assert len(findings) == 1
    assert "_lock" in findings[0].message
    assert findings[0].related  # the inner acquire site is anchored


def test_rep014_negative_rlock_reentry_is_legal(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/cache.py": """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.RLock()
                self._data = {}

            def get_or_build(self, key):
                with self._lock:
                    return self.build(key)

            def build(self, key):
                with self._lock:
                    self._data[key] = key
                    return key
        """,
    })
    assert [f for f in by_rule(result, "REP014") if "re-acquired" in f.message] == []


# -- REP015: process-escape checking -----------------------------------------

STORES = """
    class ModelStore:
        def __init__(self):
            self._blobs = {}

        def get(self, name):
            return self._blobs[name]
"""


def test_rep015_supervisor_shaped_closure_capturing_store(tmp_path):
    # the exact shape REP015 exists for: a Process worker whose closure
    # reaches a parent-side store through the dispatching function
    result = scan_tree(tmp_path, {
        "proj/stores.py": STORES,
        "proj/boss.py": """
        from multiprocessing import Process
        from proj.stores import ModelStore

        def start():
            store = ModelStore()

            def worker():
                return store.get("model")

            proc = Process(target=worker)
            proc.start()
            return proc
        """,
    })
    findings = by_rule(result, "REP015")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "proj/boss.py"
    assert "ModelStore" in finding.message
    # the escape path is anchored hop by hop down to the offending read
    assert finding.related
    assert any("store" in note for _, _, note in finding.related)
    assert all(line > 0 for _, line, _ in finding.related)


def test_rep015_resource_parameter_captured_by_worker(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/boss.py": """
        from multiprocessing import Process

        def start(store):
            def worker():
                return store.get("model")

            proc = Process(target=worker)
            proc.start()
        """,
    })
    findings = by_rule(result, "REP015")
    assert len(findings) == 1
    assert "resource parameter 'store'" in findings[0].message


def test_rep015_negative_worker_receives_values_only(tmp_path):
    # the supervisor pattern done right: a module-level worker fed blobs
    # by value, resources rebuilt child-side
    result = scan_tree(tmp_path, {
        "proj/boss.py": """
        from multiprocessing import Process

        def _worker_main(blob, conn):
            model = bytes(blob)
            conn.send(len(model))

        def start(blob, conn):
            proc = Process(target=_worker_main)
            proc.start()
        """,
    })
    assert by_rule(result, "REP015") == []


def test_rep015_maybe_process_pool_flags_stores_not_locks(tmp_path):
    # WorkerPool's backend is runtime-chosen: strong resources flag,
    # but parent locks alone don't (thread backends share them fine)
    result = scan_tree(tmp_path, {
        "proj/stores.py": STORES,
        "proj/score.py": """
        import threading
        from proj.pool import WorkerPool
        from proj.stores import ModelStore

        def score_all(chunks):
            store = ModelStore()
            pool = WorkerPool(4)

            def score_chunk(chunk):
                return store.get("m"), chunk

            return pool.map(score_chunk, chunks)

        def count_all(chunks):
            counter_lock = threading.Lock()
            pool = WorkerPool(4)

            def count_chunk(chunk):
                with counter_lock:
                    return len(chunk)

            return pool.map(count_chunk, chunks)
        """,
        "proj/pool.py": """
        class WorkerPool:
            def __init__(self, n):
                self.n = n

            def map(self, fn, items):
                return [fn(item) for item in items]
        """,
    })
    findings = by_rule(result, "REP015")
    assert len(findings) == 1
    assert "ModelStore" in findings[0].message


# -- REP016: interprocedural determinism taint --------------------------------


def test_rep016_seed_dropped_before_rng_constructing_callee(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/rngs.py": """
        import numpy as np

        def make_rng(seed=0):
            return np.random.default_rng(seed)
        """,
        "proj/run.py": """
        from proj.rngs import make_rng

        def run(seed):
            rng = make_rng()
            return rng, seed
        """,
    })
    findings = by_rule(result, "REP016")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "proj/run.py"
    assert "without passing a seed" in finding.message
    # the callee's defaulted seed parameter is anchored
    assert finding.related and finding.related[0][0] == "proj/rngs.py"


def test_rep016_negative_seed_forwarded(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/rngs.py": """
        import numpy as np

        def make_rng(seed=0):
            return np.random.default_rng(seed)
        """,
        "proj/run.py": """
        from proj.rngs import make_rng

        def run(seed):
            return make_rng(seed)
        """,
    })
    assert by_rule(result, "REP016") == []


def test_rep016_dead_seed_parameter(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/init.py": """
        import numpy as np

        def zeros(shape, rng=None):
            return np.zeros(shape)
        """,
    })
    findings = by_rule(result, "REP016")
    assert len(findings) == 1
    assert "never reads" in findings[0].message
    assert "'rng'" in findings[0].message


def test_rep016_negative_seed_used_and_underscore_exempt(tmp_path):
    result = scan_tree(tmp_path, {
        "proj/init.py": """
        import numpy as np

        def normal(shape, rng):
            return rng.standard_normal(shape)

        def zeros(shape, _rng=None):
            return np.zeros(shape)
        """,
    })
    assert by_rule(result, "REP016") == []
