"""Tier-1 gate: the shipped tree passes its own whole-program analyzer.

``src/`` must scan clean against the committed baseline — zero new
findings, zero parse errors, and zero *expired* entries (a fixed finding
must take its baseline entry with it, or the entry silently licenses a
regression). Every baseline entry must carry a written justification.
The scan runs both phases: per-file rules REP001-REP012 and the linked
cross-file rules REP013-REP016.
"""

import json
from pathlib import Path

from repro.analysis import Analyzer, Baseline, apply_baseline, default_registry

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "analysis_baseline.json"


def _scan():
    analyzer = Analyzer(default_registry())
    # the default analyzer must carry the cross-file phase: the gate is
    # only a gate if REP013-REP016 actually run here
    assert {"REP013", "REP014", "REP015", "REP016"} == {
        rule.id for rule in analyzer.cross_rules
    }
    return analyzer.analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)


def test_src_scans_clean_against_committed_baseline():
    result = _scan()
    assert result.parse_errors == []
    assert result.n_files > 50  # the scan actually covered the tree
    baseline = Baseline.load(BASELINE_PATH)
    new, _, expired = apply_baseline(result.findings, baseline)
    assert new == [], "new findings:\n" + "\n".join(f.render() for f in new)
    assert expired == [], (
        "expired baseline entries (code fixed, entry stale): "
        + ", ".join(e.fingerprint for e in expired)
    )


def test_every_baseline_entry_is_justified():
    data = json.loads(BASELINE_PATH.read_text())
    for entry in data["entries"]:
        assert entry["justification"].strip(), (
            f"baseline entry {entry['rule']}::{entry['path']} has no justification"
        )
        assert entry["justification"] != "grandfathered (justify or fix)", (
            f"baseline entry {entry['rule']}::{entry['path']} still carries the "
            "--update-baseline placeholder; write a real justification"
        )
