"""Engine mechanics: suppressions, baseline round-trips, reporters, CLI."""

import json
import textwrap

import pytest

from repro.analysis import (
    UNUSED_SUPPRESSION_ID,
    Analyzer,
    Baseline,
    BaselineEntry,
    JSON_SCHEMA_VERSION,
    Rule,
    RuleRegistry,
    apply_baseline,
    default_registry,
    render_json,
    render_text,
)
from repro.analysis.cli import main as analysis_main

NN = "src/repro/nn/mod.py"

DIRTY = textwrap.dedent(
    """
    import numpy as np

    def build():
        return np.random.default_rng()
    """
)

CLEAN = textwrap.dedent(
    """
    import numpy as np

    def build(seed):
        return np.random.default_rng(seed)
    """
)


def scan(source: str, path: str = NN):
    return Analyzer(default_registry()).analyze_source(textwrap.dedent(source), path)


# -- suppressions -----------------------------------------------------------

def test_suppression_silences_matching_finding():
    findings = scan(
        """
        import numpy as np

        def build():
            return np.random.default_rng()  # repro: noqa[REP001]
        """
    )
    assert findings == []


def test_suppression_handles_multiple_ids():
    findings = scan(
        """
        import time
        import numpy as np

        def build():
            return np.random.default_rng(), time.time()  # repro: noqa[REP001, REP002]
        """,
        path="src/repro/workflow/mod.py",
    )
    assert findings == []


def test_unused_suppression_is_itself_a_finding():
    findings = scan(
        """
        def build(seed):
            return seed  # repro: noqa[REP001]
        """
    )
    assert [f.rule for f in findings] == [UNUSED_SUPPRESSION_ID]
    assert "unused suppression" in findings[0].message
    assert "REP001" in findings[0].message


def test_suppression_only_applies_to_its_own_line():
    findings = scan(
        """
        import numpy as np

        # repro: noqa[REP001]
        def build():
            return np.random.default_rng()
        """
    )
    rules = [f.rule for f in findings]
    assert "REP001" in rules  # the finding survives
    assert UNUSED_SUPPRESSION_ID in rules  # and the stray pragma is reported


# -- fingerprints and baselines ---------------------------------------------

def test_fingerprint_ignores_line_numbers():
    shifted = DIRTY.replace("import numpy as np", "import numpy as np\n\n\n")
    (original,) = scan(DIRTY)
    (moved,) = scan(shifted)
    assert original.line != moved.line
    assert original.fingerprint == moved.fingerprint


def test_baseline_round_trip(tmp_path):
    findings = scan(DIRTY)
    baseline = Baseline.from_findings(findings, justification="legacy; PR-Next fixes")
    path = tmp_path / "analysis_baseline.json"
    baseline.save(path)

    loaded = Baseline.load(path)
    assert loaded.fingerprints() == baseline.fingerprints()
    assert loaded.entries[0].justification == "legacy; PR-Next fixes"

    new, grandfathered, expired = apply_baseline(findings, loaded)
    assert new == [] and expired == []
    assert [f.fingerprint for f in grandfathered] == [findings[0].fingerprint]


def test_baseline_entry_expires_when_code_is_fixed():
    baseline = Baseline.from_findings(scan(DIRTY))
    new, grandfathered, expired = apply_baseline(scan(CLEAN), baseline)
    assert new == [] and grandfathered == []
    assert len(expired) == 1
    assert isinstance(expired[0], BaselineEntry)


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "analysis_baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


# -- registry ----------------------------------------------------------------

def test_registry_rejects_duplicate_and_malformed_ids():
    class GoodRule(Rule):
        id = "REP101"

    class BadId(Rule):
        id = "XYZ1"

    registry = RuleRegistry()
    registry.register(GoodRule)
    with pytest.raises(ValueError, match="duplicate"):
        registry.register(GoodRule)
    with pytest.raises(ValueError, match="REP"):
        registry.register(BadId)


# -- reporters ----------------------------------------------------------------

def _scan_tree(tmp_path):
    target = tmp_path / "src" / "repro" / "nn"
    target.mkdir(parents=True)
    (target / "mod.py").write_text(DIRTY)
    analyzer = Analyzer(default_registry())
    return analyzer.analyze_paths([tmp_path / "src"], root=tmp_path)


def test_json_report_schema(tmp_path):
    result = _scan_tree(tmp_path)
    payload = json.loads(render_json(result, result.findings, [], []))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert set(payload) == {
        "version", "findings", "grandfathered", "expired_baseline", "summary",
    }
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "message", "snippet", "related"}
    assert finding["rule"] == "REP001"
    assert finding["related"] == []
    assert finding["path"] == "src/repro/nn/mod.py"
    summary = payload["summary"]
    assert summary["files_scanned"] == 1
    assert summary["new_findings"] == 1
    assert summary["by_rule"] == {"REP001": 1}
    assert summary["parse_errors"] == []
    assert summary["elapsed_seconds"] >= 0.0


def test_text_report_mentions_finding_and_summary(tmp_path):
    result = _scan_tree(tmp_path)
    text = render_text(result, result.findings, [], [])
    assert "src/repro/nn/mod.py" in text
    assert "REP001" in text
    assert "1 files scanned" in text


def test_parse_errors_are_collected_not_fatal(tmp_path):
    target = tmp_path / "src" / "repro" / "nn"
    target.mkdir(parents=True)
    (target / "broken.py").write_text("def oops(:\n")
    (target / "mod.py").write_text(DIRTY)
    result = Analyzer(default_registry()).analyze_paths([tmp_path / "src"], root=tmp_path)
    assert len(result.parse_errors) == 1
    assert "broken.py" in result.parse_errors[0]
    assert [f.rule for f in result.findings] == ["REP001"]  # scan continued


# -- CLI exit codes -----------------------------------------------------------

def _write_tree(tmp_path, source):
    target = tmp_path / "src" / "repro" / "nn"
    target.mkdir(parents=True, exist_ok=True)
    (target / "mod.py").write_text(source)


def test_cli_exit_codes_and_baseline_lifecycle(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write_tree(tmp_path, DIRTY)

    assert analysis_main(["missing-dir"]) == 2
    assert analysis_main(["src"]) == 1  # finding, no baseline discovered

    baseline = str(tmp_path / "analysis_baseline.json")
    assert analysis_main(["src", "--baseline", baseline, "--update-baseline"]) == 0
    assert analysis_main(["src", "--baseline", baseline]) == 0  # grandfathered

    _write_tree(tmp_path, CLEAN)
    assert analysis_main(["src", "--baseline", baseline]) == 0  # expired tolerated
    assert analysis_main(["src", "--baseline", baseline, "--strict-baseline"]) == 1

    out = capsys.readouterr().out
    assert "expired" in out


def test_cli_json_format_is_machine_readable(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write_tree(tmp_path, DIRTY)
    assert analysis_main(["src", "--baseline", "none", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["new_findings"] == 1
