"""Grid search, K-fold, and split utilities."""

import numpy as np
import pytest

from repro.ml import (
    KFold,
    ParameterGrid,
    Ridge,
    RidgeTS,
    ValidationGridSearch,
    clone,
    train_val_test_split,
)


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(combos) == len(grid) == 6
        assert {"a": 1, "b": "x"} in combos

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({})
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})
        with pytest.raises(TypeError):
            ParameterGrid({"a": 5})


class TestValidationGridSearch:
    def _data(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((300, 5))
        y = X @ rng.standard_normal(5) + 0.1 * rng.standard_normal(300)
        return X[:200], y[:200], X[200:], y[200:]

    def test_selects_best_alpha(self):
        X_train, y_train, X_val, y_val = self._data()
        search = ValidationGridSearch(Ridge(), {"alpha": [0.001, 1.0, 1000.0]})
        search.fit(X_train, y_train, X_val, y_val)
        # Low-noise linear data: small alpha should win clearly over 1000.
        assert search.best_params_["alpha"] < 1000.0
        assert len(search.results_) == 3

    def test_best_estimator_is_fitted(self):
        X_train, y_train, X_val, y_val = self._data()
        search = ValidationGridSearch(Ridge(), {"alpha": [0.1, 10.0]})
        search.fit(X_train, y_train, X_val, y_val)
        preds = search.best_estimator_.predict(X_val)
        assert preds.shape == y_val.shape

    def test_refit_on_combined_data(self):
        X_train, y_train, X_val, y_val = self._data()
        search = ValidationGridSearch(Ridge(), {"alpha": [0.1, 10.0]})
        search.fit(X_train, y_train, X_val, y_val)
        model = search.refit(np.vstack([X_train, X_val]), np.concatenate([y_train, y_val]))
        assert model.score(X_val, y_val) > -1.0

    def test_refit_before_fit_raises(self):
        search = ValidationGridSearch(Ridge(), {"alpha": [1.0]})
        with pytest.raises(RuntimeError):
            search.refit(np.zeros((2, 2)), np.zeros(2))

    def test_fit_kwargs_passed_through(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((200, 3))
        history = rng.standard_normal((200, 2))
        y = X[:, 0] + history[:, 0]
        search = ValidationGridSearch(RidgeTS(n_lags=2), {"alpha": [0.01, 100.0]})
        search.fit(
            X[:150],
            y[:150],
            X[150:],
            y[150:],
            fit_kwargs={"history": history[:150]},
            score_kwargs={"history": history[150:]},
        )
        assert search.best_params_["alpha"] == 0.01


class TestClone:
    def test_clone_copies_params_not_state(self):
        model = Ridge(alpha=3.0)
        model.fit(np.random.default_rng(0).standard_normal((10, 2)), np.arange(10.0))
        copy = clone(model)
        assert copy.alpha == 3.0
        assert copy.coef_ is None


class TestKFold:
    def test_partitions_cover_all_indices(self):
        folds = list(KFold(n_splits=4).split(22))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(22))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=3).split(10):
            assert not set(train) & set(test)

    def test_shuffle_deterministic_with_seed(self):
        f1 = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=1).split(9)]
        f2 = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=1).split(9)]
        assert f1 == f2

    def test_invalid(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))


class TestTrainValTestSplit:
    def test_kdn_snort_sizes(self):
        # Table 3: Snort has 1359 total = 900 train + 259 val + 200 test.
        train, val, test = train_val_test_split(1359, 900, 259, 200)
        assert (len(train), len(val), len(test)) == (900, 259, 200)
        assert train[-1] == 899 and test[-1] == 1358

    def test_contiguous_without_shuffle(self):
        train, val, test = train_val_test_split(10, 5, 2, 3)
        np.testing.assert_array_equal(train, np.arange(5))
        np.testing.assert_array_equal(val, [5, 6])
        np.testing.assert_array_equal(test, [7, 8, 9])

    def test_shuffle_covers_everything(self):
        train, val, test = train_val_test_split(10, 5, 2, 3, shuffle=True, random_state=0)
        combined = sorted(np.concatenate([train, val, test]).tolist())
        assert combined == list(range(10))

    def test_oversized_split_rejected(self):
        with pytest.raises(ValueError):
            train_val_test_split(10, 9, 1, 1)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            train_val_test_split(10, 0, 1, 1)
