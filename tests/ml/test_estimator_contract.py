"""One contract, every estimator: params, cloning, fit/predict/score.

The grid search and the evaluation harness treat every ``repro.ml``
regressor interchangeably; this suite pins the shared surface so a new
estimator (or a signature drift like ``RidgeTS``'s ``history=``) cannot
silently break them.
"""

import numpy as np
import pytest

from repro.ml import (
    SVR,
    DecisionTreeRegressor,
    Lasso,
    LinearRegression,
    RandomForestRegressor,
    Ridge,
    RidgeTS,
    clone,
)
from repro.ml.base import Estimator

RNG = np.random.default_rng(11)
X = RNG.normal(size=(60, 4))
Y = X @ np.array([1.0, -2.0, 0.5, 0.0]) + 0.01 * RNG.normal(size=60)
HISTORY = RNG.normal(size=(60, 2))

#: (factory, fit/predict keyword arguments) for every public estimator.
ESTIMATORS = [
    (lambda: Ridge(alpha=0.5), {}),
    (lambda: LinearRegression(), {}),
    (lambda: RidgeTS(alpha=0.5, n_lags=2), {"history": HISTORY}),
    (lambda: Lasso(alpha=0.01, max_iter=200), {}),
    (lambda: DecisionTreeRegressor(max_depth=4, random_state=0), {}),
    (lambda: RandomForestRegressor(n_estimators=5, max_depth=4, random_state=0), {}),
    (lambda: SVR(alpha=1.0, kernel="rbf", max_iter=20), {}),
]

IDS = [factory().__class__.__name__ for factory, _ in ESTIMATORS]


@pytest.fixture(params=ESTIMATORS, ids=IDS)
def estimator_and_kwargs(request):
    factory, kwargs = request.param
    return factory(), kwargs


class TestEstimatorContract:
    def test_is_an_estimator(self, estimator_and_kwargs):
        estimator, _ = estimator_and_kwargs
        assert isinstance(estimator, Estimator)

    def test_get_params_round_trips_through_constructor(self, estimator_and_kwargs):
        estimator, _ = estimator_and_kwargs
        params = estimator.get_params()
        rebuilt = type(estimator)(**params)
        assert rebuilt.get_params() == params

    def test_set_params_updates_and_rejects_unknown(self, estimator_and_kwargs):
        estimator, _ = estimator_and_kwargs
        params = estimator.get_params()
        assert estimator.set_params(**params) is estimator
        with pytest.raises(ValueError, match="unknown parameter"):
            estimator.set_params(definitely_not_a_param=1)

    def test_clone_is_fresh_and_identical(self, estimator_and_kwargs):
        estimator, kwargs = estimator_and_kwargs
        estimator.fit(X, Y, **kwargs)
        copy = clone(estimator)
        assert type(copy) is type(estimator)
        assert copy is not estimator
        assert copy.get_params() == estimator.get_params()
        assert not copy._fitted  # clone drops fitted state
        # The method form matches the module-level helper.
        assert estimator.clone().get_params() == copy.get_params()

    def test_unfitted_predict_raises(self, estimator_and_kwargs):
        estimator, kwargs = estimator_and_kwargs
        with pytest.raises(RuntimeError, match="not fitted"):
            estimator.predict(X, **kwargs)

    def test_fit_predict_score(self, estimator_and_kwargs):
        estimator, kwargs = estimator_and_kwargs
        assert estimator.fit(X, Y, **kwargs) is estimator
        predicted = estimator.predict(X, **kwargs)
        assert predicted.shape == (len(X),)
        assert np.isfinite(predicted).all()
        # Base-class score forwards predict kwargs, so one code path fits all.
        score = estimator.score(X, Y, **kwargs)
        assert score == pytest.approx(-float(np.mean((predicted - Y) ** 2)))
        assert score <= 0.0

    def test_score_is_inherited_not_overridden(self, estimator_and_kwargs):
        estimator, _ = estimator_and_kwargs
        assert type(estimator).score is Estimator.score
