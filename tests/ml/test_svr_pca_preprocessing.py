"""SVR, PCA, scalers, and label-encoder tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    PCA,
    SVR,
    LabelEncoder,
    MinMaxScaler,
    StandardScaler,
)

RNG = np.random.default_rng(31)


class TestSVR:
    def test_linear_kernel_fits_linear_data(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((100, 2))
        y = 3.0 * X[:, 0] - X[:, 1] + 0.5
        model = SVR(alpha=0.001, kernel="linear", epsilon=0.1).fit(X, y)
        mse = np.mean((model.predict(X) - y) ** 2)
        assert mse < 0.05

    def test_rbf_kernel_fits_nonlinear_data(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, (150, 1))
        y = np.sin(2 * X[:, 0])
        model = SVR(alpha=0.001, kernel="rbf", epsilon=0.1, gamma=1.0).fit(X, y)
        mse = np.mean((model.predict(X) - y) ** 2)
        assert mse < 0.05

    def test_poly_kernel_runs(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((60, 2))
        y = X[:, 0] ** 2
        model = SVR(alpha=0.01, kernel="poly", degree=2, gamma=1.0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_epsilon_tube_tolerates_small_errors(self):
        # With a wide tube, residuals within epsilon carry no loss, so the
        # model prefers the flattest function: near-constant predictions.
        rng = np.random.default_rng(3)
        X = rng.standard_normal((80, 1))
        y = 0.05 * X[:, 0] + 1.0
        wide = SVR(alpha=1.0, kernel="linear", epsilon=1.0).fit(X, y)
        spread = np.ptp(wide.predict(X))
        assert spread < 0.05

    def test_larger_alpha_flattens_prediction(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((80, 1))
        y = 2.0 * X[:, 0]
        weak = SVR(alpha=0.001, kernel="linear", epsilon=0.1).fit(X, y)
        strong = SVR(alpha=100.0, kernel="linear", epsilon=0.1).fit(X, y)
        assert np.ptp(strong.predict(X)) < np.ptp(weak.predict(X))

    def test_gamma_scale_handles_constant_features(self):
        X = np.ones((20, 2))
        y = RNG.standard_normal(20)
        model = SVR(kernel="rbf").fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SVR(alpha=0.0)
        with pytest.raises(ValueError):
            SVR(epsilon=-0.1)
        with pytest.raises(ValueError):
            SVR(kernel="sigmoid")

    def test_wrong_feature_count(self):
        X = RNG.standard_normal((30, 3))
        model = SVR(kernel="linear").fit(X, X[:, 0])
        with pytest.raises(ValueError):
            model.predict(X[:, :2])

    def test_support_fraction_between_zero_and_one(self):
        X = RNG.standard_normal((40, 2))
        model = SVR(kernel="rbf", alpha=0.1).fit(X, X[:, 0])
        assert 0.0 <= model.support_fraction() <= 1.0


class TestPCA:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(0)
        direction = np.array([3.0, 4.0]) / 5.0
        X = np.outer(rng.standard_normal(300), direction) + 0.01 * rng.standard_normal((300, 2))
        pca = PCA(n_components=1).fit(X)
        component = pca.components_[0]
        assert abs(abs(component @ direction) - 1.0) < 1e-3

    def test_transform_centers_data(self):
        X = RNG.standard_normal((100, 3)) + 10.0
        Z = PCA(n_components=2).fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)

    def test_explained_variance_ratio_sums_to_one_full_rank(self):
        X = RNG.standard_normal((50, 3))
        pca = PCA(n_components=3).fit(X)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_components_orthonormal(self):
        X = RNG.standard_normal((60, 4))
        pca = PCA(n_components=3).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_inverse_transform_roundtrip_full_rank(self):
        X = RNG.standard_normal((40, 3))
        pca = PCA(n_components=3).fit(X)
        np.testing.assert_allclose(pca.inverse_transform(pca.transform(X)), X, atol=1e-10)

    def test_too_many_components_rejected(self):
        with pytest.raises(ValueError):
            PCA(n_components=5).fit(RNG.standard_normal((10, 3)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA().transform(np.zeros((2, 2)))


class TestScalers:
    def test_standard_scaler_zero_mean_unit_var(self):
        X = RNG.standard_normal((200, 4)) * 5 + 3
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_standard_scaler_constant_column(self):
        X = np.hstack([RNG.standard_normal((50, 1)), np.full((50, 1), 7.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 1], 0.0)

    def test_standard_scaler_inverse(self):
        X = RNG.standard_normal((50, 3)) * 2 + 1
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-12)

    def test_minmax_scaler_range(self):
        X = RNG.standard_normal((100, 3)) * 10
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_minmax_inverse(self):
        X = RNG.standard_normal((50, 2))
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-12)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(RNG.standard_normal((10, 3)))
        with pytest.raises(ValueError):
            scaler.transform(RNG.standard_normal((5, 2)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=50), st.integers(min_value=0, max_value=10_000))
    def test_property_standard_scaler_idempotent_stats(self, n, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, 3)) * rng.uniform(0.5, 5)
        Z = StandardScaler().fit_transform(X)
        Z2 = StandardScaler().fit_transform(Z)
        np.testing.assert_allclose(Z, Z2, atol=1e-8)


class TestLabelEncoder:
    def test_fit_transform_roundtrip(self):
        values = ["Testbed_15", "Testbed_08", "Testbed_15", "Testbed_11"]
        encoder = LabelEncoder().fit(values)
        ids = encoder.transform(values)
        assert encoder.inverse_transform(ids) == values

    def test_unknown_value_gets_unknown_id(self):
        encoder = LabelEncoder().fit(["a", "b"])
        ids = encoder.transform(["a", "zzz", "b"])
        assert ids[1] == encoder.unknown_id
        assert encoder.inverse_transform([encoder.unknown_id]) == ["<unk>"]

    def test_vocabulary_size_includes_unknown(self):
        encoder = LabelEncoder().fit(["x", "y", "z"])
        assert encoder.vocabulary_size == 4

    def test_deterministic_sorted_classes(self):
        e1 = LabelEncoder().fit(["b", "a", "c"])
        e2 = LabelEncoder().fit(["c", "b", "a", "a"])
        assert e1.classes_ == e2.classes_ == ["a", "b", "c"]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])

    def test_out_of_range_inverse_raises(self):
        encoder = LabelEncoder().fit(["a"])
        with pytest.raises(ValueError):
            encoder.inverse_transform([99])

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=30))
    def test_property_transform_inverse_identity_on_seen(self, values):
        encoder = LabelEncoder().fit(values)
        as_str = [str(v) for v in values]
        assert encoder.inverse_transform(encoder.transform(as_str)) == as_str
