"""Decision tree and random forest regressor tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeRegressor, RandomForestRegressor

RNG = np.random.default_rng(9)


def _step_data(n=200, seed=0):
    """Piecewise-constant target: trees should fit this exactly."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 2))
    y = np.where(X[:, 0] < 0.5, 1.0, np.where(X[:, 1] < 0.5, 2.0, 3.0))
    return X, y


class TestDecisionTree:
    def test_fits_piecewise_constant_exactly(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(tree.predict(X), y)

    def test_max_depth_limits_tree(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree.depth() <= 1
        assert tree.n_leaves() <= 2

    def test_stump_predicts_two_means(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert len(np.unique(tree.predict(X))) <= 2

    def test_min_samples_leaf_respected(self):
        X, y = _step_data(50)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree.root_)) >= 10

    def test_min_samples_split(self):
        X, y = _step_data(50)
        tree = DecisionTreeRegressor(min_samples_split=100).fit(X, y)
        assert tree.root_.is_leaf
        np.testing.assert_allclose(tree.predict(X), y.mean())

    def test_constant_target_is_single_leaf(self):
        X = RNG.standard_normal((30, 3))
        tree = DecisionTreeRegressor().fit(X, np.full(30, 5.0))
        assert tree.root_.is_leaf
        np.testing.assert_allclose(tree.predict(X), 5.0)

    def test_constant_features_single_leaf(self):
        X = np.ones((30, 2))
        y = RNG.standard_normal(30)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.root_.is_leaf

    def test_better_than_mean_on_smooth_function(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(300, 1))
        y = np.sin(X[:, 0])
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        mse = np.mean((tree.predict(X) - y) ** 2)
        assert mse < np.var(y) * 0.05

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_wrong_feature_count_on_predict(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(X[:, :1])

    def test_max_features_subsampling(self):
        X, y = _step_data()
        tree = DecisionTreeRegressor(max_features=1, random_state=0).fit(X, y)
        assert np.isfinite(tree.predict(X)).all()
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features=5).fit(X, y)

    def test_deterministic_given_seed(self):
        X, y = _step_data()
        p1 = DecisionTreeRegressor(max_features=1, random_state=3).fit(X, y).predict(X)
        p2 = DecisionTreeRegressor(max_features=1, random_state=3).fit(X, y).predict(X)
        np.testing.assert_allclose(p1, p2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=5, max_value=60), st.integers(min_value=0, max_value=10_000))
    def test_property_predictions_within_target_range(self, n, seed):
        """Leaf means can never leave [min(y), max(y)]."""
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, 3))
        y = rng.standard_normal(n)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        preds = tree.predict(rng.standard_normal((50, 3)))
        assert preds.min() >= y.min() - 1e-12
        assert preds.max() <= y.max() + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=10, max_value=50), st.integers(min_value=0, max_value=10_000))
    def test_property_deeper_never_worse_on_train(self, n, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, 2))
        y = rng.standard_normal(n)
        shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        mse_shallow = np.mean((shallow.predict(X) - y) ** 2)
        mse_deep = np.mean((deep.predict(X) - y) ** 2)
        assert mse_deep <= mse_shallow + 1e-12


class TestRandomForest:
    def test_fits_step_function(self):
        X, y = _step_data()
        forest = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        mse = np.mean((forest.predict(X) - y) ** 2)
        assert mse < 0.05

    def test_prediction_is_mean_of_trees(self):
        X, y = _step_data(80)
        forest = RandomForestRegressor(n_estimators=5, random_state=1).fit(X, y)
        stacked = np.stack([tree.predict(X) for tree in forest.trees_])
        np.testing.assert_allclose(forest.predict(X), stacked.mean(axis=0))

    def test_deterministic_given_seed(self):
        X, y = _step_data()
        f1 = RandomForestRegressor(n_estimators=10, random_state=7).fit(X, y).predict(X)
        f2 = RandomForestRegressor(n_estimators=10, random_state=7).fit(X, y).predict(X)
        np.testing.assert_allclose(f1, f2)

    def test_seed_changes_model(self):
        X, y = _step_data()
        f1 = RandomForestRegressor(n_estimators=5, random_state=1).fit(X, y).predict(X)
        f2 = RandomForestRegressor(n_estimators=5, random_state=2).fit(X, y).predict(X)
        assert not np.allclose(f1, f2)

    def test_oob_score_available_with_bootstrap(self):
        X, y = _step_data(150)
        forest = RandomForestRegressor(n_estimators=30, random_state=0).fit(X, y)
        assert forest.oob_score(y) > -1.0

    def test_oob_score_rejected_without_bootstrap(self):
        X, y = _step_data(50)
        forest = RandomForestRegressor(n_estimators=3, bootstrap=False, random_state=0).fit(X, y)
        with pytest.raises(RuntimeError):
            forest.oob_score(y)

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_forest_smoother_than_single_tree(self):
        """Ensemble variance on noise should be below a single deep tree's."""
        rng = np.random.default_rng(4)
        X = rng.uniform(-1, 1, (300, 2))
        y = X[:, 0] + 0.5 * rng.standard_normal(300)
        X_test = rng.uniform(-1, 1, (200, 2))
        y_test = X_test[:, 0]
        tree_mse = np.mean(
            (DecisionTreeRegressor(random_state=0).fit(X, y).predict(X_test) - y_test) ** 2
        )
        forest_mse = np.mean(
            (
                RandomForestRegressor(n_estimators=40, random_state=0).fit(X, y).predict(X_test)
                - y_test
            )
            ** 2
        )
        assert forest_mse < tree_mse
