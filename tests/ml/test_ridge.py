"""Ridge / LinearRegression / RidgeTS correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import LinearRegression, Ridge, RidgeTS

RNG = np.random.default_rng(42)


def _linear_data(n=200, d=4, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    w = rng.standard_normal(d)
    b = 1.7
    y = X @ w + b + noise * rng.standard_normal(n)
    return X, y, w, b


class TestRidge:
    def test_recovers_exact_linear_relation(self):
        X, y, w, b = _linear_data()
        model = Ridge(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(model.coef_, w, atol=1e-8)
        assert model.intercept_ == pytest.approx(b, abs=1e-8)

    def test_regularization_shrinks_coefficients(self):
        X, y, _, _ = _linear_data(noise=0.5)
        small = Ridge(alpha=0.01).fit(X, y)
        large = Ridge(alpha=1000.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_penalized(self):
        # With huge alpha, coef -> 0 but intercept -> mean(y).
        X, y, _, _ = _linear_data()
        model = Ridge(alpha=1e9).fit(X, y)
        np.testing.assert_allclose(model.coef_, 0.0, atol=1e-5)
        assert model.intercept_ == pytest.approx(y.mean(), rel=1e-6)

    def test_predict_shape_and_values(self):
        X, y, _, _ = _linear_data()
        model = Ridge(alpha=1.0).fit(X, y)
        preds = model.predict(X)
        assert preds.shape == y.shape
        assert model.score(X, y) > -1.0

    def test_singular_design_does_not_crash(self):
        # Duplicate columns make X^T X singular at alpha=0.
        X = RNG.standard_normal((50, 2))
        X = np.hstack([X, X[:, :1]])
        y = X[:, 0] + 2.0
        model = Ridge(alpha=0.0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0)

    def test_rejects_wrong_feature_count(self):
        X, y, _, _ = _linear_data()
        model = Ridge().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(X[:, :2])

    def test_rejects_nan_inputs(self):
        X, y, _, _ = _linear_data()
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            Ridge().fit(X, y)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            Ridge().predict(np.zeros((2, 2)))

    def test_linear_regression_is_alpha_zero(self):
        X, y, _, _ = _linear_data(noise=0.1)
        lr = LinearRegression().fit(X, y)
        ridge0 = Ridge(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(lr.coef_, ridge0.coef_, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=10, max_value=60),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_residuals_orthogonal_to_design(self, n, d, seed):
        """OLS residuals are orthogonal to every (centered) feature column."""
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, d))
        y = rng.standard_normal(n)
        model = Ridge(alpha=0.0).fit(X, y)
        residuals = y - model.predict(X)
        centered = X - X.mean(axis=0)
        np.testing.assert_allclose(centered.T @ residuals, 0.0, atol=1e-6)


class TestRidgeTS:
    def _history_data(self, n=300, d=3, n_lags=2, seed=1):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, d))
        history = rng.standard_normal((n, n_lags))
        # Target depends on both features and lagged RU.
        y = X @ np.array([1.0, -2.0, 0.5]) + 0.8 * history[:, 0] - 0.3 * history[:, -1]
        return X, history, y

    def test_exploits_history(self):
        X, history, y = self._history_data()
        with_history = RidgeTS(alpha=0.01, n_lags=2).fit(X, y, history=history)
        plain = Ridge(alpha=0.01).fit(X, y)
        mse_ts = np.mean((with_history.predict(X, history=history) - y) ** 2)
        mse_plain = np.mean((plain.predict(X) - y) ** 2)
        assert mse_ts < mse_plain * 0.1

    def test_design_matches_manual_concatenation(self):
        X, history, y = self._history_data()
        model = RidgeTS(alpha=1.0, n_lags=2).fit(X, y, history=history)
        manual = Ridge(alpha=1.0).fit(np.hstack([X, history]), y)
        np.testing.assert_allclose(model.coef_, manual.coef_, atol=1e-10)
        assert model.intercept_ == pytest.approx(manual.intercept_)

    def test_requires_history(self):
        X, history, y = self._history_data()
        with pytest.raises(ValueError, match="history"):
            RidgeTS(n_lags=2).fit(X, y)

    def test_rejects_wrong_lag_count(self):
        X, history, y = self._history_data()
        with pytest.raises(ValueError):
            RidgeTS(n_lags=3).fit(X, y, history=history)

    def test_rejects_invalid_n_lags(self):
        with pytest.raises(ValueError):
            RidgeTS(n_lags=0)

    def test_score(self):
        X, history, y = self._history_data()
        model = RidgeTS(alpha=0.01, n_lags=2).fit(X, y, history=history)
        assert model.score(X, y, history=history) > -0.1
