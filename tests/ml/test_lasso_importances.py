"""Lasso regression and tree/forest feature-importance tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeRegressor, Lasso, RandomForestRegressor, Ridge


def _sparse_data(n=300, d=10, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    second = min(3, d - 1)
    y = 3.0 * X[:, 0] - 2.0 * X[:, second] + noise * rng.standard_normal(n)
    return X, y


class TestLasso:
    def test_recovers_sparse_support(self):
        X, y = _sparse_data()
        model = Lasso(alpha=0.1).fit(X, y)
        np.testing.assert_array_equal(model.selected_features(), [0, 3])
        assert model.sparsity() == pytest.approx(0.8)

    def test_coefficients_near_truth(self):
        X, y = _sparse_data(noise=0.01)
        model = Lasso(alpha=0.01).fit(X, y)
        assert model.coef_[0] == pytest.approx(3.0, abs=0.05)
        assert model.coef_[3] == pytest.approx(-2.0, abs=0.05)

    def test_alpha_zero_matches_ols(self):
        X, y = _sparse_data(d=4)  # informative features 0 and 3
        lasso = Lasso(alpha=0.0, max_iter=5000, tol=1e-10).fit(X, y)
        ols = Ridge(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(lasso.coef_, ols.coef_, atol=1e-5)
        assert lasso.intercept_ == pytest.approx(ols.intercept_, abs=1e-5)

    def test_huge_alpha_zeroes_everything(self):
        X, y = _sparse_data()
        model = Lasso(alpha=1e6).fit(X, y)
        np.testing.assert_allclose(model.coef_, 0.0)
        assert model.intercept_ == pytest.approx(y.mean())

    def test_sparsity_monotone_in_alpha(self):
        X, y = _sparse_data()
        sparsities = [Lasso(alpha=a).fit(X, y).sparsity() for a in (0.001, 0.1, 1.0, 10.0)]
        assert sparsities == sorted(sparsities)

    def test_constant_column_gets_zero_weight(self):
        X, y = _sparse_data(d=4)
        X = np.hstack([X, np.ones((len(X), 1))])
        model = Lasso(alpha=0.05).fit(X, y)
        assert model.coef_[-1] == 0.0

    def test_predict_shape_and_quality(self):
        X, y = _sparse_data()
        model = Lasso(alpha=0.05).fit(X[:200], y[:200])
        predictions = model.predict(X[200:])
        assert predictions.shape == (100,)
        assert np.abs(predictions - y[200:]).mean() < y.std() * 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            Lasso(alpha=-1.0)
        with pytest.raises(ValueError):
            Lasso(max_iter=0)
        with pytest.raises(ValueError):
            Lasso(tol=0.0)
        model = Lasso(alpha=0.1).fit(*_sparse_data(d=4))
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 5)))
        with pytest.raises(RuntimeError):
            Lasso().predict(np.zeros((2, 2)))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_objective_not_worse_than_zero_solution(self, seed):
        """The fitted solution's objective never exceeds w = 0's."""
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((50, 4))
        y = rng.standard_normal(50)
        alpha = 0.5
        model = Lasso(alpha=alpha, max_iter=2000).fit(X, y)

        def objective(w, b):
            return 0.5 * np.mean((X @ w + b - y) ** 2) + alpha * np.abs(w).sum()

        assert objective(model.coef_, model.intercept_) <= objective(
            np.zeros(4), y.mean()
        ) + 1e-9


class TestFeatureImportances:
    def test_tree_identifies_informative_features(self):
        X, y = _sparse_data(noise=0.05)
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        importances = tree.feature_importances()
        assert importances.sum() == pytest.approx(1.0)
        assert set(np.argsort(importances)[-2:]) == {0, 3}

    def test_single_leaf_tree_all_zero(self):
        tree = DecisionTreeRegressor().fit(np.ones((20, 3)), np.full(20, 2.0))
        np.testing.assert_allclose(tree.feature_importances(), 0.0)

    def test_forest_importances_average_trees(self):
        X, y = _sparse_data()
        forest = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        importances = forest.feature_importances()
        assert importances.shape == (10,)
        assert importances.sum() == pytest.approx(1.0)
        stacked = np.stack([tree.feature_importances() for tree in forest.trees_])
        np.testing.assert_allclose(importances, stacked.mean(axis=0))

    def test_forest_finds_true_support(self):
        X, y = _sparse_data(noise=0.05)
        forest = RandomForestRegressor(n_estimators=30, random_state=1).fit(X, y)
        importances = forest.feature_importances()
        assert set(np.argsort(importances)[-2:]) == {0, 3}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().feature_importances()
        with pytest.raises(RuntimeError):
            RandomForestRegressor().feature_importances()
