"""Tests for the HTM stack: encoder, spatial pooler, temporal memory, detector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm import (
    AnomalyLikelihood,
    HTMDetector,
    ScalarEncoder,
    SpatialPooler,
    TemporalMemory,
)


class TestScalarEncoder:
    def test_active_bit_count(self):
        encoder = ScalarEncoder(0, 100, n_bits=200, w=21)
        assert encoder.encode(50).sum() == 21
        assert encoder.encode(0).sum() == 21
        assert encoder.encode(100).sum() == 21

    def test_nearby_values_overlap(self):
        encoder = ScalarEncoder(0, 100, n_bits=400, w=21)
        assert encoder.overlap(50, 50.5) > 15
        assert encoder.overlap(50, 51) > 10

    def test_distant_values_disjoint(self):
        encoder = ScalarEncoder(0, 100, n_bits=400, w=21)
        assert encoder.overlap(10, 90) == 0

    def test_out_of_range_clipped(self):
        encoder = ScalarEncoder(0, 100, n_bits=200, w=21)
        np.testing.assert_array_equal(encoder.encode(-50), encoder.encode(0))
        np.testing.assert_array_equal(encoder.encode(500), encoder.encode(100))

    def test_monotonic_buckets(self):
        encoder = ScalarEncoder(0, 10, n_bits=100, w=5)
        buckets = [encoder.bucket(v) for v in np.linspace(0, 10, 20)]
        assert buckets == sorted(buckets)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ScalarEncoder(10, 10)
        with pytest.raises(ValueError):
            ScalarEncoder(0, 1, n_bits=5, w=7)
        with pytest.raises(ValueError):
            ScalarEncoder(0, 1, n_bits=100, w=4)  # even w

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100))
    def test_property_overlap_decreases_with_distance(self, a, b):
        encoder = ScalarEncoder(0, 100, n_bits=400, w=21)
        same = encoder.overlap(a, a)
        cross = encoder.overlap(a, b)
        assert same == 21
        assert cross <= same


class TestSpatialPooler:
    def test_output_sparsity(self):
        pooler = SpatialPooler(input_size=200, n_columns=100, sparsity=0.05, seed=0)
        encoder = ScalarEncoder(0, 10, n_bits=200, w=21)
        active = pooler.compute(encoder.encode(5.0))
        assert active.sum() == pooler.n_active == 5

    def test_same_input_same_columns_after_learning(self):
        pooler = SpatialPooler(input_size=200, n_columns=100, seed=0)
        encoder = ScalarEncoder(0, 10, n_bits=200, w=21)
        sdr = encoder.encode(5.0)
        for _ in range(10):
            first = pooler.compute(sdr, learn=True)
        second = pooler.compute(sdr, learn=False)
        np.testing.assert_array_equal(first, second)

    def test_different_inputs_different_columns(self):
        pooler = SpatialPooler(input_size=400, n_columns=200, sparsity=0.05, seed=0)
        encoder = ScalarEncoder(0, 100, n_bits=400, w=21)
        a = pooler.compute(encoder.encode(10.0), learn=False)
        b = pooler.compute(encoder.encode(90.0), learn=False)
        assert (a & b).sum() < a.sum()

    def test_learning_strengthens_active_synapses(self):
        pooler = SpatialPooler(input_size=100, n_columns=50, seed=1)
        sdr = np.zeros(100, dtype=bool)
        sdr[:20] = True
        before = pooler.permanence.copy()
        active = pooler.compute(sdr, learn=True)
        winners = np.flatnonzero(active)
        changed = pooler.permanence[winners] - before[winners]
        # Synapses to active inputs must not decrease; to inactive, not increase.
        potential = pooler.potential[winners]
        assert (changed[:, :20][potential[:, :20]] >= 0).all()
        assert (changed[:, 20:][potential[:, 20:]] <= 0).all()

    def test_wrong_input_shape(self):
        pooler = SpatialPooler(input_size=100, n_columns=50, seed=0)
        with pytest.raises(ValueError):
            pooler.compute(np.zeros(99, dtype=bool))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SpatialPooler(10, sparsity=0.0)
        with pytest.raises(ValueError):
            SpatialPooler(10, potential_fraction=0.0)


class TestTemporalMemory:
    def _column_sdr(self, n_columns, active_ids):
        sdr = np.zeros(n_columns, dtype=bool)
        sdr[list(active_ids)] = True
        return sdr

    def test_first_input_is_fully_anomalous(self):
        memory = TemporalMemory(n_columns=50, activation_threshold=3, learning_threshold=2, seed=0)
        anomaly = memory.compute(self._column_sdr(50, range(10)))
        assert anomaly == 1.0

    def test_learns_repeating_sequence(self):
        memory = TemporalMemory(
            n_columns=60,
            cells_per_column=4,
            activation_threshold=5,
            learning_threshold=3,
            seed=0,
        )
        pattern_a = self._column_sdr(60, range(0, 10))
        pattern_b = self._column_sdr(60, range(20, 30))
        pattern_c = self._column_sdr(60, range(40, 50))
        anomalies = []
        for _ in range(30):
            for pattern in (pattern_a, pattern_b, pattern_c):
                anomalies.append(memory.compute(pattern))
        # After training, transitions are predicted: anomaly near 0.
        assert np.mean(anomalies[-6:]) < 0.2

    def test_novel_pattern_raises_anomaly(self):
        memory = TemporalMemory(
            n_columns=60,
            cells_per_column=4,
            activation_threshold=5,
            learning_threshold=3,
            seed=0,
        )
        pattern_a = self._column_sdr(60, range(0, 10))
        pattern_b = self._column_sdr(60, range(20, 30))
        for _ in range(30):
            memory.compute(pattern_a)
            memory.compute(pattern_b)
        settled = memory.compute(pattern_a)
        novel = memory.compute(self._column_sdr(60, range(45, 55)))
        assert novel > settled
        assert novel == 1.0

    def test_reset_clears_state(self):
        memory = TemporalMemory(n_columns=30, activation_threshold=3, learning_threshold=2, seed=0)
        memory.compute(self._column_sdr(30, range(5)))
        memory.reset()
        assert memory.active_cells == set()
        assert memory.predicted_cells == set()

    def test_empty_input_zero_anomaly(self):
        memory = TemporalMemory(n_columns=30, activation_threshold=3, learning_threshold=2)
        assert memory.compute(np.zeros(30, dtype=bool)) == 0.0

    def test_wrong_shape(self):
        memory = TemporalMemory(n_columns=30, activation_threshold=3, learning_threshold=2)
        with pytest.raises(ValueError):
            memory.compute(np.zeros(29, dtype=bool))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TemporalMemory(10, cells_per_column=0)
        with pytest.raises(ValueError):
            TemporalMemory(10, activation_threshold=3, learning_threshold=5)


class TestAnomalyLikelihood:
    def test_warmup_returns_half(self):
        likelihood = AnomalyLikelihood(window=50, short_window=5, learning_period=10)
        values = [likelihood.update(0.1) for _ in range(10)]
        assert all(v == 0.5 for v in values)

    def test_spike_after_calm_gives_high_likelihood(self):
        likelihood = AnomalyLikelihood(window=100, short_window=5, learning_period=20)
        rng = np.random.default_rng(0)
        for _ in range(80):
            likelihood.update(float(rng.uniform(0.0, 0.15)))
        out = [likelihood.update(1.0) for _ in range(5)]
        assert out[-1] > 0.99

    def test_constant_scores_not_anomalous(self):
        likelihood = AnomalyLikelihood(window=100, short_window=5, learning_period=20)
        for _ in range(60):
            result = likelihood.update(0.2)
        assert result < 0.9

    def test_rejects_out_of_range(self):
        likelihood = AnomalyLikelihood()
        with pytest.raises(ValueError):
            likelihood.update(1.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AnomalyLikelihood(window=5, short_window=10)
        with pytest.raises(ValueError):
            AnomalyLikelihood(learning_period=-1)


class TestHTMDetector:
    def test_detects_level_shift_in_periodic_signal(self):
        rng = np.random.default_rng(0)
        t = np.arange(400)
        normal = 50 + 10 * np.sin(2 * np.pi * t / 20) + rng.normal(0, 0.5, len(t))
        shifted = normal.copy()
        shifted[300:] += 35  # abrupt level shift
        detector = HTMDetector(minimum=0, maximum=120, seed=0)
        result = detector.run(shifted)
        # Likelihood right after the shift should exceed the calm baseline.
        calm = result.likelihoods[250:300].max()
        post = result.likelihoods[300:320].max()
        assert post >= calm

    def test_raw_score_drops_as_pattern_learned(self):
        t = np.arange(300)
        signal = 50 + 10 * np.sin(2 * np.pi * t / 25)
        detector = HTMDetector(minimum=0, maximum=100, seed=0)
        result = detector.run(signal)
        assert result.raw_scores[250:].mean() < result.raw_scores[:50].mean()

    def test_alarm_mask_shape(self):
        detector = HTMDetector(minimum=0, maximum=1, seed=0)
        result = detector.run(np.linspace(0, 1, 60))
        assert result.alarms().shape == (60,)
        assert result.alarms().dtype == bool

    def test_reset_sequence(self):
        detector = HTMDetector(minimum=0, maximum=1, seed=0)
        detector.run(np.linspace(0, 1, 30))
        detector.reset_sequence()
        assert detector.memory.active_cells == set()
