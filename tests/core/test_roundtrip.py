"""Serialize -> deserialize -> predict round-trips and compiled-path parity.

The workflow publishes :meth:`Env2VecRegressor.to_bytes` blobs over the
model store and the prediction pipeline reconstructs them with
``from_bytes``; these tests pin down that the reconstruction predicts
*identically* — through the compiled engine, without any Trainer — for
every head and recurrent-unit variant.
"""

import numpy as np
import pytest

from repro.core import Env2VecRegressor
from repro.data import Environment

RNG = np.random.default_rng(31)

ENVS = [
    Environment("Testbed_01", "SUT_A", "Testcase_Load", "Build_S01"),
    Environment("Testbed_02", "SUT_B", "Testcase_Load", "Build_S02"),
    Environment("Testbed_01", "SUT_B", "Testcase_Endurance", "Build_D01"),
]


def _task(n=90, n_features=4, n_lags=3, seed=5):
    rng = np.random.default_rng(seed)
    environments = [ENVS[i % len(ENVS)] for i in range(n)]
    X = rng.standard_normal((n, n_features))
    history = rng.standard_normal((n, n_lags))
    y = X @ rng.standard_normal(n_features) + 0.3 * history.sum(axis=1)
    return environments, X, history, y


def _fit(**overrides) -> Env2VecRegressor:
    params = dict(
        n_lags=3, embedding_dim=4, fnn_hidden=8, gru_hidden=5,
        max_epochs=2, batch_size=32, seed=3,
    )
    params.update(overrides)
    environments, X, history, y = _task()
    return Env2VecRegressor(**params).fit(environments, X, history, y)


class TestSerializationRoundTrip:
    @pytest.mark.parametrize("head", ["hadamard", "bilinear", "mlp"])
    def test_heads_predict_identically_after_round_trip(self, head):
        regressor = _fit(head=head)
        environments, X, history, _ = _task()
        expected = regressor.predict(environments, X, history)
        restored = Env2VecRegressor.from_bytes(regressor.to_bytes())
        np.testing.assert_allclose(
            restored.predict(environments, X, history), expected, atol=1e-10
        )

    @pytest.mark.parametrize(
        "variant",
        [{"use_attention": True}, {"recurrent_unit": "lstm"},
         {"recurrent_unit": "lstm", "use_attention": True}],
    )
    def test_architecture_variants_round_trip(self, variant):
        regressor = _fit(**variant)
        environments, X, history, _ = _task()
        expected = regressor.predict(environments, X, history)
        restored = Env2VecRegressor.from_bytes(regressor.to_bytes())
        np.testing.assert_allclose(
            restored.predict(environments, X, history), expected, atol=1e-10
        )

    def test_deserialized_model_predicts_without_trainer(self):
        restored = Env2VecRegressor.from_bytes(_fit().to_bytes())
        assert not hasattr(restored, "_trainer")
        environments, X, history, _ = _task(n=7)
        assert restored.predict(environments, X, history).shape == (7,)


class TestCompiledPredictPath:
    def test_compiled_matches_autograd_no_grad(self):
        regressor = _fit()
        environments, X, history, _ = _task()
        np.testing.assert_allclose(
            regressor.predict(environments, X, history, compiled=True),
            regressor.predict(environments, X, history, compiled=False),
            atol=1e-10,
        )

    def test_engine_parity_within_1e10(self):
        regressor = _fit()
        environments, X, history, _ = _task()
        engine = regressor.compile()
        batch = regressor._batch(environments, X, history)
        assert engine.assert_close(batch, atol=1e-10) <= 1e-10

    def test_engine_reused_until_invalidated(self):
        regressor = _fit()
        environments, X, history, y = _task(n=30)
        regressor.predict(environments, X, history)
        engine = regressor._engine
        assert engine is not None
        regressor.predict(environments, X, history)
        assert regressor._engine is engine  # cached across predict calls
        regressor.fine_tune(environments, X, history, y, epochs=1)
        assert regressor._engine is None  # weights moved: stale engine dropped
        np.testing.assert_allclose(
            regressor.predict(environments, X, history),
            regressor.predict(environments, X, history, compiled=False),
            atol=1e-10,
        )

    def test_streaming_prediction_hits_row_cache(self):
        regressor = _fit()
        engine = regressor.compile()
        environments, X, history, _ = _task(n=40)
        for i in range(len(X)):
            regressor.predict(environments[i : i + 1], X[i : i + 1], history[i : i + 1])
        assert engine.env_cache is not None
        assert engine.env_cache.misses == len(ENVS)
        assert engine.env_cache.hits == len(X) - len(ENVS)


class TestFitDeterminism:
    def test_identical_fits_produce_identical_histories(self):
        histories = []
        for _ in range(2):
            histories.append(_fit(max_epochs=3).history_.train_loss)
        assert histories[0] == histories[1]

    def test_identical_fits_produce_identical_predictions(self):
        environments, X, history, _ = _task(n=12)
        predictions = [
            _fit().predict(environments, X, history) for _ in range(2)
        ]
        np.testing.assert_array_equal(predictions[0], predictions[1])
