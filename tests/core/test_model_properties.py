"""Property-based tests on Env2Vec model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Env2VecRegressor
from repro.data import Environment


def _fitted_model(seed=0, n=160, n_lags=2):
    rng = np.random.default_rng(seed)
    envs_catalog = [
        Environment("T1", "S1", "C1", "B1"),
        Environment("T2", "S1", "C2", "B2"),
    ]
    environments = [envs_catalog[i % 2] for i in range(n)]
    X = rng.standard_normal((n, 3))
    history = rng.standard_normal((n, n_lags))
    y = 40.0 + 3.0 * X[:, 0] + history[:, -1] + 5.0 * (np.arange(n) % 2)
    model = Env2VecRegressor(n_lags=n_lags, max_epochs=5, batch_size=32, seed=0)
    model.fit(environments, X, history, y)
    return model, environments, X, history


class TestPredictionInvariants:
    def test_batch_split_invariance(self):
        """Predicting in one call equals predicting in chunks."""
        model, environments, X, history = _fitted_model()
        full = model.predict(environments, X, history)
        chunked = np.concatenate(
            [
                model.predict(environments[:50], X[:50], history[:50]),
                model.predict(environments[50:], X[50:], history[50:]),
            ]
        )
        np.testing.assert_allclose(full, chunked, atol=1e-12)

    def test_row_permutation_equivariance(self):
        model, environments, X, history = _fitted_model()
        rng = np.random.default_rng(1)
        order = rng.permutation(len(X))
        base = model.predict(environments, X, history)
        permuted = model.predict(
            [environments[i] for i in order], X[order], history[order]
        )
        np.testing.assert_allclose(permuted, base[order], atol=1e-12)

    def test_predictions_deterministic_in_eval_mode(self):
        model, environments, X, history = _fitted_model()
        a = model.predict(environments, X, history)
        b = model.predict(environments, X, history)
        np.testing.assert_allclose(a, b, atol=0)

    def test_same_seed_same_model(self):
        m1, environments, X, history = _fitted_model(seed=0)
        m2, _, _, _ = _fitted_model(seed=0)
        np.testing.assert_allclose(
            m1.predict(environments[:10], X[:10], history[:10]),
            m2.predict(environments[:10], X[:10], history[:10]),
            atol=1e-12,
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=30))
    def test_property_prediction_length_matches_input(self, k):
        model, environments, X, history = _fitted_model()
        predictions = model.predict(environments[:k], X[:k], history[:k])
        assert predictions.shape == (k,)
        assert np.isfinite(predictions).all()

    def test_serialization_preserves_predictions_exactly(self):
        model, environments, X, history = _fitted_model()
        restored = Env2VecRegressor.from_bytes(model.to_bytes())
        np.testing.assert_allclose(
            restored.predict(environments, X, history),
            model.predict(environments, X, history),
            atol=0,
        )

    def test_unknown_env_prediction_between_extremes(self):
        """An all-unknown environment's prediction stays in a sane range."""
        model, environments, X, history = _fitted_model()
        alien = Environment("T_new", "S_new", "C_new", "B_new")
        predictions = model.predict([alien] * 20, X[:20], history[:20])
        known = model.predict(environments[:20], X[:20], history[:20])
        assert np.isfinite(predictions).all()
        # Within a generous envelope of the known-env prediction range.
        span = known.max() - known.min() + 1.0
        assert predictions.min() > known.min() - 5 * span
        assert predictions.max() < known.max() + 5 * span


class TestTrainingInvariants:
    def test_ru_series_shift_equivariance(self):
        """Shifting the whole RU series (targets AND history, which holds
        past RU values) by a constant shifts predictions by exactly that
        constant: standardization removes the offset during training and
        restores it at prediction time."""
        rng = np.random.default_rng(3)
        env = Environment("T1", "S1", "C1", "B1")
        n = 200
        environments = [env] * n
        X = rng.standard_normal((n, 3))
        history = rng.standard_normal((n, 2))
        y = 3.0 * X[:, 0] + history[:, -1]
        base = Env2VecRegressor(n_lags=2, max_epochs=10, batch_size=64, dropout=0.0, seed=0)
        base.fit(environments, X, history, y)
        shifted = Env2VecRegressor(n_lags=2, max_epochs=10, batch_size=64, dropout=0.0, seed=0)
        shifted.fit(environments, X, history + 100.0, y + 100.0)
        delta = shifted.predict(
            environments[:30], X[:30], history[:30] + 100.0
        ) - base.predict(environments[:30], X[:30], history[:30])
        np.testing.assert_allclose(delta, 100.0, atol=1e-8)

    def test_history_scaling_consistency(self):
        """History is scaled with the *target* statistics, so passing raw
        CPU values as history after fit must not explode predictions."""
        model, environments, X, history = _fitted_model()
        big_history = history * 1.0 + 40.0  # CPU-scale values
        predictions = model.predict(environments[:10], X[:10], big_history[:10])
        assert np.isfinite(predictions).all()
