"""Env2Vec model and regressor tests, plus FNN/RFNN baselines."""

import numpy as np
import pytest

from repro.core import (
    Env2VecModel,
    Env2VecRegressor,
    EnvironmentVocabulary,
    FNNRegressor,
    RFNNRegressor,
)
from repro.data import Environment
from repro.nn import Tensor

RNG = np.random.default_rng(23)


def _envs(n=3):
    base = [
        Environment("Testbed_01", "SUT_A", "Testcase_Load", "Build_S01"),
        Environment("Testbed_02", "SUT_B", "Testcase_Load", "Build_S02"),
        Environment("Testbed_01", "SUT_B", "Testcase_Endurance", "Build_D01"),
    ]
    return base[:n]


def _vocab():
    return EnvironmentVocabulary().fit(_envs())


def _synthetic_task(n_per_env=120, n_features=5, n_lags=2, seed=0):
    """Per-environment linear responses + AR term; embeddings must separate envs."""
    rng = np.random.default_rng(seed)
    envs_catalog = _envs()
    env_weights = {env: rng.standard_normal(n_features) * 2 for env in envs_catalog}
    env_base = {env: rng.uniform(30, 60) for env in envs_catalog}
    rows_env, X, history, y = [], [], [], []
    for env in envs_catalog:
        features = rng.standard_normal((n_per_env, n_features))
        target = env_base[env] + features @ env_weights[env]
        series_hist = np.stack(
            [np.roll(target, lag) for lag in range(n_lags, 0, -1)], axis=1
        )[n_lags:]
        X.append(features[n_lags:])
        history.append(series_hist)
        y.append(target[n_lags:])
        rows_env.extend([env] * (n_per_env - n_lags))
    return rows_env, np.concatenate(X), np.concatenate(history), np.concatenate(y)


class TestEnv2VecModel:
    def test_forward_shapes(self):
        model = Env2VecModel(n_features=5, n_lags=2, vocabulary=_vocab(), rng=RNG)
        out = model(
            cf=RNG.standard_normal((7, 5)),
            history=RNG.standard_normal((7, 2)),
            env=np.zeros((7, 4), dtype=np.int64),
        )
        assert out.shape == (7,)

    @pytest.mark.parametrize("head", ["hadamard", "bilinear", "mlp"])
    def test_all_heads_forward_and_backward(self, head):
        model = Env2VecModel(n_features=4, n_lags=2, vocabulary=_vocab(), head=head, rng=RNG)
        out = model(
            cf=RNG.standard_normal((5, 4)),
            history=RNG.standard_normal((5, 2)),
            env=np.zeros((5, 4), dtype=np.int64),
        )
        (out * out).sum().backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert all(grads)

    def test_hadamard_head_formula(self):
        # y' = sum(v_d ⊙ C) — verify against a manual recomputation.
        model = Env2VecModel(n_features=3, n_lags=1, vocabulary=_vocab(), dropout=0.0, rng=RNG)
        model.eval()
        cf = RNG.standard_normal((4, 3))
        history = RNG.standard_normal((4, 1))
        env = np.zeros((4, 4), dtype=np.int64)
        out = model(cf=cf, history=history, env=env).numpy()
        v_fs = model.fnn(Tensor(cf))
        v_ts = model.encoder(Tensor(history[:, :, None]))
        v_d = model.combine(Tensor.concat([v_ts, v_fs], axis=1)).numpy()
        c = model.embeddings(env).numpy()
        np.testing.assert_allclose(out, (v_d * c).sum(axis=1), atol=1e-12)

    def test_dense_layer_matches_embedding_dim(self):
        model = Env2VecModel(n_features=3, n_lags=1, vocabulary=_vocab(), embedding_dim=7, rng=RNG)
        assert model.combine.out_features == model.embeddings.output_dim == 28

    def test_different_envs_different_predictions(self):
        model = Env2VecModel(n_features=3, n_lags=1, vocabulary=_vocab(), dropout=0.0, rng=RNG)
        model.eval()
        cf = np.zeros((2, 3))
        history = np.zeros((2, 1))
        vocab = model.embeddings.vocabulary
        env_ids = vocab.encode(_envs(2))
        out = model(cf=cf, history=history, env=env_ids).numpy()
        assert out[0] != pytest.approx(out[1])

    def test_input_validation(self):
        model = Env2VecModel(n_features=3, n_lags=2, vocabulary=_vocab(), rng=RNG)
        with pytest.raises(ValueError):
            model(cf=np.zeros((2, 4)), history=np.zeros((2, 2)), env=np.zeros((2, 4), dtype=int))
        with pytest.raises(ValueError):
            model(cf=np.zeros((2, 3)), history=np.zeros((2, 3)), env=np.zeros((2, 4), dtype=int))
        with pytest.raises(ValueError):
            Env2VecModel(n_features=3, n_lags=0, vocabulary=_vocab())
        with pytest.raises(ValueError):
            Env2VecModel(n_features=3, n_lags=1, vocabulary=_vocab(), head="attention")


class TestEnv2VecRegressor:
    def test_learns_multi_environment_response(self):
        envs, X, history, y = _synthetic_task()
        split = int(len(y) * 0.8)
        model = Env2VecRegressor(n_lags=2, max_epochs=40, batch_size=64, dropout=0.0, seed=0)
        model.fit(
            envs[:split],
            X[:split],
            history[:split],
            y[:split],
            val=(envs[split:], X[split:], history[split:], y[split:]),
        )
        preds = model.predict(envs[split:], X[split:], history[split:])
        mae = np.abs(preds - y[split:]).mean()
        assert mae < y.std() * 0.5

    def test_beats_env_blind_pooled_model(self):
        """Env2Vec (embeddings) must beat RFNN_all (no embeddings) when
        environments have different responses — the §4.1.4 claim."""
        envs, X, history, y = _synthetic_task(n_per_env=150, seed=3)
        split = int(len(y) * 0.8)
        env2vec = Env2VecRegressor(n_lags=2, max_epochs=30, batch_size=64, dropout=0.0, seed=0)
        env2vec.fit(envs[:split], X[:split], history[:split], y[:split])
        rfnn_all = RFNNRegressor(n_lags=2, max_epochs=30, batch_size=64, dropout=0.0, seed=0)
        rfnn_all.fit(X[:split], history[:split], y[:split])
        mae_env2vec = np.abs(env2vec.predict(envs[split:], X[split:], history[split:]) - y[split:]).mean()
        mae_rfnn = np.abs(rfnn_all.predict(X[split:], history[split:]) - y[split:]).mean()
        assert mae_env2vec < mae_rfnn

    def test_predict_unseen_environment_runs(self):
        envs, X, history, y = _synthetic_task(n_per_env=60)
        model = Env2VecRegressor(n_lags=2, max_epochs=5, batch_size=64, seed=0)
        model.fit(envs, X, history, y)
        unseen = Environment("Testbed_02", "SUT_A", "Testcase_Endurance", "Build_S02")
        preds = model.predict([unseen] * 4, X[:4], history[:4])
        assert np.isfinite(preds).all()
        coverage = model.coverage(unseen)
        assert all(coverage.values())  # composed of known field values

    def test_coverage_reports_unknown_fields(self):
        envs, X, history, y = _synthetic_task(n_per_env=60)
        model = Env2VecRegressor(n_lags=2, max_epochs=2, seed=0)
        model.fit(envs, X, history, y)
        alien = Environment("Testbed_99", "SUT_A", "Testcase_Load", "Build_S01")
        assert model.coverage(alien)["testbed"] is False

    def test_embed_environments_shape(self):
        envs, X, history, y = _synthetic_task(n_per_env=60)
        model = Env2VecRegressor(n_lags=2, embedding_dim=10, max_epochs=2, seed=0)
        model.fit(envs, X, history, y)
        matrix = model.embed_environments(_envs())
        assert matrix.shape == (3, 40)

    def test_misaligned_inputs_rejected(self):
        envs, X, history, y = _synthetic_task(n_per_env=60)
        model = Env2VecRegressor(n_lags=2, max_epochs=2, seed=0)
        with pytest.raises(ValueError):
            model.fit(envs[:-1], X, history, y)
        with pytest.raises(ValueError):
            model.fit(envs, X, history[:, :1], y)

    def test_unfitted_raises(self):
        model = Env2VecRegressor()
        with pytest.raises(RuntimeError):
            model.predict(_envs(1), np.zeros((1, 3)), np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            model.embed_environments(_envs())
        with pytest.raises(RuntimeError):
            model.coverage(_envs()[0])


class TestBaselines:
    def test_fnn_learns_nonlinear_response(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((600, 4))
        y = 40 + 3 * X[:, 0] ** 2 - 2 * X[:, 1]
        model = FNNRegressor(hidden=128, lr=0.03, max_epochs=200, seed=0)
        model.fit(X[:500], y[:500])
        mae = np.abs(model.predict(X[500:]) - y[500:]).mean()
        # A linear model cannot get below ~2.7 MAE on this quadratic target;
        # the FNN must do far better.
        assert mae < 1.0

    def test_rfnn_uses_history(self):
        rng = np.random.default_rng(1)
        n = 600
        X = rng.standard_normal((n, 3))
        prev = rng.uniform(30, 70, (n, 2))
        y = 0.7 * prev[:, -1] + 5 * X[:, 0]
        model = RFNNRegressor(n_lags=2, max_epochs=40, dropout=0.0, seed=0)
        model.fit(X[:500], prev[:500], y[:500])
        mae = np.abs(model.predict(X[500:], prev[500:]) - y[500:]).mean()
        assert mae < y.std() * 0.4

    def test_rfnn_rejects_wrong_lag_count(self):
        model = RFNNRegressor(n_lags=3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 2)), np.zeros((10, 2)), np.zeros(10))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            FNNRegressor().predict(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            RFNNRegressor().predict(np.zeros((2, 2)), np.zeros((2, 2)))
