"""Unseen-environment protocol tests (§4.3)."""

import pytest

from repro.core import EnvironmentVocabulary, blind_chains, composable, field_coverage
from repro.data import Environment, TelecomConfig, generate_telecom


def _dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=12,
            n_testbeds=5,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=3,
            include_rare_testbed=False,
            seed=9,
        )
    )


class TestBlindChains:
    def test_blinded_chain_environments_absent_from_training(self):
        dataset = _dataset()
        split = blind_chains(dataset, dataset.focus_indices)
        blinded_keys = set(split.blinded_keys)
        training_keys = {env.chain_key for env, _, _ in split.training}
        assert not blinded_keys & training_keys

    def test_held_out_are_the_current_builds(self):
        dataset = _dataset()
        split = blind_chains(dataset, dataset.focus_indices)
        assert len(split.held_out) == len(dataset.focus_indices)
        for execution, index in zip(split.held_out, dataset.focus_indices):
            assert execution is dataset.chains[index].current

    def test_training_pool_smaller_than_full(self):
        dataset = _dataset()
        full = len(dataset.history_training_series())
        split = blind_chains(dataset, dataset.focus_indices)
        assert len(split.training) < full

    def test_empty_blind_set_keeps_everything(self):
        dataset = _dataset()
        split = blind_chains(dataset, [])
        assert len(split.training) == len(dataset.history_training_series())
        assert split.held_out == []

    def test_out_of_range_index(self):
        dataset = _dataset()
        with pytest.raises(IndexError):
            blind_chains(dataset, [999])

    def test_blinded_env_values_still_covered_elsewhere(self):
        """The §4.3 premise: unseen environments are composable from EM
        values that other chains do cover."""
        dataset = _dataset()
        split = blind_chains(dataset, dataset.focus_indices)
        vocab = EnvironmentVocabulary().fit([env for env, _, _ in split.training])
        composable_count = sum(
            composable(execution.environment, vocab) for execution in split.held_out
        )
        # With few testbeds/SUTs/testcases, most blinded envs remain composable
        # in at least testbed/sut/testcase; builds may genuinely be new.
        known_fields = [
            vocab.is_known(execution.environment) for execution in split.held_out
        ]
        assert all(k["sut"] for k in known_fields)
        assert composable_count >= 0  # smoke: no crash; see per-field assertions


class TestFieldCoverage:
    def test_counts(self):
        envs = [
            Environment("Testbed_01", "SUT_A", "Testcase_Load", "Build_S01"),
            Environment("Testbed_01", "SUT_B", "Testcase_Load", "Build_S02"),
            Environment("Testbed_02", "SUT_A", "Testcase_Endurance", "Build_S01"),
        ]
        target = Environment("Testbed_01", "SUT_A", "Testcase_Soak", "Build_S01")
        coverage = field_coverage(target, envs)
        assert coverage == {"testbed": 2, "sut": 2, "testcase": 0, "build": 2}

    def test_rare_testbed_has_low_coverage(self):
        # Table 7: the rare-testbed execution has tiny testbed coverage.
        dataset = generate_telecom(
            TelecomConfig(
                n_chains=12,
                n_testbeds=5,
                builds_per_chain=(3, 4),
                timesteps_per_build=(50, 60),
                n_focus=3,
                include_rare_testbed=True,
                seed=9,
            )
        )
        training_envs = [env for env, _, _ in dataset.history_training_series()]
        rare_chain = next(c for c in dataset.chains if c.key[0] == "Testbed_rare")
        rare_coverage = field_coverage(rare_chain.current.environment, training_envs)
        other = dataset.chains[0]
        other_coverage = field_coverage(other.current.environment, training_envs)
        assert rare_coverage["testbed"] <= other_coverage["testbed"]
        assert rare_coverage["testbed"] == 1  # only its own single history build


class TestComposable:
    def test_fully_known_env_is_composable(self):
        envs = [
            Environment("Testbed_01", "SUT_A", "Testcase_Load", "Build_S01"),
            Environment("Testbed_02", "SUT_B", "Testcase_Soak", "Build_D01"),
        ]
        vocab = EnvironmentVocabulary().fit(envs)
        mixed = Environment("Testbed_02", "SUT_A", "Testcase_Soak", "Build_S01")
        assert composable(mixed, vocab)

    def test_new_testbed_not_composable(self):
        envs = [Environment("Testbed_01", "SUT_A", "Testcase_Load", "Build_S01")]
        vocab = EnvironmentVocabulary().fit(envs)
        alien = Environment("Testbed_99", "SUT_A", "Testcase_Load", "Build_S01")
        assert not composable(alien, vocab)
