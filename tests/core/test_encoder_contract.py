"""Env2VecRegressor encoder selection through the Estimator contract.

Parametrized over every registered encoder: the choice must survive
``get_params``/``clone``, training, compiled prediction (≤1e-10 parity),
and ``to_bytes``/``from_bytes`` — plus the deprecated alias spellings.
"""

import numpy as np
import pytest

from repro.core.baselines import RFNNRegressor
from repro.core.model import Env2VecModel, Env2VecRegressor
from repro.data.environment import Environment
from repro.ml.base import Estimator
from repro.nn import available_encoders

N_LAGS = 3
FAST = dict(
    n_lags=N_LAGS,
    embedding_dim=3,
    fnn_hidden=6,
    gru_hidden=4,
    max_epochs=2,
    batch_size=32,
    seed=3,
)


def _environments(n: int) -> list[Environment]:
    envs = [
        Environment(
            testbed=f"Testbed_{i % 3:02d}",
            sut="SUT_A",
            testcase="Testcase_Load",
            build=f"Build_S{i % 2:02d}",
        )
        for i in range(3)
    ]
    return [envs[i % len(envs)] for i in range(n)]


def _training_data(n: int = 80, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, 4))
    history = rng.standard_normal((n, N_LAGS))
    y = X[:, 0] + 0.5 * history[:, -1] + rng.normal(0, 0.1, n)
    return _environments(n), X, history, y


class TestEstimatorContract:
    def test_is_estimator(self):
        assert issubclass(Env2VecRegressor, Estimator)
        assert issubclass(RFNNRegressor, Estimator)

    @pytest.mark.parametrize("name", available_encoders())
    def test_get_params_exposes_encoder(self, name):
        model = Env2VecRegressor(encoder=name, **FAST)
        params = model.get_params()
        assert params["encoder"] == name
        # the deprecated aliases normalize away at construction
        assert params["use_attention"] is None
        assert params["recurrent_unit"] is None

    @pytest.mark.parametrize("name", available_encoders())
    def test_clone_preserves_encoder(self, name):
        clone = Env2VecRegressor(encoder=name, **FAST).clone()
        assert clone.encoder == name
        assert not clone._fitted

    def test_alias_params_clone_cleanly(self):
        model = Env2VecRegressor(recurrent_unit="lstm", use_attention=True, **FAST)
        assert model.encoder == "lstm_attention"
        assert model.clone().encoder == "lstm_attention"

    def test_unknown_encoder_lists_registered(self):
        with pytest.raises(ValueError, match="registered encoders"):
            Env2VecRegressor(encoder="transformer", **FAST)
        with pytest.raises(ValueError, match="registered encoders"):
            RFNNRegressor(encoder="transformer")

    def test_both_spellings_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            Env2VecRegressor(encoder="gru", use_attention=True, **FAST)

    def test_require_fitted(self):
        model = Env2VecRegressor(**FAST)
        with pytest.raises(RuntimeError, match="not fitted"):
            model._require_fitted()


@pytest.mark.parametrize("name", available_encoders())
class TestEveryEncoderTrains:
    def test_fit_predict_roundtrip(self, name):
        envs, X, history, y = _training_data()
        model = Env2VecRegressor(encoder=name, **FAST).fit(envs, X, history, y)
        assert model._fitted
        assert model.model.encoder_name == name

        compiled = model.predict(envs[:16], X[:16], history[:16])
        eager = model.predict(envs[:16], X[:16], history[:16], compiled=False)
        np.testing.assert_allclose(compiled, eager, atol=1e-10)

        restored = Env2VecRegressor.from_bytes(model.to_bytes())
        assert restored.encoder == name
        assert restored._fitted
        np.testing.assert_array_equal(
            restored.predict(envs[:16], X[:16], history[:16]), compiled
        )


class TestAliasEquivalence:
    """Alias spellings must hit the exact same RNG draw order as encoder=."""

    @pytest.mark.parametrize(
        ("alias_kwargs", "name"),
        [
            ({"recurrent_unit": "gru"}, "gru"),
            ({"recurrent_unit": "lstm"}, "lstm"),
            ({"use_attention": True}, "attention"),
            ({"recurrent_unit": "lstm", "use_attention": True}, "lstm_attention"),
        ],
    )
    def test_alias_and_encoder_fit_identically(self, alias_kwargs, name):
        envs, X, history, y = _training_data(n=60)
        via_alias = Env2VecRegressor(**alias_kwargs, **FAST).fit(envs, X, history, y)
        via_name = Env2VecRegressor(encoder=name, **FAST).fit(envs, X, history, y)
        assert via_alias.to_bytes() == via_name.to_bytes()

    def test_model_level_back_compat_properties(self):
        envs, X, history, y = _training_data(n=60)
        model = Env2VecRegressor(encoder="lstm_attention", **FAST).fit(envs, X, history, y)
        assert model.model.use_attention is True
        assert model.model.recurrent_unit == "lstm"
        plain = Env2VecRegressor(**FAST).fit(envs, X, history, y)
        assert plain.model.use_attention is False
        assert plain.model.recurrent_unit == "gru"


def test_legacy_blob_alias_keys_still_load():
    """from_bytes resolves pre-registry hyper dicts (use_attention/recurrent_unit)."""
    import io
    import json

    import numpy as np_

    envs, X, history, y = _training_data(n=60)
    model = Env2VecRegressor(use_attention=True, **FAST).fit(envs, X, history, y)
    blob = model.to_bytes()

    # rewrite the config to the legacy schema
    with np_.load(io.BytesIO(blob)) as archive:
        arrays = {key: archive[key] for key in archive.files}
    config = json.loads(arrays["__config__"].tobytes().decode("utf-8"))
    hyper = config["hyper"]
    del hyper["encoder"]
    hyper["use_attention"] = True
    hyper["recurrent_unit"] = "gru"
    arrays["__config__"] = np_.frombuffer(
        json.dumps(config).encode("utf-8"), dtype=np_.uint8
    )
    buffer = io.BytesIO()
    np_.savez(buffer, **arrays)

    restored = Env2VecRegressor.from_bytes(buffer.getvalue())
    assert restored.encoder == "attention"
    np_.testing.assert_array_equal(
        restored.predict(envs[:8], X[:8], history[:8]),
        model.predict(envs[:8], X[:8], history[:8]),
    )


@pytest.mark.parametrize("name", ["gru", "lstm", "bidirectional"])
def test_rfnn_regressor_encoder_choice(name):
    rng = np.random.default_rng(1)
    X = rng.standard_normal((60, 4))
    history = rng.standard_normal((60, 2))
    y = X[:, 0] + history[:, -1]
    model = RFNNRegressor(
        n_lags=2, fnn_hidden=6, gru_hidden=4, dense_dim=5, max_epochs=2, encoder=name
    )
    assert model.clone().encoder == name
    model.fit(X, history, y)
    assert model._fitted
    assert model.model.encoder.name == name
    assert model.predict(X[:10], history[:10]).shape == (10,)


def test_env2vec_model_direct_encoder_param():
    from repro.core.embeddings import EnvironmentVocabulary

    vocab = EnvironmentVocabulary().fit(_environments(6))
    model = Env2VecModel(
        n_features=4,
        n_lags=N_LAGS,
        vocabulary=vocab,
        encoder="bidirectional",
        gru_hidden=4,
        rng=np.random.default_rng(0),
    )
    # combine sizes itself from output_dim (2 * hidden for bidirectional)
    assert model.combine.in_features == model.fnn.out_features + 8
