"""Incremental retraining: vocabulary extension + fine_tune (§4.3)."""

import numpy as np
import pytest

from repro.core import Env2VecRegressor, EnvironmentEmbeddings, EnvironmentVocabulary
from repro.data import Environment
from repro.ml import LabelEncoder

RNG = np.random.default_rng(51)


def _env(testbed="T1", sut="S1", testcase="C1", build="B1"):
    return Environment(testbed, sut, testcase, build)


class TestLabelEncoderExtend:
    def test_existing_ids_stable(self):
        encoder = LabelEncoder().fit(["a", "b", "c"])
        before = encoder.transform(["a", "b", "c"]).tolist()
        added = encoder.extend(["d", "b", "e"])
        assert added == ["d", "e"]
        assert encoder.transform(["a", "b", "c"]).tolist() == before

    def test_new_values_get_next_ids(self):
        encoder = LabelEncoder().fit(["a", "b"])
        encoder.extend(["z"])
        assert encoder.transform(["z"])[0] == 2
        assert encoder.unknown_id == 3

    def test_extend_idempotent(self):
        encoder = LabelEncoder().fit(["a"])
        encoder.extend(["b"])
        assert encoder.extend(["b"]) == []

    def test_extend_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().extend(["a"])


class TestVocabularyExtend:
    def test_extend_reports_per_field_additions(self):
        vocab = EnvironmentVocabulary().fit([_env()])
        added = vocab.extend([_env(testbed="T2", build="B2")])
        assert added["testbed"] == ["T2"]
        assert added["build"] == ["B2"]
        assert added["sut"] == []
        assert vocab.is_known(_env(testbed="T2", build="B2")) == {
            "testbed": True,
            "sut": True,
            "testcase": True,
            "build": True,
        }

    def test_old_encodings_unchanged(self):
        envs = [_env(), _env(sut="S2")]
        vocab = EnvironmentVocabulary().fit(envs)
        before = vocab.encode(envs)
        vocab.extend([_env(sut="S3", testcase="C9")])
        np.testing.assert_array_equal(vocab.encode(envs), before)


class TestGrowTables:
    def test_rows_inserted_before_unknown(self):
        vocab = EnvironmentVocabulary().fit([_env()])
        emb = EnvironmentEmbeddings(vocab, embedding_dim=4, rng=RNG)
        old_known = emb.tables["build"].weight.numpy()[0].copy()
        old_unk = emb.tables["build"].weight.numpy()[-1].copy()
        added = vocab.extend([_env(build="B2"), _env(build="B3")])
        emb.grow_tables(added)
        table = emb.tables["build"].weight.numpy()
        assert table.shape == (4, 4)  # B1, B2, B3, <unk>
        np.testing.assert_allclose(table[0], old_known)  # existing row kept
        np.testing.assert_allclose(table[-1], old_unk)  # unk stays last
        # New rows start near the unk embedding.
        assert np.linalg.norm(table[1] - old_unk) < 0.1
        assert np.linalg.norm(table[2] - old_unk) < 0.1

    def test_lookup_consistent_after_growth(self):
        vocab = EnvironmentVocabulary().fit([_env()])
        emb = EnvironmentEmbeddings(vocab, embedding_dim=3, rng=RNG)
        before = emb.embed_environments([_env()])
        emb.grow_tables(vocab.extend([_env(build="B2")]))
        after = emb.embed_environments([_env()])
        np.testing.assert_allclose(before, after)

    def test_noop_when_nothing_added(self):
        vocab = EnvironmentVocabulary().fit([_env()])
        emb = EnvironmentEmbeddings(vocab, embedding_dim=3, rng=RNG)
        shape = emb.tables["build"].weight.shape
        emb.grow_tables({field: [] for field in vocab.fields})
        assert emb.tables["build"].weight.shape == shape


class TestFineTune:
    def _task(self, env, n, base, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, 4))
        history = rng.standard_normal((n, 2))
        y = base + 3.0 * X[:, 0] + history[:, -1]
        return [env] * n, X, history, y

    def test_adapts_to_new_environment(self):
        env_a = _env(build="B1")
        env_b = _env(build="B2")  # appears only after the initial fit
        envs_a, X_a, h_a, y_a = self._task(env_a, 400, base=40.0, seed=0)
        model = Env2VecRegressor(n_lags=2, max_epochs=30, batch_size=64, dropout=0.0, seed=0)
        model.fit(envs_a, X_a, h_a, y_a)

        envs_b, X_b, h_b, y_b = self._task(env_b, 300, base=60.0, seed=1)
        before = np.abs(model.predict(envs_b[:50], X_b[:50], h_b[:50]) - y_b[:50]).mean()
        model.fine_tune(envs_b[50:], X_b[50:], h_b[50:], y_b[50:], epochs=20)
        after = np.abs(model.predict(envs_b[:50], X_b[:50], h_b[:50]) - y_b[:50]).mean()
        assert after < before
        # The new build is now a known value with its own embedding row.
        assert model.coverage(env_b)["build"] is True

    def test_does_not_destroy_old_environment(self):
        env_a = _env(build="B1")
        env_b = _env(build="B2")
        envs_a, X_a, h_a, y_a = self._task(env_a, 400, base=40.0, seed=0)
        model = Env2VecRegressor(n_lags=2, max_epochs=30, batch_size=64, dropout=0.0, seed=0)
        model.fit(envs_a, X_a, h_a, y_a)
        baseline = np.abs(model.predict(envs_a[:50], X_a[:50], h_a[:50]) - y_a[:50]).mean()

        envs_b, X_b, h_b, y_b = self._task(env_b, 200, base=45.0, seed=1)
        model.fine_tune(envs_b, X_b, h_b, y_b, epochs=5)
        drifted = np.abs(model.predict(envs_a[:50], X_a[:50], h_a[:50]) - y_a[:50]).mean()
        # Mild drift is allowed; catastrophic forgetting is not.
        assert drifted < baseline + 0.5 * y_a.std()

    def test_validation(self):
        model = Env2VecRegressor()
        with pytest.raises(RuntimeError):
            model.fine_tune([], np.zeros((0, 2)), np.zeros((0, 2)), np.zeros(0))
        env = _env()
        envs, X, h, y = self._task(env, 50, base=40.0, seed=0)
        model = Env2VecRegressor(n_lags=2, max_epochs=2, seed=0)
        model.fit(envs, X, h, y)
        with pytest.raises(ValueError):
            model.fine_tune(envs, X, h, y, epochs=0)
        with pytest.raises(ValueError):
            model.fine_tune(envs[:-1], X, h, y)


class TestAttentionVariant:
    def test_attention_model_trains_and_roundtrips(self):
        env = _env()
        rng = np.random.default_rng(0)
        envs = [env] * 300
        X = rng.standard_normal((300, 3))
        history = rng.standard_normal((300, 4))
        # Target depends on the OLDEST lag: attention should help find it.
        y = 50.0 + 2.0 * history[:, 0] + X[:, 1]
        model = Env2VecRegressor(
            n_lags=4, use_attention=True, max_epochs=25, batch_size=64, dropout=0.0, seed=0
        )
        model.fit(envs, X, history, y)
        predictions = model.predict(envs[:20], X[:20], history[:20])
        assert np.abs(predictions - y[:20]).mean() < y.std()
        # Serialization keeps the attention parameters.
        restored = Env2VecRegressor.from_bytes(model.to_bytes())
        np.testing.assert_allclose(
            restored.predict(envs[:20], X[:20], history[:20]), predictions, atol=1e-10
        )
        assert restored.model.use_attention
