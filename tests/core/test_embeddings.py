"""EnvironmentVocabulary and EnvironmentEmbeddings tests."""

import numpy as np
import pytest

from repro.core import EnvironmentEmbeddings, EnvironmentVocabulary
from repro.data import Environment

RNG = np.random.default_rng(13)


def _envs():
    return [
        Environment("Testbed_01", "SUT_A", "Testcase_Load", "Build_S01"),
        Environment("Testbed_01", "SUT_B", "Testcase_Load", "Build_S02"),
        Environment("Testbed_02", "SUT_A", "Testcase_Endurance", "Build_D01"),
    ]


class TestVocabulary:
    def test_vocabulary_sizes_include_unknown_row(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        sizes = vocab.vocabulary_sizes()
        assert sizes == {"testbed": 3, "sut": 3, "testcase": 3, "build": 4}

    def test_encode_shape_and_determinism(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        ids = vocab.encode(_envs())
        assert ids.shape == (3, 4)
        np.testing.assert_array_equal(ids, vocab.encode(_envs()))

    def test_same_value_same_id_across_environments(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        ids = vocab.encode(_envs())
        assert ids[0, 0] == ids[1, 0]  # Testbed_01 shared
        assert ids[0, 1] == ids[2, 1]  # SUT_A shared

    def test_unknown_values_map_to_unknown_id(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        new_env = Environment("Testbed_99", "SUT_A", "Testcase_Load", "Build_S01")
        known = vocab.is_known(new_env)
        assert known == {"testbed": False, "sut": True, "testcase": True, "build": True}
        ids = vocab.encode_one(new_env)
        # Unknown testbed gets the last row of its table.
        assert ids[0] == vocab.vocabulary_sizes()["testbed"] - 1

    def test_known_values(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        assert vocab.known_values("sut") == ["SUT_A", "SUT_B"]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            EnvironmentVocabulary().encode(_envs())

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentVocabulary().fit([])

    def test_custom_fields(self):
        vocab = EnvironmentVocabulary(fields=("sut", "build")).fit(_envs())
        assert vocab.encode(_envs()).shape == (3, 2)
        with pytest.raises(ValueError):
            EnvironmentVocabulary(fields=())


class TestEnvironmentEmbeddings:
    def test_output_dim_is_fields_times_dim(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        emb = EnvironmentEmbeddings(vocab, embedding_dim=10, rng=RNG)
        assert emb.output_dim == 40
        out = emb(vocab.encode(_envs()))
        assert out.shape == (3, 40)

    def test_concatenation_order_matches_fields(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        emb = EnvironmentEmbeddings(vocab, embedding_dim=4, rng=RNG)
        ids = vocab.encode(_envs())
        out = emb(ids).numpy()
        testbed_part = emb.tables["testbed"].weight.numpy()[ids[:, 0]]
        np.testing.assert_allclose(out[:, :4], testbed_part)
        build_part = emb.tables["build"].weight.numpy()[ids[:, 3]]
        np.testing.assert_allclose(out[:, -4:], build_part)

    def test_shared_em_values_share_embedding_slices(self):
        # Mix-and-match (§4.3): two environments sharing a testbed have
        # identical testbed slices in C.
        vocab = EnvironmentVocabulary().fit(_envs())
        emb = EnvironmentEmbeddings(vocab, embedding_dim=5, rng=RNG)
        matrix = emb.embed_environments(_envs())
        np.testing.assert_allclose(matrix[0, :5], matrix[1, :5])  # same testbed
        assert not np.allclose(matrix[0, :5], matrix[2, :5])  # different testbed

    def test_unseen_environment_composes_known_slices(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        emb = EnvironmentEmbeddings(vocab, embedding_dim=5, rng=RNG)
        unseen = Environment("Testbed_02", "SUT_B", "Testcase_Load", "Build_D01")
        matrix = emb.embed_environments(_envs() + [unseen])
        # Unseen env's testbed slice equals env 2's, sut slice equals env 1's.
        np.testing.assert_allclose(matrix[3, :5], matrix[2, :5])
        np.testing.assert_allclose(matrix[3, 5:10], matrix[1, 5:10])

    def test_gradients_flow_to_tables(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        emb = EnvironmentEmbeddings(vocab, embedding_dim=3, rng=RNG)
        out = emb(vocab.encode(_envs()))
        out.sum().backward()
        assert emb.tables["testbed"].weight.grad is not None
        # Testbed_01 appears twice -> its row's gradient is 2x the others'.
        ids = vocab.encode(_envs())
        grad = emb.tables["testbed"].weight.grad
        np.testing.assert_allclose(grad[ids[0, 0]], 2.0)
        np.testing.assert_allclose(grad[ids[2, 0]], 1.0)

    def test_bad_id_shape_rejected(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        emb = EnvironmentEmbeddings(vocab, rng=RNG)
        with pytest.raises(ValueError):
            emb(np.zeros((3, 2), dtype=np.int64))

    def test_invalid_embedding_dim(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        with pytest.raises(ValueError):
            EnvironmentEmbeddings(vocab, embedding_dim=0)

    def test_parameters_cover_all_tables(self):
        vocab = EnvironmentVocabulary().fit(_envs())
        emb = EnvironmentEmbeddings(vocab, embedding_dim=2, rng=RNG)
        assert len(list(emb.parameters())) == 4
