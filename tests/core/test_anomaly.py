"""Contextual anomaly detection tests (gamma rule, 5% filter, alarm scoring)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Alarm,
    AlarmScore,
    ContextualAnomalyDetector,
    GaussianErrorModel,
    merge_flags_into_alarms,
    score_alarms,
)


class TestGaussianErrorModel:
    def test_fit_mean_sigma(self):
        errors = np.array([1.0, 2.0, 3.0, 4.0])
        model = GaussianErrorModel.fit(errors)
        assert model.mu == pytest.approx(2.5)
        # Sample std: chains have few prior builds, so sigma is Bessel-
        # corrected (ddof=1) to avoid the small-n low bias that over-alarms.
        assert model.sigma == pytest.approx(errors.std(ddof=1))
        assert model.sigma > errors.std()

    def test_fit_uses_sample_std_not_population(self):
        errors = np.array([0.0, 2.0])
        model = GaussianErrorModel.fit(errors)
        assert model.sigma == pytest.approx(np.sqrt(2.0))  # ddof=1, not 1.0

    def test_zscore(self):
        model = GaussianErrorModel(mu=2.0, sigma=0.5)
        np.testing.assert_allclose(model.zscore(np.array([2.0, 3.0])), [0.0, 2.0])

    def test_is_anomalous_two_sided(self):
        model = GaussianErrorModel(mu=0.0, sigma=1.0)
        flags = model.is_anomalous(np.array([-3.0, -1.0, 0.0, 1.0, 3.0]), gamma=2.0)
        np.testing.assert_array_equal(flags, [True, False, False, False, True])

    def test_gamma_monotonicity(self):
        rng = np.random.default_rng(0)
        errors = rng.normal(0, 1, 500)
        model = GaussianErrorModel.fit(errors)
        counts = [model.is_anomalous(errors, gamma).sum() for gamma in (1.0, 2.0, 3.0)]
        assert counts[0] >= counts[1] >= counts[2]

    def test_degenerate_sigma_floor(self):
        model = GaussianErrorModel.fit(np.array([1.0, 1.0, 1.0]))
        assert model.sigma > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianErrorModel.fit(np.array([1.0]))
        with pytest.raises(ValueError):
            GaussianErrorModel.fit(np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            GaussianErrorModel(0, 1).is_anomalous(np.zeros(3), gamma=0.0)


class TestAlarmMerging:
    def test_consecutive_flags_merge(self):
        flags = np.array([0, 1, 1, 0, 1, 0, 0, 1, 1, 1], dtype=bool)
        deviations = np.arange(10, dtype=float)
        alarms = merge_flags_into_alarms(flags, deviations)
        assert [(a.start, a.end) for a in alarms] == [(1, 3), (4, 5), (7, 10)]
        assert alarms[0].peak_deviation == 2.0
        assert alarms[2].peak_deviation == 9.0

    def test_trailing_alarm_closed(self):
        alarms = merge_flags_into_alarms(np.array([0, 0, 1], dtype=bool), np.ones(3))
        assert alarms[-1].end == 3

    def test_no_flags_no_alarms(self):
        assert merge_flags_into_alarms(np.zeros(5, dtype=bool), np.zeros(5)) == []

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            merge_flags_into_alarms(np.zeros(5, dtype=bool), np.zeros(4))

    def test_alarm_validation(self):
        with pytest.raises(ValueError):
            Alarm(start=5, end=5, peak_deviation=1.0)
        with pytest.raises(ValueError):
            Alarm(start=-1, end=3, peak_deviation=1.0)

    def test_alarm_overlap(self):
        alarm = Alarm(start=5, end=10, peak_deviation=1.0)
        assert alarm.overlaps_interval(9, 20)
        assert alarm.overlaps_interval(0, 6)
        assert not alarm.overlaps_interval(10, 15)
        assert alarm.length == 5

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    def test_property_alarms_partition_flags(self, flag_list):
        """Union of alarm intervals == flagged timesteps; alarms are disjoint."""
        flags = np.array(flag_list, dtype=bool)
        alarms = merge_flags_into_alarms(flags, np.ones(len(flags)))
        covered = np.zeros(len(flags), dtype=bool)
        for alarm in alarms:
            assert not covered[alarm.start : alarm.end].any()  # disjoint
            covered[alarm.start : alarm.end] = True
        np.testing.assert_array_equal(covered, flags)


class TestContextualAnomalyDetector:
    def _series(self, n=200, fault=(120, 140), magnitude=15.0, noise=1.0, seed=0):
        rng = np.random.default_rng(seed)
        observed = 50.0 + rng.normal(0, noise, n)
        predicted = np.full(n, 50.0)
        observed[fault[0] : fault[1]] += magnitude
        return predicted, observed

    def test_detects_injected_shift(self):
        predicted, observed = self._series()
        detector = ContextualAnomalyDetector(gamma=2.0)
        error_model = detector.fit_error_model(predicted[:100], observed[:100])
        report = detector.detect(predicted, observed, error_model)
        assert report.n_alarms >= 1
        assert any(a.overlaps_interval(120, 140) for a in report.alarms)
        # Nothing flagged well outside the fault.
        assert not report.flags[:100].any()

    def test_absolute_filter_suppresses_small_deviations(self):
        # A tight error model would flag a 3%-CPU shift, but the 5% absolute
        # filter (§4.2.2) must suppress it.
        predicted, observed = self._series(magnitude=3.0, noise=0.2)
        detector = ContextualAnomalyDetector(gamma=2.0, abs_threshold=5.0)
        error_model = detector.fit_error_model(predicted[:100], observed[:100])
        report = detector.detect(predicted, observed, error_model)
        assert report.n_alarms == 0
        unfiltered = ContextualAnomalyDetector(gamma=2.0, abs_threshold=0.0)
        assert unfiltered.detect(predicted, observed, error_model).n_alarms >= 1

    def test_gamma_tradeoff(self):
        # Higher gamma -> stricter -> fewer or equal flags (§3.2).
        predicted, observed = self._series(magnitude=8.0, noise=2.5)
        flags = []
        for gamma in (1.0, 2.0, 3.0):
            detector = ContextualAnomalyDetector(gamma=gamma)
            error_model = detector.fit_error_model(predicted[:100], observed[:100])
            flags.append(detector.detect(predicted, observed, error_model).flags.sum())
        assert flags[0] >= flags[1] >= flags[2]

    def test_self_calibrated_mode(self):
        predicted, observed = self._series()
        detector = ContextualAnomalyDetector(gamma=2.0)
        report = detector.detect_self_calibrated(predicted, observed)
        assert any(a.overlaps_interval(120, 140) for a in report.alarms)

    def test_clean_series_rarely_flagged(self):
        rng = np.random.default_rng(1)
        observed = 50.0 + rng.normal(0, 1.0, 300)
        predicted = np.full(300, 50.0)
        detector = ContextualAnomalyDetector(gamma=3.0)
        error_model = detector.fit_error_model(predicted[:150], observed[:150])
        report = detector.detect(predicted, observed, error_model)
        assert report.n_alarms == 0  # |error| never near 5% with sigma=1

    def test_validation(self):
        with pytest.raises(ValueError):
            ContextualAnomalyDetector(gamma=0)
        with pytest.raises(ValueError):
            ContextualAnomalyDetector(abs_threshold=-1)
        detector = ContextualAnomalyDetector()
        with pytest.raises(ValueError):
            detector.detect(np.zeros(3), np.zeros(4), GaussianErrorModel(0, 1))
        with pytest.raises(ValueError):
            detector.fit_error_model(np.zeros(3), np.zeros(4))

    def test_report_properties(self):
        predicted, observed = self._series()
        detector = ContextualAnomalyDetector(gamma=2.0)
        report = detector.detect_self_calibrated(predicted, observed)
        assert 0.0 <= report.flagged_fraction <= 1.0
        assert report.gamma == 2.0
        assert report.errors.shape == predicted.shape


class TestAlarmScoring:
    def test_true_and_false_alarms(self):
        truth = np.zeros(100, dtype=bool)
        truth[40:50] = True
        alarms = [
            Alarm(42, 46, 10.0),  # overlaps truth -> correct
            Alarm(70, 75, 8.0),  # false positive
        ]
        score = score_alarms(alarms, truth)
        assert score.n_alarms == 2
        assert score.correct_alarms == 1
        assert score.true_alarm_rate == pytest.approx(0.5)
        assert score.false_alarm_rate == pytest.approx(0.5)

    def test_no_alarms(self):
        score = score_alarms([], np.zeros(10, dtype=bool))
        assert score.true_alarm_rate == 0.0
        assert score.false_alarm_rate == 0.0

    def test_perfect_detector(self):
        truth = np.zeros(50, dtype=bool)
        truth[10:20] = True
        score = score_alarms([Alarm(12, 18, 5.0)], truth)
        assert score.true_alarm_rate == 1.0
        assert score.false_alarm_rate == 0.0

    def test_scores_add(self):
        a = AlarmScore(n_alarms=3, correct_alarms=2)
        b = AlarmScore(n_alarms=1, correct_alarms=1)
        total = a + b
        assert total.n_alarms == 4
        assert total.correct_alarms == 3
        assert total.true_alarm_rate == pytest.approx(0.75)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_rates_sum_to_one_when_alarms_exist(self, seed):
        rng = np.random.default_rng(seed)
        n = 50
        truth = rng.random(n) < 0.2
        flags = rng.random(n) < 0.3
        alarms = merge_flags_into_alarms(flags, np.ones(n))
        score = score_alarms(alarms, truth)
        if score.n_alarms:
            assert score.true_alarm_rate + score.false_alarm_rate == pytest.approx(1.0)
        assert 0 <= score.correct_alarms <= score.n_alarms
