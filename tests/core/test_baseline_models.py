"""Direct tests on the FNN/RFNN autograd modules (below the regressor API)."""

import numpy as np
import pytest

from repro.core import FNNModel, RFNNModel
from repro.nn import Tensor

RNG = np.random.default_rng(71)


class TestFNNModel:
    def test_forward_shape(self):
        model = FNNModel(5, hidden=8, rng=RNG)
        out = model(RNG.standard_normal((7, 5)))
        assert out.shape == (7,)

    def test_single_hidden_layer_structure(self):
        # Paper §4.1.3: the FNN baseline has exactly one hidden layer.
        model = FNNModel(5, hidden=8, rng=RNG)
        params = dict(model.named_parameters())
        assert set(params) == {
            "hidden_layer.weight",
            "hidden_layer.bias",
            "output.weight",
            "output.bias",
        }
        assert params["hidden_layer.weight"].shape == (5, 8)
        assert params["output.weight"].shape == (8, 1)

    def test_dropout_only_in_training(self):
        model = FNNModel(4, hidden=16, dropout=0.9, rng=np.random.default_rng(0))
        x = RNG.standard_normal((30, 4))
        model.eval()
        a = model(x).numpy()
        b = model(x).numpy()
        np.testing.assert_allclose(a, b)

    def test_gradients_reach_all_parameters(self):
        model = FNNModel(3, hidden=4, rng=RNG)
        (model(RNG.standard_normal((6, 3))) ** 2).sum().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name


class TestRFNNModel:
    def test_forward_shape(self):
        model = RFNNModel(5, n_lags=3, rng=RNG)
        out = model(
            cf=RNG.standard_normal((7, 5)), history=RNG.standard_normal((7, 3))
        )
        assert out.shape == (7,)

    def test_combines_both_branches(self):
        """Output must depend on both the CF branch and the history branch."""
        model = RFNNModel(2, n_lags=2, dropout=0.0, rng=RNG)
        model.eval()
        cf = RNG.standard_normal((4, 2))
        history = RNG.standard_normal((4, 2))
        base = model(cf=cf, history=history).numpy()
        cf_shift = model(cf=cf + 1.0, history=history).numpy()
        history_shift = model(cf=cf, history=history + 1.0).numpy()
        assert not np.allclose(base, cf_shift)
        assert not np.allclose(base, history_shift)

    def test_input_validation(self):
        model = RFNNModel(3, n_lags=2, rng=RNG)
        with pytest.raises(ValueError):
            model(cf=np.zeros((2, 4)), history=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            model(cf=np.zeros((2, 3)), history=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            RFNNModel(3, n_lags=0)

    def test_dense_head_is_linear_regression(self):
        """The prediction is an affine map of v_d (§4.1.3: 'made by the
        dense layer (V_d) with regression')."""
        model = RFNNModel(2, n_lags=1, dense_dim=6, dropout=0.0, rng=RNG)
        model.eval()
        cf = RNG.standard_normal((3, 2))
        history = RNG.standard_normal((3, 1))
        v_fs = model.fnn(Tensor(cf))
        v_ts = model.encoder(Tensor(history[:, :, None]))
        v_d = model.combine(Tensor.concat([v_ts, v_fs], axis=1)).numpy()
        expected = v_d @ model.output.weight.numpy().reshape(-1) + model.output.bias.numpy()[0]
        np.testing.assert_allclose(model(cf=cf, history=history).numpy(), expected, atol=1e-12)

    def test_gradients_flow_through_gru(self):
        model = RFNNModel(2, n_lags=4, rng=RNG)
        out = model(cf=RNG.standard_normal((5, 2)), history=RNG.standard_normal((5, 4)))
        (out**2).sum().backward()
        assert model.encoder.gru.cell.w_z.grad is not None
        assert np.abs(model.encoder.gru.cell.w_z.grad).sum() > 0
