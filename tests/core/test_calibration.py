"""Error-calibration and quantile-detector tests (§3.2 caveat)."""

import numpy as np
import pytest

from repro.core import (
    ContextualAnomalyDetector,
    GaussianErrorModel,
    QuantileErrorModel,
    calibration_report,
    gamma_to_quantile,
)


class TestGammaToQuantile:
    def test_known_values(self):
        assert gamma_to_quantile(1.0) == pytest.approx(0.1587, abs=1e-4)
        assert gamma_to_quantile(2.0) == pytest.approx(0.0228, abs=1e-4)
        assert gamma_to_quantile(3.0) == pytest.approx(0.00135, abs=1e-5)

    def test_monotone_decreasing(self):
        values = [gamma_to_quantile(g) for g in (0.5, 1.0, 2.0, 3.0)]
        assert values == sorted(values, reverse=True)

    def test_invalid(self):
        with pytest.raises(ValueError):
            gamma_to_quantile(0.0)


class TestCalibrationReport:
    def test_gaussian_errors_pass(self):
        errors = np.random.default_rng(0).normal(0, 2, 3000)
        report = calibration_report(errors)
        assert report.looks_gaussian
        # Empirical tails match Gaussian predictions closely.
        for empirical, predicted in report.tail_mass.values():
            assert empirical == pytest.approx(predicted, abs=0.02)
        assert report.worst_tail_inflation() < 1.6

    def test_heavy_tailed_errors_flagged(self):
        errors = np.random.default_rng(1).standard_t(df=3, size=3000)
        report = calibration_report(errors)
        assert not report.looks_gaussian
        assert report.excess_kurtosis > 1.0
        # At gamma=3 the empirical tail far exceeds the Gaussian mass.
        empirical, predicted = report.tail_mass[3.0]
        assert empirical > predicted * 2

    def test_table_text(self):
        errors = np.random.default_rng(2).normal(0, 1, 100)
        text = calibration_report(errors).table()
        assert "normality" in text and "γ" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            calibration_report(np.zeros(5))
        with pytest.raises(ValueError):
            calibration_report(np.array([np.nan] * 30))


class TestQuantileErrorModel:
    def test_agrees_with_gaussian_on_normal_errors(self):
        errors = np.random.default_rng(0).normal(0, 2, 5000)
        gaussian = GaussianErrorModel.fit(errors)
        quantile = QuantileErrorModel.fit(errors)
        probe = np.linspace(-8, 8, 400)
        gaussian_flags = gaussian.is_anomalous(probe, 2.0)
        quantile_flags = quantile.is_anomalous(probe, 2.0)
        agreement = (gaussian_flags == quantile_flags).mean()
        assert agreement > 0.97

    def test_heavy_tails_widen_bounds(self):
        errors = np.random.default_rng(1).standard_t(df=3, size=5000)
        gaussian = GaussianErrorModel.fit(errors)
        quantile = QuantileErrorModel.fit(errors)
        lower, upper = quantile.bounds(3.0)
        # Quantile bounds at gamma=3 must be wider than mu +/- 3 sigma is
        # NOT guaranteed... but the quantile model flags ~the right mass:
        flagged = quantile.is_anomalous(errors, 3.0).mean()
        assert flagged == pytest.approx(2 * gamma_to_quantile(3.0), rel=0.5)
        # while the Gaussian model over-flags heavy tails.
        assert gaussian.is_anomalous(errors, 3.0).mean() > flagged

    def test_bounds_ordered_and_monotone_in_gamma(self):
        errors = np.random.default_rng(2).normal(0, 1, 500)
        model = QuantileErrorModel.fit(errors)
        l1, u1 = model.bounds(1.0)
        l2, u2 = model.bounds(2.0)
        assert l1 < u1 and l2 < u2
        assert l2 <= l1 and u2 >= u1

    def test_plugs_into_detector(self):
        rng = np.random.default_rng(3)
        history_errors = rng.normal(0, 1.5, 400)
        model = QuantileErrorModel.fit(history_errors)
        detector = ContextualAnomalyDetector(gamma=2.0)
        observed = 50.0 + rng.normal(0, 1.5, 200)
        observed[100:110] += 20.0
        predicted = np.full(200, 50.0)
        report = detector.detect(predicted, observed, model)
        assert any(a.overlaps_interval(100, 110) for a in report.alarms)

    def test_zscore_robust(self):
        errors = np.random.default_rng(4).normal(0, 1, 1000)
        model = QuantileErrorModel.fit(errors)
        z = model.zscore(np.array([0.0, 3.0]))
        assert abs(z[0]) < 0.2
        assert z[1] > 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileErrorModel.fit(np.zeros(5))
        with pytest.raises(ValueError):
            QuantileErrorModel.fit(np.array([np.inf] * 20))
