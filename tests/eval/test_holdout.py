"""Hold-out contribution analysis tests (§6)."""

import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.eval import DEFAULT_CF_GROUPS, cf_group_holdout, em_field_holdout


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=8,
            n_testbeds=4,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=2,
            include_rare_testbed=False,
            seed=2,
        )
    )


class TestCFGroupHoldout:
    def test_reports_every_group(self, dataset):
        result = cf_group_holdout(dataset, fast=True)
        assert set(result.holdout_mae) == set(DEFAULT_CF_GROUPS)
        assert result.baseline_mae > 0
        for group in DEFAULT_CF_GROUPS:
            assert result.holdout_mae[group] > 0

    def test_ranking_sorted_by_delta(self, dataset):
        result = cf_group_holdout(dataset, fast=True)
        deltas = [delta for _, delta in result.ranking()]
        assert deltas == sorted(deltas, reverse=True)

    def test_table_text(self, dataset):
        result = cf_group_holdout(
            dataset, groups={"workload": ["demand_mbps"]}, fast=True
        )
        text = result.table("CF holdout")
        assert "baseline" in text and "workload" in text

    def test_unknown_feature_rejected(self, dataset):
        with pytest.raises(ValueError, match="unknown features"):
            cf_group_holdout(dataset, groups={"bad": ["not_a_feature"]})

    def test_empty_groups_rejected(self, dataset):
        with pytest.raises(ValueError):
            cf_group_holdout(dataset, groups={})


class TestEMFieldHoldout:
    def test_reports_every_field(self, dataset):
        result = em_field_holdout(dataset, fields=("testbed", "build"), fast=True)
        assert set(result.holdout_mae) == {"testbed", "build"}

    def test_delta_computation(self, dataset):
        result = em_field_holdout(dataset, fields=("testbed",), fast=True)
        assert result.delta("testbed") == pytest.approx(
            result.holdout_mae["testbed"] - result.baseline_mae
        )

    def test_unknown_field_rejected(self, dataset):
        with pytest.raises(ValueError, match="unknown EM fields"):
            em_field_holdout(dataset, fields=("hypervisor",))
