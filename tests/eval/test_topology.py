"""Encoder-vs-topology experiment driver tests (tiny corpora, fast fits)."""

import pytest

from repro.data import ChainedTelecomConfig, TelecomConfig, generate_chained_telecom, generate_telecom
from repro.eval import (
    ENCODER_ZOO,
    TopologyComparisonResult,
    TopologyRow,
    run_encoder_topology_table,
)

SMALL = dict(
    n_chains=8,
    n_testbeds=4,
    n_focus=3,
    builds_per_chain=(2, 3),
    timesteps_per_build=(60, 70),
    include_rare_testbed=False,
    seed=2,
)
FAST_FIT = dict(max_epochs=2, batch_size=64, gru_hidden=4, fnn_hidden=8, embedding_dim=3)


@pytest.fixture(scope="module")
def result():
    independent = generate_telecom(TelecomConfig(**SMALL))
    chained = generate_chained_telecom(ChainedTelecomConfig(**SMALL))
    return run_encoder_topology_table(
        independent=independent,
        chained=chained,
        encoders=("gru", "lstm"),
        gamma=2.0,
        fast=True,
        seed=0,
        **FAST_FIT,
    )


def test_grid_covers_every_encoder_topology_pair(result):
    assert {(row.encoder, row.topology) for row in result.rows} == {
        ("gru", "independent"),
        ("gru", "chained"),
        ("lstm", "independent"),
        ("lstm", "chained"),
    }


def test_rows_carry_valid_scores(result):
    for row in result.rows:
        assert isinstance(row, TopologyRow)
        assert 0.0 <= row.f1 <= 1.0
        assert 0.0 <= row.precision <= 1.0
        assert 0.0 <= row.recall <= 1.0
        assert row.total_problems > 0
        assert 0 <= row.problems_detected <= row.total_problems


def test_row_lookup_and_f1_drop(result):
    row = result.row("gru", "chained")
    assert row.encoder == "gru" and row.topology == "chained"
    assert result.f1_drop("gru") == pytest.approx(
        result.row("gru", "independent").f1 - row.f1
    )
    with pytest.raises(KeyError):
        result.row("gru", "ring")


def test_table_is_markdown_grid(result):
    table = result.table()
    lines = table.splitlines()
    assert lines[0].startswith("| encoder |")
    assert len(lines) == 2 + 2  # header + separator + one row per encoder
    for encoder in ("gru", "lstm"):
        assert any(f"| {encoder} |" in line for line in lines)


def test_zoo_names_are_registered():
    from repro.nn import available_encoders

    assert set(ENCODER_ZOO) <= set(available_encoders())


def test_result_is_deterministic(result):
    independent = generate_telecom(TelecomConfig(**SMALL))
    chained = generate_chained_telecom(ChainedTelecomConfig(**SMALL))
    again = run_encoder_topology_table(
        independent=independent,
        chained=chained,
        encoders=("gru", "lstm"),
        gamma=2.0,
        fast=True,
        seed=0,
        **FAST_FIT,
    )
    assert isinstance(again, TopologyComparisonResult)
    for row_a, row_b in zip(again.rows, result.rows):
        assert row_a == row_b
