"""ASCII plot renderer tests."""

import numpy as np
import pytest

from repro.eval.plots import ascii_cdf, ascii_heatmap, ascii_scatter


class TestHeatmap:
    def test_dimensions(self):
        out = ascii_heatmap(np.random.default_rng(0).standard_normal((5, 30)))
        lines = out.split("\n")
        assert len(lines) == 5
        assert all(len(line) == 30 for line in lines)

    def test_column_subsampling(self):
        out = ascii_heatmap(np.ones((2, 200)), max_cols=50)
        assert len(out.split("\n")[0]) <= 100

    def test_intensity_scaling(self):
        matrix = np.array([[0.0, 1.0]])
        out = ascii_heatmap(matrix)
        assert out[0] == " "  # zero -> blank
        assert out[1] == "@"  # max -> darkest shade

    def test_zero_matrix(self):
        out = ascii_heatmap(np.zeros((2, 3)))
        assert set(out.replace("\n", "")) == {" "}

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(3))
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 2)), max_cols=0)


class TestScatter:
    def test_grid_dimensions(self):
        coords = np.random.default_rng(0).standard_normal((20, 2))
        out = ascii_scatter(coords, rows=10, cols=30)
        lines = out.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 30 for line in lines)

    def test_labels_used_as_marks(self):
        coords = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = ascii_scatter(coords, labels=["S", "D"], rows=5, cols=5)
        assert "S" in out and "D" in out

    def test_default_mark(self):
        out = ascii_scatter(np.array([[0.0, 0.0], [1.0, 1.0]]), rows=4, cols=4)
        assert "*" in out

    def test_degenerate_coordinates(self):
        # All points identical: must not divide by zero.
        out = ascii_scatter(np.zeros((3, 2)), rows=4, cols=4)
        assert "*" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((2, 2)), labels=["a"])
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((2, 2)), rows=1)


class TestCDF:
    def test_quantile_table(self):
        curves = {"a": np.array([1.0, 2.0, 3.0]), "bb": np.array([2.0, 4.0])}
        out = ascii_cdf(curves)
        assert "p50" in out and "a" in out and "bb" in out
        assert "median..max" in out

    def test_bars_scale_with_values(self):
        out = ascii_cdf({"small": np.array([0.1, 0.2]), "big": np.array([5.0, 10.0])})
        small_bar = next(line for line in out.split("\n") if line.startswith("small"))
        big_bar = next(line for line in out.split("\n") if line.startswith("big"))
        assert big_bar.count("#") >= small_bar.count("#")

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_cdf({})
        with pytest.raises(ValueError):
            ascii_cdf({"a": np.array([])})
        with pytest.raises(ValueError):
            ascii_cdf({"a": np.array([1.0])}, width=5)
