"""Metrics, CDF, running averages, and paired t-test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import RunningAverage, empirical_cdf, mae, mse, paired_t_test


class TestErrorMetrics:
    def test_mae_mse_values(self):
        y = np.array([1.0, 2.0, 3.0])
        p = np.array([2.0, 2.0, 1.0])
        assert mae(y, p) == pytest.approx(1.0)
        assert mse(y, p) == pytest.approx((1 + 0 + 4) / 3)

    def test_perfect_prediction(self):
        y = np.arange(5.0)
        assert mae(y, y) == 0.0
        assert mse(y, y) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            mse(np.zeros(0), np.zeros(0))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=10_000))
    def test_property_mse_bounds_mae(self, n, seed):
        """RMS >= MAE (Jensen), so MSE >= MAE^2."""
        rng = np.random.default_rng(seed)
        y, p = rng.standard_normal(n), rng.standard_normal(n)
        assert mse(y, p) >= mae(y, p) ** 2 - 1e-12


class TestEmpiricalCDF:
    def test_sorted_and_monotone(self):
        values, fractions = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(values, [1, 2, 3])
        np.testing.assert_allclose(fractions, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_property_cdf_reaches_one(self, values):
        ordered, fractions = empirical_cdf(values)
        assert fractions[-1] == pytest.approx(1.0)
        assert (np.diff(ordered) >= 0).all()


class TestRunningAverage:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(100)
        acc = RunningAverage()
        for value in values:
            acc.update(float(value))
        assert acc.mean == pytest.approx(values.mean())
        assert acc.std == pytest.approx(values.std())
        assert acc.count == 100

    def test_single_value(self):
        acc = RunningAverage()
        acc.update(5.0)
        assert acc.mean == 5.0
        assert acc.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningAverage().mean


class TestPairedTTest:
    def test_identical_samples_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal(30)
        result = paired_t_test(a, a + rng.normal(0, 1e-9, 30))
        assert not result.significant

    def test_clear_difference_significant(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal(30)
        b = a + 1.0 + rng.normal(0, 0.1, 30)
        result = paired_t_test(a, b)
        assert result.significant
        assert result.mean_difference == pytest.approx(-1.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [2.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0, 2.0], significance=0.0)

    def test_str_rendering(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal(10)
        b = a + 2.0 + rng.normal(0, 0.2, 10)
        text = str(paired_t_test(a, b))
        assert "t=" in text and "p=" in text
