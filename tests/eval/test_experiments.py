"""Smoke + shape tests for the experiment drivers on tiny configurations.

These verify the drivers' mechanics (dimensions, invariants, bookkeeping).
The paper-scale shape assertions live in the benchmark harness.
"""

import numpy as np
import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.eval import (
    run_anomaly_table,
    run_chain_mae,
    run_coverage_table,
    run_embedding_pca,
    run_figure1,
    run_kdn_comparison,
    run_unseen_table,
    train_env2vec_telecom,
    train_rfnn_all_telecom,
    window_history_pool,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=10,
            n_testbeds=4,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 70),
            n_focus=3,
            include_rare_testbed=True,
            fault_magnitude=(14.0, 25.0),
            seed=21,
        )
    )


@pytest.fixture(scope="module")
def models(dataset):
    env2vec = train_env2vec_telecom(dataset, fast=True, max_epochs=10)
    rfnn_all = train_rfnn_all_telecom(dataset, fast=True, max_epochs=10)
    return env2vec, rfnn_all


class TestWindowPool:
    def test_pool_dimensions(self, dataset):
        envs, X, history, y = window_history_pool(dataset.history_training_series(), 3)
        assert len(envs) == len(X) == len(history) == len(y)
        assert history.shape[1] == 3
        assert X.shape[1] == len(dataset.feature_names)

    def test_short_series_skipped(self, dataset):
        # The rare chain's 17-step history must survive n_lags=3 windowing
        # but a hypothetical n_lags >= its length would drop it silently.
        records = dataset.history_training_series()
        envs, _, _, y = window_history_pool(records, 3)
        assert len(y) == sum(max(0, len(c) - 3) for _, _, c in records)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            window_history_pool([], 3)


class TestFigure1Driver:
    def test_shapes(self, dataset):
        result = run_figure1(dataset)
        n_chains = dataset.n_chains
        assert result.weights.shape == (len(dataset.feature_names), n_chains)
        assert result.residual_quantiles.shape == (n_chains, 5)
        assert result.over_10_percent.shape == (n_chains,)
        assert len(result.chain_keys) == n_chains

    def test_weights_normalized(self, dataset):
        result = run_figure1(dataset)
        assert np.abs(result.weights).max() <= 1.0 + 1e-12

    def test_quantiles_ordered(self, dataset):
        result = run_figure1(dataset)
        assert (np.diff(result.residual_quantiles, axis=1) >= -1e-12).all()

    def test_summary_text(self, dataset):
        assert "chains" in run_figure1(dataset).summary()


class TestChainMAEDriver:
    def test_per_chain_scores(self, dataset, models):
        env2vec, rfnn_all = models
        result = run_chain_mae(dataset, env2vec, rfnn_all)
        for method in ("ridge", "ridge_ts", "rfnn_all", "env2vec"):
            assert len(result.per_chain_mae[method]) == len(result.chain_keys)
            assert (result.per_chain_mae[method] > 0).all()

    def test_cdf_and_improvement(self, dataset, models):
        env2vec, rfnn_all = models
        result = run_chain_mae(dataset, env2vec, rfnn_all)
        values, fractions = result.cdf("env2vec")
        assert fractions[-1] == pytest.approx(1.0)
        improvement = result.improvement("env2vec", "ridge_ts")
        assert improvement.shape == (len(result.chain_keys),)

    def test_tail_mean(self, dataset, models):
        env2vec, rfnn_all = models
        result = run_chain_mae(dataset, env2vec, rfnn_all)
        # Tail over the hardest chains is >= the overall mean for the
        # baseline method defining difficulty.
        assert result.tail_mean("ridge") >= 0

    def test_mean_table_text(self, dataset, models):
        env2vec, rfnn_all = models
        text = run_chain_mae(dataset, env2vec, rfnn_all).mean_table()
        assert "env2vec" in text and "MAE" in text

    def test_rfnn_optional(self, dataset, models):
        env2vec, _ = models
        result = run_chain_mae(dataset, env2vec, None)
        assert "rfnn_all" not in result.per_chain_mae


class TestAnomalyTableDriver:
    def test_rows_and_per_execution(self, dataset, models):
        env2vec, rfnn_all = models
        result = run_anomaly_table(dataset, env2vec, rfnn_all, gammas=(1.0, 3.0), include_htm=False)
        methods = {row.method for row in result.rows}
        assert methods == {"ridge", "ridge_ts", "rfnn_all", "env2vec"}
        for row in result.rows:
            assert 0 <= row.correct_alarms <= row.n_alarms
            assert 0.0 <= row.a_t <= 1.0
            assert row.a_t + row.a_f == pytest.approx(1.0) or row.n_alarms == 0
        scores = result.per_execution[("env2vec", 1.0)]
        assert len(scores) == len(dataset.focus_chains)

    def test_gamma_monotone_alarm_counts(self, dataset, models):
        env2vec, rfnn_all = models
        result = run_anomaly_table(dataset, env2vec, None, gammas=(1.0, 2.0, 3.0), include_htm=False, include_ridge=False)
        counts = [result.row("env2vec", g).n_alarms for g in (1.0, 2.0, 3.0)]
        assert counts[0] >= counts[1] >= counts[2]

    def test_problems_detected_bounded(self, dataset, models):
        env2vec, _ = models
        result = run_anomaly_table(dataset, env2vec, None, gammas=(1.0,), include_htm=False, include_ridge=False)
        row = result.row("env2vec", 1.0)
        assert row.problems_detected <= result.ground_truth_problems

    def test_row_lookup_and_table(self, dataset, models):
        env2vec, _ = models
        result = run_anomaly_table(dataset, env2vec, None, gammas=(2.0,), include_htm=False, include_ridge=False)
        assert result.row("env2vec", 2.0).gamma == 2.0
        with pytest.raises(KeyError):
            result.row("nope", 2.0)
        assert "ground truth" in result.table("t")

    def test_htm_row(self, dataset, models):
        env2vec, _ = models
        result = run_anomaly_table(dataset, env2vec, None, gammas=(2.0,), include_htm=True, include_ridge=False)
        htm = result.row("htm_ad", None)
        assert htm.n_alarms >= 0


class TestUnseenDriver:
    def test_no_ridge_rows(self, dataset):
        result = run_unseen_table(dataset, gammas=(2.0,), fast=True, include_htm=False)
        methods = {row.method for row in result.rows}
        assert methods == {"rfnn_all", "env2vec"}

    def test_scores_per_focus_chain(self, dataset):
        result = run_unseen_table(dataset, gammas=(2.0,), fast=True, include_htm=False)
        assert len(result.per_execution[("env2vec", 2.0)]) == len(dataset.focus_chains)


class TestCoverageDriver:
    def test_table7_fields(self, dataset, models):
        env2vec, _ = models
        table5 = run_anomaly_table(dataset, env2vec, None, gammas=(1.0,), include_htm=False, include_ridge=False)
        result = run_coverage_table(dataset, table5)
        assert result.under_examples >= 0
        assert result.under_a_t <= result.rest_a_t_mean + 1e-9
        assert "Table 7" in result.table()


class TestEmbeddingPCADriver:
    def test_figure6_output(self, dataset, models):
        env2vec, _ = models
        result = run_embedding_pca(env2vec, dataset)
        n_envs = len(dataset.environments(include_current=False))
        assert result.coordinates.shape == (n_envs, 2)
        assert len(result.build_types) == n_envs
        assert result.explained_variance_ratio.shape == (2,)
        assert result.cluster_ratio() > 0


class TestKDNDriver:
    def test_minimal_methods_run(self):
        result = run_kdn_comparison(n_nn_runs=1, fast=True, methods=("ridge", "ridge_ts"))
        for dataset in ("snort", "switch", "firewall"):
            assert set(result.scores[dataset]) == {"ridge", "ridge_ts"}
            assert result.scores[dataset]["ridge"].mae_mean > 0
        assert "Table 4" in result.table4()

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            run_kdn_comparison(methods=("ridge", "xgboost"))

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            run_kdn_comparison(n_nn_runs=0)
