"""Supervised multi-process serving: byte-identity, chaos recovery, rollouts.

The supervisor's contract has three legs, and each gets a test leaning
directly on it: (1) with chaos off, N worker processes produce byte-for-
byte the answers of the single-loop service (workers score, the parent
fans in, in dispatch order); (2) with seeded worker kills and stalls, no
acknowledged request is ever lost — every future resolves with the same
bytes an undisturbed run produces, and the supervisor's restart/re-
enqueue counters show the faults actually fired; (3) rolling publishes
swap model versions without the service ever going cold.
"""

import asyncio

import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.resilience import ChaosProfile
from repro.serve import Env2VecService, PredictRequest, ServeConfig
from repro.workflow import (
    AlarmStore,
    ModelStore,
    PredictBatch,
    PredictionPipeline,
    TrainingPipeline,
)

pytestmark = [pytest.mark.serving, pytest.mark.chaos]


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=6,
            n_testbeds=3,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=2,
            include_rare_testbed=False,
            seed=23,
        )
    )


def _train(store: ModelStore, dataset, seed: int = 0):
    return TrainingPipeline(
        store,
        n_lags=3,
        model_params={"max_epochs": 3, "batch_size": 256, "dropout": 0.0},
        seed=seed,
    ).train(dataset.history_training_series())


def _reference_runs(store, dataset, executions):
    """What an undisturbed batch execute produces, on a private alarm store."""
    return PredictionPipeline(store, AlarmStore(), gamma=2.0).execute(
        PredictBatch(tuple(executions))
    )


def _assert_bytes_match(responses, reference):
    assert len(responses) == len(reference)
    for response, run in zip(responses, reference):
        assert response.status == "ok"
        assert not response.degraded
        assert response.run.predictions.tobytes() == run.predictions.tobytes()
        assert response.run.observations.tobytes() == run.observations.tobytes()
        assert response.run.alarm_ids == run.alarm_ids
        assert response.run.model_version == run.model_version


def _serve(store, *, config, chaos=None, requests):
    async def scenario():
        service = Env2VecService(
            store, alarm_store=AlarmStore(), config=config, chaos=chaos
        )
        async with service:
            responses = await service.client().predict_many(requests)
            health = service.health()
            stats = None
            if service.supervisor is not None:
                supervisor = service.supervisor
                stats = {
                    "restarts": supervisor.restarts,
                    "reenqueued": supervisor.reenqueued,
                    "recovery": list(supervisor.recovery_seconds),
                    "log": list(supervisor.restart_log),
                }
        return responses, health, stats

    return asyncio.run(scenario())


class TestByteIdentity:
    def test_two_workers_match_single_loop_and_batch(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains] * 2
        reference = _reference_runs(store, dataset, executions)
        requests = [
            PredictRequest(execution=execution, request_id=str(i))
            for i, execution in enumerate(executions)
        ]

        single, _, _ = _serve(
            store, config=ServeConfig(max_batch=4), requests=requests
        )
        multi, health, _ = _serve(
            store, config=ServeConfig(max_batch=4, n_workers=2), requests=requests
        )
        _assert_bytes_match(single, reference)
        _assert_bytes_match(multi, reference)
        assert health.n_workers == 2
        assert health.workers_ready == 2
        assert health.ready and health.live and not health.degraded

    def test_worker_states_visible_in_health(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        requests = [
            PredictRequest(execution=dataset.chains[0].current, request_id="h")
        ]
        _, health, _ = _serve(
            store, config=ServeConfig(n_workers=2), requests=requests
        )
        assert len(health.workers) == 2
        assert {w.phase for w in health.workers} == {"ready"}
        assert all(w.epoch == 1 for w in health.workers)
        assert all(w.model_version == 1 for w in health.workers)


class TestChaosRecovery:
    def test_worker_kills_lose_nothing_and_stay_byte_identical(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains] * 4
        reference = _reference_runs(store, dataset, executions)
        requests = [
            PredictRequest(execution=execution, request_id=str(i))
            for i, execution in enumerate(executions)
        ]
        chaos = ChaosProfile(seed=5, worker_kill_rate=0.25)
        responses, _, stats = _serve(
            store,
            config=ServeConfig(
                max_batch=4,
                n_workers=2,
                heartbeat_interval=0.02,
                worker_stall_timeout=0.5,
            ),
            chaos=chaos,
            requests=requests,
        )
        # The seeded profile must actually have fired, and every kill's
        # in-flight batch must have been re-enqueued and re-scored.
        assert stats["restarts"] > 0
        assert stats["reenqueued"] == stats["restarts"]
        assert len(stats["recovery"]) == stats["restarts"]
        assert all(reason == "crash" for _, _, reason in stats["log"])
        _assert_bytes_match(responses, reference)

    def test_worker_stalls_detected_and_recovered(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains] * 3
        reference = _reference_runs(store, dataset, executions)
        requests = [
            PredictRequest(execution=execution, request_id=str(i))
            for i, execution in enumerate(executions)
        ]
        chaos = ChaosProfile(seed=3, worker_stall_rate=0.3)
        responses, _, stats = _serve(
            store,
            config=ServeConfig(
                max_batch=4,
                n_workers=2,
                heartbeat_interval=0.02,
                worker_stall_timeout=0.15,
            ),
            chaos=chaos,
            requests=requests,
        )
        assert stats["restarts"] > 0
        assert any(reason == "stall" for _, _, reason in stats["log"])
        _assert_bytes_match(responses, reference)

    def test_batch_fails_loudly_after_exhausting_attempts(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        execution = dataset.chains[0].current
        # kill_rate=1.0: every dispatch dies; with 2 attempts the batch
        # must fail with a clear error, never hang or vanish.
        chaos = ChaosProfile(seed=1, worker_kill_rate=1.0)

        async def scenario():
            service = Env2VecService(
                store,
                alarm_store=AlarmStore(),
                config=ServeConfig(
                    n_workers=1,
                    heartbeat_interval=0.02,
                    worker_stall_timeout=0.5,
                    max_dispatch_attempts=2,
                ),
                chaos=chaos,
            )
            async with service:
                with pytest.raises(RuntimeError, match="dispatch"):
                    await service.client().predict(
                        PredictRequest(execution=execution, request_id="doomed")
                    )

        asyncio.run(scenario())


class TestRollingPublish:
    def test_publish_rolls_fleet_without_going_cold(self, dataset):
        store = ModelStore()
        _train(store, dataset, seed=0)
        executions = [chain.current for chain in dataset.chains]

        async def scenario():
            service = Env2VecService(
                store, alarm_store=AlarmStore(), config=ServeConfig(n_workers=2)
            )
            async with service:
                client = service.client()
                wave1 = await client.predict_many(
                    [
                        PredictRequest(execution=execution, request_id=f"a{i}")
                        for i, execution in enumerate(executions)
                    ]
                )
                # Retrain mid-traffic; the rollout drains one worker at a
                # time while the other keeps serving.
                _train(store, dataset, seed=1)
                for task in list(service.supervisor._publish_tasks):
                    await task
                wave2 = await client.predict_many(
                    [
                        PredictRequest(execution=execution, request_id=f"b{i}")
                        for i, execution in enumerate(executions)
                    ]
                )
                states = service.supervisor.worker_states()
            return wave1, wave2, states

        wave1, wave2, states = asyncio.run(scenario())
        assert all(response.status == "ok" for response in wave1 + wave2)
        assert {response.run.model_version for response in wave1} == {1}
        assert {response.run.model_version for response in wave2} == {2}
        # No worker was restarted to get there — the blobs were shipped.
        assert all(state.epoch == 1 for state in states)
        assert all(state.model_version == 2 for state in states)


class TestRowIsolation:
    def test_bad_row_dead_lettered_without_failing_batchmates(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        good = [chain.current for chain in dataset.chains[:3]]
        # Wrong feature width: windows fine, but the coalesced forward
        # cannot consume it — exactly the shape of poison that used to
        # fail the whole batch.
        from dataclasses import replace

        bad = replace(good[1], features=good[1].features[:, :2])
        executions = [good[0], bad, good[2]]
        reference = _reference_runs(store, dataset, [good[0], good[2]])

        async def scenario(n_workers):
            service = Env2VecService(
                store,
                alarm_store=AlarmStore(),
                config=ServeConfig(max_batch=8, n_workers=n_workers),
            )
            async with service:
                futures = [
                    service.submit_predict(
                        PredictRequest(execution=execution, request_id=str(i))
                    )
                    for i, execution in enumerate(executions)
                ]
                results = await asyncio.gather(*futures, return_exceptions=True)
                n_dead = len(service.dead_letters)
                reasons = service.dead_letters.reasons()
            return results, n_dead, reasons

        for n_workers in (0, 2):
            results, n_dead, reasons = asyncio.run(scenario(n_workers))
            assert isinstance(results[1], RuntimeError)
            assert "dead-lettered" in str(results[1])
            assert n_dead == 1 and reasons == {"serve_row_failure": 1}
            _assert_bytes_match([results[0], results[2]], reference)
