"""Warm model pool: publish-time compiles, eviction, last-good fallback."""

import pytest

from repro.data import TelecomConfig, generate_telecom
from repro.workflow import ModelStore, TrainingPipeline
from repro.serve._internal.warm_pool import (
    WarmModelPool,
    _M_COLD,
    _M_FALLBACKS,
    _M_WARM,
)


@pytest.fixture(scope="module")
def corpus():
    dataset = generate_telecom(
        TelecomConfig(
            n_chains=4,
            n_testbeds=2,
            builds_per_chain=(3, 3),
            timesteps_per_build=(60, 70),
            n_focus=1,
            include_rare_testbed=False,
            seed=7,
        )
    )
    return dataset.history_training_series()


def _trainer(store: ModelStore) -> TrainingPipeline:
    return TrainingPipeline(
        store,
        n_lags=3,
        model_params={"max_epochs": 2, "batch_size": 256, "dropout": 0.0},
        seed=0,
    )


class TestWarmModelPool:
    def test_publish_compiles_off_the_request_path(self, corpus):
        store = ModelStore()
        trainer = _trainer(store)
        pool = WarmModelPool(store, capacity=2)
        warm_before, cold_before = _M_WARM.value, _M_COLD.value
        trainer.train(corpus)
        assert _M_WARM.value == warm_before + 1
        # The request path finds the engine already resident: no cold compile.
        model, version = pool.latest()
        assert version == store.latest_version == 1
        assert model._engine is not None
        assert model._engine.meta["model_store_version"] == 1
        assert _M_COLD.value == cold_before
        pool.close()

    def test_retrain_swaps_version_without_cold_compile(self, corpus):
        store = ModelStore()
        trainer = _trainer(store)
        trainer.train(corpus)
        pool = WarmModelPool(store, capacity=2)
        cold_before = _M_COLD.value
        _, v1 = pool.latest()
        trainer.train(corpus)  # the retrain lands mid-traffic
        model, v2 = pool.latest()
        assert (v1, v2) == (1, 2)
        assert model._engine is not None
        assert _M_COLD.value == cold_before
        assert pool.resident_versions == (1, 2)
        pool.close()

    def test_capacity_evicts_oldest_version(self, corpus):
        store = ModelStore()
        trainer = _trainer(store)
        pool = WarmModelPool(store, capacity=2)
        for _ in range(3):
            trainer.train(corpus)
        assert pool.resident_versions == (2, 3)
        pool.close()

    def test_detached_pool_pays_cold_compile_once(self, corpus):
        store = ModelStore()
        trainer = _trainer(store)
        trainer.train(corpus)
        pool = WarmModelPool(store, capacity=2)
        pool.close()  # detached: the next publish is not warmed
        trainer.train(corpus)
        cold_before = _M_COLD.value
        _, version = pool.latest()
        assert version == 2
        assert _M_COLD.value == cold_before + 1

    def test_corrupt_publish_falls_back_to_last_good(self, corpus):
        store = ModelStore()
        trainer = _trainer(store)
        trainer.train(corpus)
        pool = WarmModelPool(store, capacity=2)
        pool.close()  # publish v2 without warming, then corrupt it
        record = trainer.train(corpus).version
        store._blobs[record.version] = store._blobs[record.version][:-64]
        fallbacks_before = _M_FALLBACKS.value
        model, version = pool.latest()
        assert version == 1  # newest *good* resident version
        assert model._engine is not None
        assert _M_FALLBACKS.value == fallbacks_before + 1

    def test_corrupt_publish_hook_keeps_serving(self, corpus):
        store = ModelStore()
        trainer = _trainer(store)
        trainer.train(corpus)
        pool = WarmModelPool(store, capacity=2)
        record = trainer.train(corpus).version
        store._blobs[record.version] = b"z" * 128
        fallbacks_before = _M_FALLBACKS.value
        pool._on_publish(record)  # replay the hook against the corrupt blob
        assert _M_FALLBACKS.value == fallbacks_before + 1
        # v2 was warmed by the real publish before corruption; the replayed
        # hook must not evict it or crash the publisher.
        assert pool.resident_versions == (1, 2)
        pool.close()
