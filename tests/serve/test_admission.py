"""Admission control: bounded queue, explicit rejection, FIFO drain."""

import asyncio

import pytest

from repro.serve import PredictRequest, ServiceOverloaded
from repro.serve._internal.admission import AdmissionController
from repro.serve._internal.admission import _M_REJECTED


def _request(i: int, **kwargs) -> PredictRequest:
    import numpy as np

    from repro.data import Environment, TestExecution

    env = Environment("Testbed_1", "SUT_DB", "Testcase_Reg", "Build_1")
    features = np.zeros((10, 3))
    cpu = np.zeros(10)
    return PredictRequest(
        execution=TestExecution(environment=env, features=features, cpu=cpu),
        request_id=str(i),
        **kwargs,
    )


def run(coroutine):
    return asyncio.run(coroutine)


class TestAdmission:
    def test_rejects_past_depth_bound_and_counts(self):
        async def scenario():
            admission = AdmissionController(max_depth=3, default_service_seconds=0.01)
            before = _M_REJECTED.value
            loop = asyncio.get_running_loop()
            for i in range(3):
                admission.submit(_request(i), now=loop.time())
            assert admission.depth == 3
            with pytest.raises(ServiceOverloaded) as excinfo:
                admission.submit(_request(3), now=loop.time())
            assert excinfo.value.retry_after == pytest.approx(3 * 0.01)
            assert admission.rejected == 1
            assert _M_REJECTED.value == before + 1

        run(scenario())

    def test_drain_preserves_fifo_order(self):
        async def scenario():
            admission = AdmissionController(max_depth=10, default_service_seconds=0.01)
            loop = asyncio.get_running_loop()
            for i in range(5):
                admission.submit(_request(i), now=loop.time())
            first = admission.drain(3)
            rest = admission.drain(10)
            assert [p.request.request_id for p in first] == ["0", "1", "2"]
            assert [p.request.request_id for p in rest] == ["3", "4"]
            assert admission.depth == 0

        run(scenario())

    def test_evict_withdraws_only_named_futures(self):
        async def scenario():
            admission = AdmissionController(max_depth=10, default_service_seconds=0.01)
            loop = asyncio.get_running_loop()
            futures = [admission.submit(_request(i), now=loop.time()) for i in range(4)]
            assert admission.evict([futures[1], futures[3]]) == 2
            remaining = admission.drain(10)
            assert [p.request.request_id for p in remaining] == ["0", "2"]

        run(scenario())

    def test_service_time_ewma_moves_retry_after(self):
        async def scenario():
            admission = AdmissionController(max_depth=8, default_service_seconds=0.01)
            loop = asyncio.get_running_loop()
            for i in range(8):
                admission.submit(_request(i), now=loop.time())
            hint_before = admission.retry_after()
            admission.record_service_time(1.0)
            assert admission.retry_after() > hint_before

        run(scenario())

    def test_wait_nonempty_wakes_on_submit(self):
        async def scenario():
            admission = AdmissionController(max_depth=4, default_service_seconds=0.01)
            loop = asyncio.get_running_loop()

            async def producer():
                await asyncio.sleep(0)
                admission.submit(_request(0), now=loop.time())

            task = loop.create_task(producer())
            await asyncio.wait_for(admission.wait_nonempty(), timeout=1.0)
            await task
            assert admission.depth == 1

        run(scenario())


class TestDeadlines:
    def test_drain_sheds_expired_without_charging_the_limit(self):
        async def scenario():
            from repro.resilience import DeadlineExceeded

            admission = AdmissionController(max_depth=10, default_service_seconds=0.01)
            loop = asyncio.get_running_loop()
            now = loop.time()
            doomed = admission.submit(
                _request(0, deadline_seconds=0.05), now=now - 1.0
            )
            live = [admission.submit(_request(i), now=now) for i in (1, 2)]
            batch = admission.drain(2, now=now)
            # The expired head did not consume a batch slot.
            assert [p.request.request_id for p in batch] == ["1", "2"]
            assert admission.shed == 1
            with pytest.raises(DeadlineExceeded, match="0.05"):
                await doomed
            assert all(not f.done() for f in live)

        run(scenario())

    def test_shed_expired_sweeps_only_the_dead(self):
        async def scenario():
            admission = AdmissionController(max_depth=10, default_service_seconds=0.01)
            loop = asyncio.get_running_loop()
            now = loop.time()
            admission.submit(_request(0, deadline_seconds=0.01), now=now - 1.0)
            admission.submit(_request(1), now=now)
            admission.submit(_request(2, deadline_seconds=60.0), now=now)
            assert admission.shed_expired(now=now) == 1
            assert admission.depth == 2
            assert admission.earliest_deadline() == pytest.approx(now + 60.0)

        run(scenario())

    def test_drain_without_now_never_sheds(self):
        async def scenario():
            admission = AdmissionController(max_depth=10, default_service_seconds=0.01)
            loop = asyncio.get_running_loop()
            admission.submit(
                _request(0, deadline_seconds=0.01), now=loop.time() - 1.0
            )
            batch = admission.drain(5)
            assert len(batch) == 1 and admission.shed == 0

        run(scenario())


class TestServiceTimeDecay:
    def test_decay_validated(self):
        with pytest.raises(ValueError, match="decay"):
            AdmissionController(max_depth=4, default_service_seconds=0.01, decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            AdmissionController(max_depth=4, default_service_seconds=0.01, decay=1.0)

    def test_decay_constant_controls_ewma_weight(self):
        sluggish = AdmissionController(
            max_depth=4, default_service_seconds=0.01, decay=0.9
        )
        nimble = AdmissionController(
            max_depth=4, default_service_seconds=0.01, decay=0.1
        )
        for admission in (sluggish, nimble):
            admission.record_service_time(1.0)
        assert sluggish._service_seconds == pytest.approx(0.9 * 0.01 + 0.1 * 1.0)
        assert nimble._service_seconds == pytest.approx(0.1 * 0.01 + 0.9 * 1.0)

    def test_config_decay_reaches_admission(self):
        from repro.serve import Env2VecService, ServeConfig
        from repro.workflow import ModelStore

        service = Env2VecService(
            ModelStore(), config=ServeConfig(service_time_decay=0.5)
        )
        assert service.admission._decay == 0.5
        with pytest.raises(ValueError, match="service_time_decay"):
            ServeConfig(service_time_decay=1.0)
