"""End-to-end serving tests: byte-identity, backpressure, outages, retrains.

The serve layer's whole contract is that going through admission +
micro-batching changes *when* work runs, never *what* it computes:
responses must be byte-identical to batch
:meth:`~repro.workflow.PredictionPipeline.execute` on the same model
version, backpressure must be an explicit typed rejection, and a TSDB
outage must trip the service breaker instead of hanging traffic.
"""

import asyncio

import numpy as np
import pytest

from repro.data import FEATURE_NAMES, TelecomConfig, generate_telecom
from repro.resilience import BREAKER_OPEN, ChaosProfile, SimulatedClock
from repro.serve import (
    AlarmQuery,
    Env2VecService,
    PredictRequest,
    ScrapeRequest,
    ServeConfig,
    ServiceOverloaded,
)
from repro.serve._internal.admission import _M_REJECTED
from repro.serve._internal.warm_pool import _M_COLD
from repro.workflow import (
    AlarmStore,
    EMRegistry,
    MetricCollector,
    ModelStore,
    PredictBatch,
    PredictionPipeline,
    TimeSeriesDB,
    TrainingPipeline,
)

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=8,
            n_testbeds=3,
            builds_per_chain=(3, 4),
            timesteps_per_build=(60, 80),
            n_focus=2,
            include_rare_testbed=False,
            seed=11,
        )
    )


def _train(store: ModelStore, dataset, max_epochs: int = 4):
    return TrainingPipeline(
        store,
        n_lags=3,
        model_params={"max_epochs": max_epochs, "batch_size": 256, "dropout": 0.0},
        seed=0,
    ).train(dataset.history_training_series())


def _assert_same_run(response, run):
    assert response.status == "ok"
    assert response.run.predictions.tobytes() == run.predictions.tobytes()
    assert response.run.observations.tobytes() == run.observations.tobytes()
    assert response.run.model_version == run.model_version
    assert response.run.alarm_ids == run.alarm_ids
    assert response.run.terminated_early == run.terminated_early
    np.testing.assert_array_equal(response.run.report.flags, run.report.flags)


class TestServeByteIdentity:
    def test_concurrent_chains_match_batch_execute(self, dataset):
        """N chains served concurrently == one batch execute, byte for byte."""
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains]

        reference = PredictionPipeline(store, AlarmStore()).execute(
            PredictBatch(tuple(executions))
        )

        async def scenario():
            service = Env2VecService(
                store, config=ServeConfig(max_batch=3, max_wait=0.001)
            )
            async with service:
                client = service.client()
                return await asyncio.gather(
                    *(
                        client.predict(
                            PredictRequest(execution=execution, request_id=str(i))
                        )
                        for i, execution in enumerate(executions)
                    )
                )

        responses = asyncio.run(scenario())
        assert [r.request_id for r in responses] == [str(i) for i in range(len(executions))]
        for response, run in zip(responses, reference):
            _assert_same_run(response, run)
        # Coalescing actually happened (the point of the micro-batcher)...
        assert any(r.batch_size > 1 for r in responses)
        # ...and no response ever observed a partial batch's side effects:
        # alarm ids line up with the serial reference exactly.

    def test_batch_boundaries_do_not_leak_into_results(self, dataset):
        """Same traffic under different batching knobs -> same bytes."""
        executions = [chain.current for chain in dataset.chains]

        def serve_all(config: ServeConfig):
            store = ModelStore()
            _train(store, dataset)

            async def scenario():
                service = Env2VecService(store, config=config)
                async with service:
                    client = service.client()
                    return await client.predict_many(
                        [PredictRequest(execution=e) for e in executions]
                    )

            return asyncio.run(scenario())

        per_request = serve_all(ServeConfig(max_batch=1, max_wait=0.0))
        coalesced = serve_all(ServeConfig(max_batch=64, max_wait=0.002))
        for a, b in zip(per_request, coalesced):
            assert a.run.predictions.tobytes() == b.run.predictions.tobytes()
            assert a.run.alarm_ids == b.run.alarm_ids


class TestBackpressure:
    def test_overload_rejects_with_retry_after_and_counts(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains]

        async def scenario():
            service = Env2VecService(
                store, config=ServeConfig(max_queue_depth=2, max_wait=0.0)
            )
            # The batcher is deliberately not started: the queue cannot
            # drain, so the third submit must be rejected deterministically.
            rejected_before = _M_REJECTED.value
            futures = [
                service.submit_predict(PredictRequest(execution=executions[i]))
                for i in range(2)
            ]
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.submit_predict(PredictRequest(execution=executions[2]))
            assert excinfo.value.retry_after > 0
            assert _M_REJECTED.value == rejected_before + 1
            assert service.admission.depth == 2
            await service.stop()  # fails the still-queued futures explicitly
            for future in futures:
                with pytest.raises(RuntimeError, match="service stopped"):
                    await future

        asyncio.run(scenario())

    def test_predict_many_withdraws_partial_group_on_overload(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains]

        async def scenario():
            service = Env2VecService(
                store, config=ServeConfig(max_queue_depth=3, max_wait=0.0)
            )
            client = service.client()
            with pytest.raises(ServiceOverloaded):
                await client.predict_many(
                    [PredictRequest(execution=e) for e in executions[:5]]
                )
            # The rejected group left nothing behind.
            assert service.admission.depth == 0
            await service.stop()

        asyncio.run(scenario())


class TestTSDBOutage:
    def _outage_service(self, store) -> Env2VecService:
        chaos = ChaosProfile(seed=3, tsdb_failure_rate=1.0)
        collector = MetricCollector(
            TimeSeriesDB(name="serve-workload"),
            EMRegistry(),
            feature_names=FEATURE_NAMES,
            chaos=chaos,
        )
        return Env2VecService(
            store,
            collector=collector,
            config=ServeConfig(breaker_failures=3, breaker_recovery=300.0),
            breaker_clock=SimulatedClock(),
        )

    def test_breaker_opens_under_injected_outage(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        service = self._outage_service(store)
        execution = dataset.chains[0].current

        for _ in range(3):
            response = service.scrape(ScrapeRequest(execution=execution))
            assert response.status == "unavailable"
        assert service.tsdb_breaker.state == BREAKER_OPEN

        response = service.scrape(ScrapeRequest(execution=execution))
        assert response.status == "circuit_open"
        assert 0 < response.retry_after <= 300.0

        # After recovery time the half-open trial runs (and fails again
        # under total outage, re-opening the circuit).
        service.tsdb_breaker.clock.advance(300.0)
        response = service.scrape(ScrapeRequest(execution=execution))
        assert response.status == "unavailable"
        assert service.tsdb_breaker.state == BREAKER_OPEN

    def test_record_id_requests_skip_while_breaker_open(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        service = self._outage_service(store)
        execution = dataset.chains[0].current
        for _ in range(3):
            service.scrape(ScrapeRequest(execution=execution))
        assert service.tsdb_breaker.state == BREAKER_OPEN

        async def scenario():
            async with service:
                response = await service.client().predict(
                    PredictRequest(
                        record_id="em-000001", environment=execution.environment
                    )
                )
            return response

        response = asyncio.run(scenario())
        assert response.status == "skipped"
        assert response.skipped.reason == "tsdb_circuit_open"


class TestRetrainMidTraffic:
    def test_first_post_retrain_request_pays_no_cold_compile(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains]

        async def scenario():
            service = Env2VecService(store, config=ServeConfig(max_batch=4))
            async with service:
                client = service.client()
                wave1 = await client.predict_many(
                    [PredictRequest(execution=e) for e in executions[:4]]
                )
                cold_before = _M_COLD.value
                _train(store, dataset)  # retrain lands mid-traffic
                wave2 = await client.predict_many(
                    [PredictRequest(execution=e) for e in executions[4:]]
                )
                return wave1, wave2, cold_before

        wave1, wave2, cold_before = asyncio.run(scenario())
        assert {r.run.model_version for r in wave1} == {1}
        assert {r.run.model_version for r in wave2} == {2}
        # The publish hook compiled version 2 off the request path: the
        # first post-retrain request never triggers an inline compile.
        assert _M_COLD.value == cold_before


class TestAlarmQueryPath:
    def test_alarms_raised_by_serving_are_queryable(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains]

        async def scenario():
            service = Env2VecService(store)
            async with service:
                client = service.client()
                responses = await client.predict_many(
                    [PredictRequest(execution=e) for e in executions]
                )
                alarms = await client.alarms(AlarmQuery(request_id="q1"))
            return responses, alarms

        responses, alarms = asyncio.run(scenario())
        raised = [aid for r in responses for aid in r.run.alarm_ids]
        assert alarms.request_id == "q1"
        assert [record.alarm_id for record in alarms.alarms] == sorted(raised)
