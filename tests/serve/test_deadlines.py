"""Deadline propagation, graceful-drain shutdown, and the degradation ladder.

A request's ``deadline_seconds`` budget must follow it through admission
(absolute expiry stamped at submit), the batcher (linger clamped, expired
requests shed at drain with :class:`DeadlineExceeded`), and shutdown
(``stop(drain=True)`` sheds the dead, completes the live). And when the
fresh path is down — TSDB breaker open for record_id traffic — the
service climbs down the degradation ladder: per-environment last-good
answers replayed with ``degraded=True`` instead of going dark.
"""

import asyncio

import pytest

from repro.data import FEATURE_NAMES, TelecomConfig, generate_telecom
from repro.resilience import BREAKER_OPEN, ChaosProfile, DeadlineExceeded
from repro.serve import Env2VecService, PredictRequest, ScrapeRequest, ServeConfig
from repro.workflow import (
    AlarmStore,
    EMRegistry,
    MetricCollector,
    ModelStore,
    PredictBatch,
    PredictionPipeline,
    TimeSeriesDB,
    TrainingPipeline,
)

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=6,
            n_testbeds=3,
            builds_per_chain=(3, 4),
            timesteps_per_build=(50, 60),
            n_focus=2,
            include_rare_testbed=False,
            seed=29,
        )
    )


def _train(store: ModelStore, dataset):
    return TrainingPipeline(
        store,
        n_lags=3,
        model_params={"max_epochs": 3, "batch_size": 256, "dropout": 0.0},
        seed=0,
    ).train(dataset.history_training_series())


def _reference_runs(store, executions):
    return PredictionPipeline(store, AlarmStore(), gamma=2.0).execute(
        PredictBatch(tuple(executions))
    )


class TestDeadlineShedding:
    def test_expired_queued_request_shed_live_one_served(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains]
        reference = _reference_runs(store, [executions[1]])

        async def scenario():
            service = Env2VecService(
                store, alarm_store=AlarmStore(), config=ServeConfig(max_batch=8)
            )
            shed_before = service.admission.shed
            async with service:
                # Submitted back-to-back, so both sit in the same drain:
                # the first is already past its (absurd) budget when the
                # batcher picks it up, the second has no deadline.
                doomed = service.submit_predict(
                    PredictRequest(
                        execution=executions[0],
                        request_id="doomed",
                        deadline_seconds=1e-9,
                    )
                )
                live = service.submit_predict(
                    PredictRequest(execution=executions[1], request_id="live")
                )
                results = await asyncio.gather(doomed, live, return_exceptions=True)
            return results, service.admission.shed - shed_before

        results, shed = asyncio.run(scenario())
        assert isinstance(results[0], DeadlineExceeded)
        assert "doomed" in str(results[0])
        assert shed == 1
        response = results[1]
        assert response.status == "ok" and not response.degraded
        assert response.run.predictions.tobytes() == reference[0].predictions.tobytes()
        assert response.run.alarm_ids == reference[0].alarm_ids

    def test_generous_deadline_is_never_shed(self, dataset):
        store = ModelStore()
        _train(store, dataset)

        async def scenario():
            service = Env2VecService(store, alarm_store=AlarmStore())
            async with service:
                response = await service.client().predict(
                    PredictRequest(
                        execution=dataset.chains[0].current,
                        request_id="r",
                        deadline_seconds=60.0,
                    )
                )
            return response, service.admission.shed

        response, shed = asyncio.run(scenario())
        assert response.status == "ok"
        assert shed == 0

    def test_deadline_must_be_positive(self, dataset):
        with pytest.raises(ValueError, match="deadline_seconds"):
            PredictRequest(
                execution=dataset.chains[0].current, deadline_seconds=0.0
            )
        with pytest.raises(ValueError, match="deadline_seconds"):
            PredictRequest(
                execution=dataset.chains[0].current, deadline_seconds=-1.0
            )


class TestStopMidDrain:
    def test_stop_sheds_expired_and_completes_live(self, dataset):
        """The graceful-drain contract, frozen mid-flight.

        Five requests are queued when stop() begins: two already past
        their deadline, three live. The shutdown drain must shed exactly
        the dead pair with DeadlineExceeded and serve the live trio to
        completion — byte-identical to a batch execute of just the trio.
        """
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains]
        live_executions = [executions[2], executions[3], executions[4]]
        reference = _reference_runs(store, live_executions)

        async def scenario():
            service = Env2VecService(
                store, alarm_store=AlarmStore(), config=ServeConfig(max_batch=2)
            )
            service.start()
            # No awaits between start/submit/stop: the batcher task never
            # gets a slice, so all five are still queued when stop() runs.
            expired = [
                service.submit_predict(
                    PredictRequest(
                        execution=executions[i],
                        request_id=f"expired-{i}",
                        deadline_seconds=1e-9,
                    )
                )
                for i in range(2)
            ]
            live = [
                service.submit_predict(
                    PredictRequest(execution=execution, request_id=f"live-{i}")
                )
                for i, execution in enumerate(live_executions)
            ]
            await service.stop(drain=True)
            expired_results = await asyncio.gather(*expired, return_exceptions=True)
            live_results = await asyncio.gather(*live)
            return expired_results, live_results, service.admission.shed

        expired_results, live_results, shed = asyncio.run(scenario())
        assert shed == 2
        for result in expired_results:
            assert isinstance(result, DeadlineExceeded)
        # max_batch=2 forces the drain to take several rounds; order and
        # bytes must still match the uninterrupted serial reference.
        for response, run in zip(live_results, reference):
            assert response.status == "ok"
            assert response.run.predictions.tobytes() == run.predictions.tobytes()
            assert response.run.alarm_ids == run.alarm_ids

    def test_kill_then_restart_resumes_byte_identical(self, dataset):
        """A crash mid-backlog loses nothing once clients resubmit.

        Service A (supervised, 2 workers) answers the first half, then is
        killed with the second half still queued — those futures must
        fail loudly, and their alarms must NOT have been pushed. A fresh
        service over the same stores serves the resubmitted half; the
        combined answers are byte-identical to one uninterrupted run.
        """
        store = ModelStore()
        _train(store, dataset)
        executions = [chain.current for chain in dataset.chains]
        first, second = executions[:3], executions[3:]
        reference = _reference_runs(store, executions)
        config = ServeConfig(max_batch=4, n_workers=2)

        async def phase_one(alarm_store):
            service = Env2VecService(store, alarm_store=alarm_store, config=config)
            async with service:
                served = await service.client().predict_many(
                    [
                        PredictRequest(execution=execution, request_id=f"a{i}")
                        for i, execution in enumerate(first)
                    ]
                )
                # Queue the second half and kill the service before the
                # batcher can touch it (no await in between).
                doomed = [
                    service.submit_predict(
                        PredictRequest(execution=execution, request_id=f"b{i}")
                    )
                    for i, execution in enumerate(second)
                ]
                await service.stop(drain=False)
                doomed_results = await asyncio.gather(
                    *doomed, return_exceptions=True
                )
            return served, doomed_results

        async def phase_two(alarm_store):
            service = Env2VecService(store, alarm_store=alarm_store, config=config)
            async with service:
                return await service.client().predict_many(
                    [
                        PredictRequest(execution=execution, request_id=f"r{i}")
                        for i, execution in enumerate(second)
                    ]
                )

        alarm_store = AlarmStore()
        served, doomed_results = asyncio.run(phase_one(alarm_store))
        for result in doomed_results:
            assert isinstance(result, RuntimeError)
        resumed = asyncio.run(phase_two(alarm_store))

        combined = served + resumed
        assert len(combined) == len(reference)
        for response, run in zip(combined, reference):
            assert response.status == "ok"
            assert response.run.predictions.tobytes() == run.predictions.tobytes()
            assert response.run.observations.tobytes() == run.observations.tobytes()
            # Alarm numbering continues exactly where the killed service
            # left off — the crash neither lost nor duplicated a push.
            assert response.run.alarm_ids == run.alarm_ids


class TestDegradationLadder:
    def _outage_service(self, store) -> Env2VecService:
        collector = MetricCollector(
            TimeSeriesDB(name="serve-deadline-outage"),
            EMRegistry(),
            feature_names=FEATURE_NAMES,
            chaos=ChaosProfile(seed=3, tsdb_failure_rate=1.0),
        )
        return Env2VecService(
            store,
            alarm_store=AlarmStore(),
            collector=collector,
            config=ServeConfig(breaker_failures=3, breaker_recovery=300.0),
        )

    def test_breaker_open_replays_last_good_as_degraded(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        service = self._outage_service(store)
        execution = dataset.chains[0].current

        async def scenario():
            async with service:
                client = service.client()
                # Warm the last-good cache through the inline path (which
                # never touches the TSDB breaker).
                fresh = await client.predict(
                    PredictRequest(execution=execution, request_id="warm")
                )
                for _ in range(3):
                    await client.scrape(ScrapeRequest(execution=execution))
                assert service.tsdb_breaker.state == BREAKER_OPEN
                degraded = await client.predict(
                    PredictRequest(
                        record_id="em-000001",
                        environment=execution.environment,
                        request_id="stale-ok",
                    )
                )
                health = service.health()
            return fresh, degraded, health

        fresh, degraded, health = asyncio.run(scenario())
        assert fresh.status == "ok" and not fresh.degraded
        assert degraded.status == "ok" and degraded.degraded
        # The replay is the cached answer, bit for bit.
        assert (
            degraded.run.predictions.tobytes() == fresh.run.predictions.tobytes()
        )
        assert degraded.model_version == fresh.model_version
        assert health.degraded and health.breaker_state == BREAKER_OPEN

    def test_ladder_bottoms_out_as_typed_skip_on_cache_miss(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        service = self._outage_service(store)
        execution = dataset.chains[0].current
        other_environment = dataset.chains[1].current.environment

        async def scenario():
            async with service:
                client = service.client()
                for _ in range(3):
                    await client.scrape(ScrapeRequest(execution=execution))
                # No last-good answer for this environment: the ladder has
                # nothing to replay, so the typed skip surfaces instead.
                return await client.predict(
                    PredictRequest(
                        record_id="em-000002", environment=other_environment
                    )
                )

        response = asyncio.run(scenario())
        assert response.status == "skipped"
        assert response.skipped.reason == "tsdb_circuit_open"
        assert not response.degraded

    def test_capacity_zero_disables_the_ladder(self, dataset):
        store = ModelStore()
        _train(store, dataset)
        collector = MetricCollector(
            TimeSeriesDB(name="serve-deadline-outage-0"),
            EMRegistry(),
            feature_names=FEATURE_NAMES,
            chaos=ChaosProfile(seed=3, tsdb_failure_rate=1.0),
        )
        service = Env2VecService(
            store,
            alarm_store=AlarmStore(),
            collector=collector,
            config=ServeConfig(
                breaker_failures=3, breaker_recovery=300.0, last_good_capacity=0
            ),
        )
        execution = dataset.chains[0].current

        async def scenario():
            async with service:
                client = service.client()
                await client.predict(
                    PredictRequest(execution=execution, request_id="warm")
                )
                for _ in range(3):
                    await client.scrape(ScrapeRequest(execution=execution))
                return await client.predict(
                    PredictRequest(
                        record_id="em-000001", environment=execution.environment
                    )
                )

        response = asyncio.run(scenario())
        assert len(service.last_good) == 0
        assert response.status == "skipped"
        assert response.skipped.reason == "tsdb_circuit_open"
