"""Locks the curated public import surface of the workflow and obs packages.

``__all__`` is the contract: every listed name must resolve, and the set
itself must not drift silently — adding or removing a public name should
require touching this test, which is the point.
"""

import repro.obs
import repro.parallel
import repro.resilience
import repro.serve
import repro.workflow

WORKFLOW_API = {
    # TSDB
    "TimeSeriesDB", "Series", "Sample", "SeriesNotFound", "AmbiguousSeries",
    # discovery + collection
    "ServiceDiscovery", "EMRegistry", "MetricCollector", "RU_METRIC",
    "SAMPLE_INTERVAL_SECONDS",
    # stores
    "AlarmStore", "AlarmRecord", "ModelStore", "ModelVersion",
    "CorruptModelError",
    # orchestration
    "TestingCampaign", "DayReport",
    # checkpointing
    "CampaignState", "save_checkpoint", "load_latest_checkpoint",
    "checkpoint_days",
    # promql
    "promql_query", "parse_promql", "PromQLError", "InstantSample",
    "HistogramQuantile",
    # reporting
    "execution_report", "campaign_summary", "observability_summary", "sparkline",
    # drift
    "DriftMonitor", "PageHinkley", "DriftDecision",
    # pipelines
    "TrainingPipeline", "TrainingResult", "PredictionPipeline", "PredictBatch",
    "PipelineRun", "SkippedExecution", "build_prediction_frame",
}

SERVE_API = {
    # service + facade
    "Env2VecService", "ServeClient", "ServeConfig",
    # request/response types
    "PredictRequest", "PredictResponse", "ScrapeRequest", "ScrapeResponse",
    "AlarmQuery", "AlarmQueryResponse", "ServiceOverloaded",
    # health / supervision surface
    "HealthReport", "WorkerState",
    # load generation
    "LoadProfile", "LoadReport", "arrival_offsets", "run_load",
}

RESILIENCE_API = {
    # failure taxonomy
    "ResilienceError", "TransientError", "TransientTSDBError",
    "CollectorOutage", "ExecutionQuarantined", "CircuitOpen",
    "DeadlineExceeded", "RetryExhausted",
    # policies
    "Clock", "MonotonicClock", "SimulatedClock", "Retry", "Deadline",
    "CircuitBreaker", "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
    # chaos
    "ChaosProfile", "FlakyTSDB",
    # quarantine
    "DeadLetterRecord", "DeadLetterStore",
}

PARALLEL_API = {
    # executor
    "CampaignScorer", "ExecutionScore", "WindowCache",
    # pool
    "SequencedMerger", "WorkerPool", "split_round_robin",
    # sharding
    "ReadOnlyTSDBError", "TSDBShards", "TSDBSnapshot", "shard_index",
    "snapshot_shards",
}

OBS_API = {
    "Observability", "get_observability", "OBS",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "HistogramTimer",
    "MetricSample",
    "DEFAULT_BUCKETS", "LATENCY_BUCKETS",
    "Span", "SpanTracker", "span",
    "render_prometheus", "TSDBExporter",
    # per-op inference profiling (bench_inference per-op table)
    "OpProfiler", "active_profiler", "profile_ops",
}


def _check_surface(module, expected):
    declared = set(module.__all__)
    assert declared == expected, (
        f"{module.__name__}.__all__ drifted: "
        f"missing {sorted(expected - declared)}, extra {sorted(declared - expected)}"
    )
    for name in sorted(declared):
        assert getattr(module, name, None) is not None, (
            f"{module.__name__}.__all__ lists {name!r} but it does not resolve"
        )
    assert len(module.__all__) == len(declared), "duplicate names in __all__"


def test_workflow_public_api():
    _check_surface(repro.workflow, WORKFLOW_API)


def test_obs_public_api():
    _check_surface(repro.obs, OBS_API)


def test_resilience_public_api():
    _check_surface(repro.resilience, RESILIENCE_API)


def test_parallel_public_api():
    _check_surface(repro.parallel, PARALLEL_API)


def test_serve_public_api():
    _check_surface(repro.serve, SERVE_API)


def test_serve_internal_stays_private():
    """Nothing from serve._internal may leak into the public surface."""
    for name in repro.serve.__all__:
        obj = getattr(repro.serve, name)
        module = getattr(obj, "__module__", "")
        assert "._internal" not in module, (
            f"repro.serve.{name} resolves to private module {module}"
        )


def test_parallel_importable_first():
    """repro.parallel must load cleanly as the *first* repro import.

    parallel.sharding imports workflow.tsdb, and workflow.orchestrator
    uses repro.parallel (lazily). If the orchestrator's import were eager
    the cycle would only surface when parallel is imported first — so
    probe exactly that order in a fresh interpreter.
    """
    import subprocess
    import sys

    probe = "import repro.parallel; import repro.workflow"
    result = subprocess.run(
        [sys.executable, "-c", probe], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_resilience_does_not_import_workflow_at_module_level():
    """The workflow imports resilience; the reverse edge would be a cycle."""
    import subprocess
    import sys

    probe = (
        "import sys; import repro.resilience; "
        "bad = [m for m in sys.modules if m.startswith('repro.workflow')]; "
        "assert not bad, f'repro.resilience eagerly imported {bad}'"
    )
    result = subprocess.run(
        [sys.executable, "-c", probe], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_obs_does_not_import_workflow_at_module_level():
    """The obs package must stay importable before/without the workflow.

    tsdb imports obs for self-instrumentation; the reverse edge is only
    allowed lazily (inside TSDBExporter.__init__), otherwise the import
    cycle would be load-order dependent.
    """
    import subprocess
    import sys

    probe = (
        "import sys; import repro.obs; "
        "bad = [m for m in sys.modules if m.startswith('repro.workflow')]; "
        "assert not bad, f'repro.obs eagerly imported {bad}'"
    )
    result = subprocess.run(
        [sys.executable, "-c", probe], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
