"""Golden-path integration tests spanning the whole library."""

import numpy as np
import pytest

from repro.core import ContextualAnomalyDetector, Env2VecRegressor, GaussianErrorModel
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows, build_windows_multi
from repro.eval import mae


@pytest.fixture(scope="module")
def corpus():
    return generate_telecom(
        TelecomConfig(
            n_chains=12,
            n_testbeds=5,
            builds_per_chain=(3, 4),
            timesteps_per_build=(60, 80),
            n_focus=3,
            include_rare_testbed=False,
            fault_magnitude=(14.0, 25.0),
            seed=33,
        )
    )


@pytest.fixture(scope="module")
def trained_model(corpus):
    series, envs_per_series = [], []
    for chain in corpus.chains:
        for execution in chain.history:
            series.append((execution.features, execution.cpu))
            envs_per_series.append(execution.environment)
    X, history, y, ids = build_windows_multi(series, 3)
    environments = [envs_per_series[i] for i in ids]
    model = Env2VecRegressor(n_lags=3, max_epochs=25, batch_size=256, dropout=0.0, seed=0)
    model.fit(environments, X, history, y)
    return model


class TestGoldenPath:
    """The README quickstart flow, asserted end to end."""

    def test_characterization_quality(self, corpus, trained_model):
        errors = []
        for chain in corpus.chains:
            execution = chain.history[0]
            X, history, y = build_windows(execution.features, execution.cpu, 3)
            predictions = trained_model.predict([execution.environment] * len(y), X, history)
            errors.append(mae(y, predictions))
        all_cpu = np.concatenate([e.cpu for c in corpus.chains for e in c.history])
        assert np.mean(errors) < all_cpu.std() * 0.5

    def test_detection_on_every_problem_chain(self, corpus, trained_model):
        detector = ContextualAnomalyDetector(gamma=2.0)
        for chain in corpus.focus_chains:
            errors = []
            for execution in chain.history:
                X, history, y = build_windows(execution.features, execution.cpu, 3)
                predicted = trained_model.predict([execution.environment] * len(y), X, history)
                errors.append(predicted - y)
            error_model = GaussianErrorModel.fit(np.concatenate(errors))
            X, history, y = build_windows(chain.current.features, chain.current.cpu, 3)
            predicted = trained_model.predict([chain.current.environment] * len(y), X, history)
            report = detector.detect(predicted, y, error_model)
            truth = chain.current.anomaly_mask()[3:]
            # At least one alarm lands inside a real problem interval.
            assert any(truth[a.start : a.end].any() for a in report.alarms)

    def test_model_roundtrip_through_store(self, corpus, trained_model, tmp_path):
        from repro.workflow import ModelStore

        store = ModelStore(tmp_path / "models")
        store.publish(trained_model.to_bytes(), {"source": "integration"})
        blob, version = store.fetch_latest()
        restored = Env2VecRegressor.from_bytes(blob)
        execution = corpus.chains[0].history[0]
        X, history, y = build_windows(execution.features, execution.cpu, 3)
        envs = [execution.environment] * len(y)
        np.testing.assert_allclose(
            restored.predict(envs, X, history),
            trained_model.predict(envs, X, history),
            atol=1e-10,
        )
        assert version.metadata == {"source": "integration"}

    def test_embeddings_reflect_em_overlap(self, corpus, trained_model):
        environments = corpus.environments(include_current=False)
        matrix = trained_model.embed_environments(environments)
        rng = np.random.default_rng(0)
        similar, dissimilar = [], []
        for _ in range(400):
            i, j = rng.integers(0, len(environments), 2)
            if i == j:
                continue
            distance = float(np.linalg.norm(matrix[i] - matrix[j]))
            overlap = environments[i].overlap(environments[j])
            (similar if overlap >= 2 else dissimilar).append(distance)
        assert np.mean(similar) < np.mean(dissimilar)

    def test_incremental_adaptation_end_to_end(self, corpus, trained_model):
        """A brand-new build version appears; fine-tuning adapts to it."""
        chain = corpus.chains[0]
        new_env = chain.current.environment.with_build("Build_Z99")
        execution = chain.current
        X, history, y = build_windows(execution.features, execution.cpu, 3)
        before = trained_model.coverage(new_env)["build"]
        assert before is False
        trained_model.fine_tune([new_env] * len(y), X, history, y, epochs=3)
        assert trained_model.coverage(new_env)["build"] is True
        predictions = trained_model.predict([new_env] * 10, X[:10], history[:10])
        assert np.isfinite(predictions).all()
