"""Span nesting, timing, exception safety, and the disabled fast path."""

import time

import pytest

from repro.obs import MetricsRegistry, SpanTracker
from repro.obs.spans import _NULL_SPAN


@pytest.fixture()
def tracker():
    return SpanTracker(MetricsRegistry(), max_roots=8)


class TestNesting:
    def test_nested_spans_build_a_tree(self, tracker):
        with tracker.span("outer"):
            with tracker.span("inner_a"):
                pass
            with tracker.span("inner_b"):
                with tracker.span("leaf"):
                    pass
        assert len(tracker.roots) == 1
        root = tracker.roots[0]
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner_a", "inner_b"]
        assert [child.name for child in root.children[1].children] == ["leaf"]

    def test_sequential_roots_accumulate(self, tracker):
        for name in ("a", "b", "c"):
            with tracker.span(name):
                pass
        assert [span.name for span in tracker.roots] == ["a", "b", "c"]

    def test_roots_ring_is_bounded(self, tracker):
        for i in range(20):
            with tracker.span(f"s{i}"):
                pass
        assert len(tracker.roots) == 8
        assert tracker.roots[0].name == "s12"

    def test_current_tracks_the_innermost_open_span(self, tracker):
        assert tracker.current is None
        with tracker.span("outer"):
            assert tracker.current.name == "outer"
            with tracker.span("inner"):
                assert tracker.current.name == "inner"
            assert tracker.current.name == "outer"
        assert tracker.current is None


class TestTiming:
    def test_duration_covers_the_block(self, tracker):
        with tracker.span("sleepy"):
            time.sleep(0.01)
        duration = tracker.roots[0].duration
        assert 0.009 <= duration < 1.0

    def test_child_duration_bounded_by_parent(self, tracker):
        with tracker.span("outer"):
            with tracker.span("inner"):
                time.sleep(0.005)
        root = tracker.roots[0]
        assert root.children[0].duration <= root.duration

    def test_durations_feed_the_span_histogram(self, tracker):
        with tracker.span("timed"):
            pass
        histogram = tracker._histogram.labels(span="timed")
        assert histogram.count == 1

    def test_walk_and_render(self, tracker):
        with tracker.span("outer"):
            with tracker.span("inner"):
                pass
        root = tracker.roots[0]
        assert [(d, s.name) for d, s in root.walk()] == [(0, "outer"), (1, "inner")]
        rendered = root.render(unit="ms")
        assert "outer" in rendered and "  inner" in rendered and "ms" in rendered


class TestExceptionSafety:
    def test_span_closes_and_records_on_exception(self, tracker):
        with pytest.raises(RuntimeError, match="boom"):
            with tracker.span("outer"):
                with tracker.span("inner"):
                    raise RuntimeError("boom")
        assert tracker.current is None
        root = tracker.roots[0]
        assert root.name == "outer"
        assert root.children[0].name == "inner"
        assert root.duration > 0.0


class TestDisabled:
    def test_disabled_registry_returns_the_shared_null_span(self):
        registry = MetricsRegistry(enabled=False)
        tracker = SpanTracker(registry)
        assert tracker.span("anything") is _NULL_SPAN
        with tracker.span("anything"):
            pass
        assert len(tracker.roots) == 0
        assert not list(tracker._histogram.samples())  # no child ever created

    def test_clear_drops_roots(self, tracker):
        with tracker.span("x"):
            pass
        tracker.clear()
        assert len(tracker.roots) == 0
