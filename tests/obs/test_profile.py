"""Per-op profiler contracts: installation, attribution, and parity.

The profiler exists for one purpose — the per-op table in
``bench_inference.py`` — so the tests pin the three things that table
depends on: ops accumulate time and call counts, installation is scoped
to the ``profile_ops`` block, and a profiled compiled forward produces
the same bytes as an unprofiled one (timing must never change the math).
"""

import time

import numpy as np

from repro.obs import OpProfiler, active_profiler, profile_ops


class TestOpProfiler:
    def test_accumulates_totals_and_calls(self):
        prof = OpProfiler()
        for _ in range(3):
            with prof.op("fast"):
                pass
        with prof.op("slow"):
            time.sleep(0.002)
        assert prof.calls == {"fast": 3, "slow": 1}
        assert prof.totals["slow"] >= 0.002
        # table() is slowest-first
        assert [name for name, _, _ in prof.table()][0] == "slow"

    def test_reset_clears_state(self):
        prof = OpProfiler()
        with prof.op("x"):
            pass
        prof.reset()
        assert prof.table() == []

    def test_install_is_scoped_and_nestable(self):
        assert active_profiler() is None
        with profile_ops() as outer:
            assert active_profiler() is outer
            with profile_ops() as inner:
                assert active_profiler() is inner
            assert active_profiler() is outer
        assert active_profiler() is None

    def test_profiled_engine_forward_is_bitwise_identical(self):
        from repro.core.model import Env2VecRegressor
        from repro.data import Environment

        rng = np.random.default_rng(0)
        environments = [
            Environment(f"T_{i % 2}", f"S_{i % 2}", f"C_{i % 2}", f"B_{i % 2}")
            for i in range(40)
        ]
        X = rng.standard_normal((40, 6))
        history = rng.standard_normal((40, 3))
        y = X @ rng.standard_normal(6) + history.sum(axis=1)
        regressor = Env2VecRegressor(
            n_lags=3, embedding_dim=4, fnn_hidden=8, gru_hidden=4,
            max_epochs=1, batch_size=20, seed=0,
        ).fit(environments, X, history, y)
        engine = regressor.compile()
        batch = regressor._batch(environments, X, history)
        plain = engine(**batch)
        with profile_ops() as prof:
            profiled = engine(**batch)
        assert profiled.tobytes() == plain.tobytes()
        assert set(prof.calls) == {"fnn", "encoder", "combine", "env_rows", "head"}
