"""Prometheus text exposition and the TSDB dogfood exporter."""

import pytest

from repro.obs import MetricsRegistry, Observability, TSDBExporter, render_prometheus
from repro.workflow.tsdb import TimeSeriesDB


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "Requests served.").inc(3)
    registry.gauge("repro_queue_depth", "Queue depth.").set(7)
    return registry


class TestPrometheusExposition:
    def test_help_type_and_sample_lines(self, registry):
        text = render_prometheus(registry)
        assert "# HELP repro_requests_total Requests served." in text
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 7" in text
        assert text.endswith("\n")

    def test_labelled_samples_render_label_pairs(self, registry):
        registry.counter("repro_writes_total", labels=("db",)).labels(db="a").inc()
        text = render_prometheus(registry)
        assert 'repro_writes_total{db="a"} 1' in text

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("repro_odd_total", labels=("tag",))
        counter.labels(tag='quo"te\\back\nline').inc()
        text = render_prometheus(registry)
        assert 'repro_odd_total{tag="quo\\"te\\\\back\\nline"} 1' in text

    def test_histogram_exposes_bucket_sum_count(self, registry):
        histogram = registry.histogram("repro_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        text = render_prometheus(registry)
        assert "# TYPE repro_lat_seconds histogram" in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_sum 5.05" in text
        assert "repro_lat_seconds_count 2" in text

    def test_non_integer_values_keep_precision(self, registry):
        registry.gauge("repro_ratio").set(0.125)
        assert "repro_ratio 0.125" in render_prometheus(registry)

    def test_observability_expose_delegates(self):
        obs = Observability()
        obs.counter("repro_hits_total").inc()
        assert "repro_hits_total 1" in obs.expose()


class TestTSDBExporter:
    def test_scrape_writes_prefixed_samples(self, registry):
        registry.counter("other_total").inc()  # outside the repro_ namespace
        exporter = TSDBExporter(registry, tsdb=TimeSeriesDB(name="obs-test"))
        written = exporter.scrape(at=100.0)
        assert written == 2  # the two repro_* samples only
        tsdb = exporter.tsdb
        assert tsdb.metrics() == ["repro_queue_depth", "repro_requests_total"]
        series = tsdb.query_one("repro_requests_total")
        assert series.timestamps == [100.0]
        assert series.values == [3.0]

    def test_scrapes_accumulate_series_history(self, registry):
        exporter = TSDBExporter(registry, tsdb=TimeSeriesDB(name="obs-test"))
        exporter.scrape(at=10.0)
        registry.get("repro_requests_total").inc(2)
        exporter.scrape(at=20.0)
        series = exporter.tsdb.query_one("repro_requests_total")
        assert series.values == [3.0, 5.0]

    def test_scrape_time_must_advance(self, registry):
        exporter = TSDBExporter(registry, tsdb=TimeSeriesDB(name="obs-test"))
        exporter.scrape(at=10.0)
        with pytest.raises(ValueError, match="must advance"):
            exporter.scrape(at=10.0)
        with pytest.raises(ValueError, match="must advance"):
            exporter.scrape(at=5.0)

    def test_tick_advances_by_interval(self, registry):
        exporter = TSDBExporter(registry, tsdb=TimeSeriesDB(name="obs-test"), interval=15.0)
        assert exporter.tick() == 15.0
        assert exporter.tick() == 30.0
        assert exporter.last_scrape == 30.0

    def test_extra_labels_are_stamped_on_every_series(self, registry):
        exporter = TSDBExporter(
            registry, tsdb=TimeSeriesDB(name="obs-test"), extra_labels={"job": "repro"}
        )
        exporter.scrape(at=1.0)
        series = exporter.tsdb.query_one("repro_requests_total")
        assert series.labels == {"job": "repro"}

    def test_invalid_interval_rejected(self, registry):
        with pytest.raises(ValueError, match="interval"):
            TSDBExporter(registry, tsdb=TimeSeriesDB(name="obs-test"), interval=0.0)

    def test_default_tsdb_is_lazily_constructed(self, registry):
        exporter = TSDBExporter(registry)
        assert exporter.tsdb.name == "observability"
