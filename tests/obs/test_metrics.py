"""Counter/Gauge/Histogram semantics and registry behaviour."""

import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("repro_things_total", "Things.")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("repro_things_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_disabled_registry_makes_inc_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_things_total")
        counter.inc(100)
        assert counter.value == 0.0
        registry.enabled = True
        counter.inc()
        assert counter.value == 1.0

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name!")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_live_things", "Live things.")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_gauge_can_go_negative(self, registry):
        gauge = registry.gauge("repro_live_things")
        gauge.dec(4)
        assert gauge.value == -4.0


class TestLabels:
    def test_children_are_independent(self, registry):
        counter = registry.counter("repro_writes_total", "Writes.", labels=("db",))
        counter.labels(db="a").inc()
        counter.labels(db="a").inc()
        counter.labels(db="b").inc(7)
        assert counter.labels(db="a").value == 2.0
        assert counter.labels(db="b").value == 7.0

    def test_labels_must_match_declared_names(self, registry):
        counter = registry.counter("repro_writes_total", labels=("db",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels(shard="a")
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels()

    def test_mutating_a_labelled_family_directly_raises(self, registry):
        counter = registry.counter("repro_writes_total", labels=("db",))
        with pytest.raises(ValueError, match="labelled family"):
            counter.inc()

    def test_samples_cover_all_children_sorted(self, registry):
        gauge = registry.gauge("repro_sizes", labels=("db",))
        gauge.labels(db="zeta").set(1)
        gauge.labels(db="alpha").set(2)
        samples = list(gauge.samples())
        assert [s.labels["db"] for s in samples] == ["alpha", "zeta"]
        assert [s.value for s in samples] == [2.0, 1.0]

    def test_invalid_label_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_x_total", labels=("0bad",))


class TestHistogram:
    def test_observations_land_in_correct_buckets(self, registry):
        histogram = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.cumulative_counts() == [1, 2, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(55.55)

    def test_boundary_value_falls_in_its_le_bucket(self, registry):
        histogram = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.1)  # le="0.1" is inclusive
        assert histogram.cumulative_counts() == [1, 1, 1]

    def test_bucket_samples_are_cumulative_with_inf(self, registry):
        histogram = registry.histogram("repro_lat_seconds", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(99.0)
        samples = {
            (s.name, s.labels.get("le")): s.value for s in histogram.samples()
        }
        assert samples[("repro_lat_seconds_bucket", "1")] == 1.0
        assert samples[("repro_lat_seconds_bucket", "2")] == 2.0
        assert samples[("repro_lat_seconds_bucket", "+Inf")] == 3.0
        assert samples[("repro_lat_seconds_sum", None)] == pytest.approx(101.0)
        assert samples[("repro_lat_seconds_count", None)] == 3.0

    def test_non_increasing_bounds_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("repro_lat_seconds", buckets=(1.0, 1.0, 2.0))

    def test_explicit_inf_bound_is_stripped(self, registry):
        histogram = registry.histogram(
            "repro_lat_seconds", buckets=(1.0, math.inf)
        )
        assert histogram.bounds == (1.0,)

    def test_labelled_histogram_children_keep_bounds(self, registry):
        histogram = registry.histogram(
            "repro_lat_seconds", labels=("stage",), buckets=(1.0, 2.0)
        )
        child = histogram.labels(stage="fit")
        child.observe(1.5)
        assert child.bounds == (1.0, 2.0)
        assert child.cumulative_counts() == [0, 1, 1]


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("repro_x_total", "X.")
        second = registry.counter("repro_x_total", "X.")
        assert first is second

    def test_kind_mismatch_raises(self, registry):
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_label_mismatch_raises(self, registry):
        registry.counter("repro_x_total", labels=("db",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_x_total", labels=("shard",))

    def test_bucket_mismatch_raises(self, registry):
        registry.histogram("repro_x_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("repro_x_seconds", buckets=(1.0, 3.0))
        assert registry.histogram("repro_x_seconds", buckets=(1.0, 2.0)) is not None

    def test_default_buckets_used_when_unspecified(self, registry):
        histogram = registry.histogram("repro_x_seconds")
        assert histogram.bounds == DEFAULT_BUCKETS

    def test_get_and_names(self, registry):
        registry.counter("repro_b_total")
        registry.gauge("repro_a")
        assert registry.names() == ["repro_a", "repro_b_total"]
        assert isinstance(registry.get("repro_b_total"), Counter)
        assert isinstance(registry.get("repro_a"), Gauge)
        with pytest.raises(KeyError, match="no metric registered"):
            registry.get("repro_missing")

    def test_reset_zeroes_values_but_keeps_handles(self, registry):
        counter = registry.counter("repro_x_total")
        gauge = registry.gauge("repro_y", labels=("db",))
        histogram = registry.histogram("repro_z_seconds", buckets=(1.0,))
        counter.inc(3)
        child = gauge.labels(db="a")
        child.set(9)
        histogram.observe(0.5)
        registry.reset()
        assert counter.value == 0.0
        assert child.value == 0.0  # the pre-reset handle still works
        assert histogram.count == 0
        child.set(1)
        assert gauge.labels(db="a").value == 1.0

    def test_registry_samples_span_all_families(self, registry):
        registry.counter("repro_x_total").inc()
        registry.gauge("repro_y").set(2)
        names = {sample.name for sample in registry.samples()}
        assert names == {"repro_x_total", "repro_y"}

    def test_histogram_instance_check(self, registry):
        assert isinstance(registry.histogram("repro_h_seconds"), Histogram)


class TestThreadSafety:
    """Regression: hot-path updates used bare ``+=`` on shared floats, so
    concurrent increments could interleave read-modify-write and lose
    counts. Every update now holds the metric's per-leaf value lock."""

    N_THREADS = 8
    N_OPS = 2000

    def _hammer(self, work):
        import threading

        barrier = threading.Barrier(self.N_THREADS)

        def run():
            barrier.wait()  # maximize interleaving
            for _ in range(self.N_OPS):
                work()

        threads = [threading.Thread(target=run) for _ in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_increments_are_exact(self, registry):
        counter = registry.counter("repro_hammer_total")
        self._hammer(lambda: counter.inc())
        assert counter.value == float(self.N_THREADS * self.N_OPS)

    def test_labelled_counter_children_are_exact(self, registry):
        counter = registry.counter("repro_hammer_labelled_total", labels=("worker",))
        children = [counter.labels(worker=str(i)) for i in range(self.N_THREADS)]
        import threading

        barrier = threading.Barrier(self.N_THREADS)

        def run(child):
            barrier.wait()
            for _ in range(self.N_OPS):
                child.inc()

        threads = [
            threading.Thread(target=run, args=(child,)) for child in children
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for child in children:
            assert child.value == float(self.N_OPS)

    def test_gauge_inc_dec_balance_to_zero(self, registry):
        gauge = registry.gauge("repro_hammer_live")

        def work():
            gauge.inc(3)
            gauge.dec(3)

        self._hammer(work)
        assert gauge.value == 0.0

    def test_histogram_counts_and_sum_are_exact(self, registry):
        histogram = registry.histogram("repro_hammer_seconds", buckets=(1.0, 2.0))
        self._hammer(lambda: histogram.observe(1.5))
        expected = self.N_THREADS * self.N_OPS
        assert histogram.count == expected
        assert histogram.sum == pytest.approx(1.5 * expected)
        # every observation landed in the (1.0, 2.0] bucket, none lost
        assert histogram.cumulative_counts() == [0, expected, expected]
