"""WorkerPool: order preservation, kinds, and error propagation."""

import threading

import pytest

from repro.parallel import WorkerPool, split_round_robin


def _square(x):  # module-level: must be picklable for the process pool
    return x * x


class TestSplitRoundRobin:
    def test_deals_in_stride_order(self):
        assert split_round_robin(list(range(7)), 3) == [[0, 3, 6], [1, 4], [2, 5]]

    def test_single_shard_is_identity(self):
        items = ["a", "b", "c"]
        assert split_round_robin(items, 1) == [items]

    def test_more_shards_than_items_leaves_empties(self):
        assert split_round_robin([1], 3) == [[1], [], []]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            split_round_robin([1], 0)

    def test_interleaving_restores_order(self):
        items = list(range(23))
        shards = split_round_robin(items, 4)
        restored = [None] * len(items)
        for s, shard in enumerate(shards):
            for i, value in enumerate(shard):
                restored[s + 4 * i] = value
        assert restored == items


class TestWorkerPool:
    def test_single_worker_degrades_to_serial(self):
        pool = WorkerPool(n_workers=1, kind="threads")
        assert pool.kind == "serial"
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool._executor is None  # no executor ever spun up

    def test_threads_preserve_input_order(self):
        import time

        def slow_when_small(x):
            time.sleep(0.02 if x < 2 else 0.0)  # later items finish first
            return x * 10

        with WorkerPool(n_workers=4, kind="threads") as pool:
            assert pool.map(slow_when_small, [0, 1, 2, 3, 4]) == [0, 10, 20, 30, 40]

    def test_threads_actually_run_concurrently(self):
        barrier = threading.Barrier(3, timeout=5)

        def rendezvous(_):
            barrier.wait()  # deadlocks unless 3 tasks run at once
            return True

        with WorkerPool(n_workers=3, kind="threads") as pool:
            assert pool.map(rendezvous, [0, 1, 2]) == [True, True, True]

    def test_process_pool_maps(self):
        with WorkerPool(n_workers=2, kind="processes") as pool:
            assert pool.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_first_error_by_input_order_wins(self):
        def fail_on(x):
            if x in (2, 4):
                raise RuntimeError(f"boom-{x}")
            return x

        with WorkerPool(n_workers=4, kind="threads") as pool:
            with pytest.raises(RuntimeError, match="boom-2"):
                pool.map(fail_on, [0, 1, 2, 3, 4])

    def test_empty_input(self):
        assert WorkerPool(n_workers=4).map(_square, []) == []

    def test_close_is_idempotent_and_reusable(self):
        pool = WorkerPool(n_workers=2, kind="threads")
        assert pool.map(_square, [2, 3]) == [4, 9]
        pool.close()
        pool.close()
        # A closed pool lazily re-creates its executor on next use.
        assert pool.map(_square, [4, 5]) == [16, 25]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(n_workers=0)
        with pytest.raises(ValueError, match="kind"):
            WorkerPool(n_workers=2, kind="fibers")


class TestSequencedMerger:
    def test_releases_in_sequence_order(self):
        from repro.parallel import SequencedMerger

        merger = SequencedMerger()
        assert merger.put(1, "b") == []  # ahead of its turn: buffered
        assert merger.pending == 1
        released = merger.put(0, "a")
        assert released == [(0, "a"), (1, "b")]
        assert merger.pending == 0
        assert merger.next_seq == 2

    def test_contiguous_run_released_at_once(self):
        from repro.parallel import SequencedMerger

        merger = SequencedMerger()
        assert merger.put(2, "c") == []
        assert merger.put(1, "b") == []
        assert merger.put(3, "d") == []
        assert merger.put(0, "a") == [(0, "a"), (1, "b"), (2, "c"), (3, "d")]

    def test_custom_start_and_in_order_passthrough(self):
        from repro.parallel import SequencedMerger

        merger = SequencedMerger(start=5)
        assert merger.put(5, "x") == [(5, "x")]
        assert merger.put(6, "y") == [(6, "y")]

    def test_duplicate_or_stale_sequence_rejected(self):
        from repro.parallel import SequencedMerger

        merger = SequencedMerger()
        merger.put(0, "a")
        with pytest.raises(ValueError):
            merger.put(0, "again")
        merger.put(2, "c")
        with pytest.raises(ValueError):
            merger.put(2, "again")
