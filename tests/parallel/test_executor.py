"""CampaignScorer: byte-identity with the serial path, reuse accounting."""

import numpy as np
import pytest

from repro.core.anomaly import ContextualAnomalyDetector, GaussianErrorModel
from repro.data import TelecomConfig, generate_telecom
from repro.data.windows import build_windows
from repro.parallel import CampaignScorer, ExecutionScore, WindowCache, WorkerPool
from repro.workflow import ModelStore, TrainingPipeline

N_LAGS = 3


@pytest.fixture(scope="module")
def dataset():
    return generate_telecom(
        TelecomConfig(
            n_chains=6,
            n_testbeds=3,
            builds_per_chain=(3, 4),
            timesteps_per_build=(40, 60),
            n_focus=2,
            include_rare_testbed=False,
            seed=5,
        )
    )


@pytest.fixture(scope="module")
def model(dataset):
    pipeline = TrainingPipeline(
        ModelStore(),
        n_lags=N_LAGS,
        model_params={"max_epochs": 5, "batch_size": 256, "dropout": 0.0},
        seed=0,
    )
    regressor = pipeline.train(dataset.history_training_series()).model
    regressor.compile()
    return regressor


@pytest.fixture(scope="module")
def fleet(dataset):
    """(pending executions, ingested-history map) shaped like a campaign day."""
    executions = [chain.executions[-1] for chain in dataset.chains]
    history = {
        chain.executions[0].environment.chain_key: list(chain.executions[:-1])
        for chain in dataset.chains
    }
    return executions, history


def _serial_reference(model, detector, executions, history, masked):
    """The orchestrator's serial monitor loop, transcribed literally."""

    def predict(execution):
        X, h, y = build_windows(execution.features, execution.cpu, N_LAGS)
        return model.predict([execution.environment] * len(y), X, h), y

    def error_model(chain_key):
        previous = [
            e for e in history.get(chain_key, []) if e.environment not in masked
        ]
        if not previous:
            return None
        errors = []
        for execution in previous:
            if execution.n_timesteps <= N_LAGS + 1:
                continue
            predictions, observed = predict(execution)
            errors.append(predictions - observed)
        if not errors:
            return None
        return GaussianErrorModel.fit(np.concatenate(errors))

    reports = []
    for execution in executions:
        if execution.n_timesteps <= N_LAGS + 1:
            reports.append(None)
            continue
        predictions, observed = predict(execution)
        em = error_model(execution.environment.chain_key)
        if em is None:
            reports.append(detector.detect_self_calibrated(predictions, observed))
        else:
            reports.append(detector.detect(predictions, observed, em))
    return reports


def _assert_reports_bitwise_equal(parallel, serial):
    assert (parallel is None) == (serial is None)
    if parallel is None:
        return
    assert parallel.flags.tobytes() == serial.flags.tobytes()
    assert parallel.errors.tobytes() == serial.errors.tobytes()  # bitwise
    assert parallel.alarms == serial.alarms
    assert parallel.gamma == serial.gamma


class TestCampaignScorer:
    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_bitwise_identical_to_serial_loop(self, model, fleet, n_workers):
        executions, history = fleet
        detector = ContextualAnomalyDetector(gamma=2.5, abs_threshold=5.0)
        scorer = CampaignScorer(
            detector, N_LAGS, pool=WorkerPool(n_workers, kind="threads")
        )
        scores = scorer.score(model, executions, history, masked=set())
        reference = _serial_reference(model, detector, executions, history, set())
        assert [s.index for s in scores] == list(range(len(executions)))
        for score, serial_report in zip(scores, reference):
            _assert_reports_bitwise_equal(score.report, serial_report)

    def test_masked_history_changes_calibration_like_serial(self, model, fleet):
        executions, history = fleet
        detector = ContextualAnomalyDetector(gamma=2.5, abs_threshold=5.0)
        # Mask every prior build of chain 0: the scorer must fall back to
        # self-calibrated detection exactly as the serial loop does.
        chain_key = executions[0].environment.chain_key
        masked = {e.environment for e in history[chain_key]}
        scorer = CampaignScorer(detector, N_LAGS, pool=WorkerPool(4))
        scores = scorer.score(model, executions, history, masked)
        reference = _serial_reference(model, detector, executions, history, masked)
        for score, serial_report in zip(scores, reference):
            _assert_reports_bitwise_equal(score.report, serial_report)

    def test_empty_executions(self, model):
        scorer = CampaignScorer(ContextualAnomalyDetector(), N_LAGS)
        assert scorer.score(model, [], {}, set()) == []

    def test_short_execution_skipped_not_scored(self, model, fleet):
        executions, history = fleet
        short = executions[0]
        short_clipped = type(short)(
            environment=short.environment,
            features=short.features[: N_LAGS + 1],
            cpu=short.cpu[: N_LAGS + 1],
        )
        scorer = CampaignScorer(ContextualAnomalyDetector(), N_LAGS)
        [score] = scorer.score(model, [short_clipped], history, set())
        assert score.report is None
        assert score.mae is None
        assert score.n_windows == 0
        assert score.n_alarms == 0

    def test_no_history_uses_self_calibration(self, model, fleet):
        executions, _ = fleet
        detector = ContextualAnomalyDetector(gamma=2.5, abs_threshold=5.0)
        scorer = CampaignScorer(detector, N_LAGS, pool=WorkerPool(2))
        [score] = scorer.score(model, executions[:1], {}, set())
        reference = _serial_reference(model, detector, executions[:1], {}, set())
        _assert_reports_bitwise_equal(score.report, reference[0])

    def test_calibration_computed_once_per_chain(self, model, fleet):
        """Two executions of one chain share one error-model calibration."""
        executions, history = fleet
        chain_key = executions[0].environment.chain_key
        pair = [executions[0], history[chain_key][-1]]
        scorer = CampaignScorer(
            ContextualAnomalyDetector(), N_LAGS, pool=WorkerPool(2)
        )
        cache = scorer.window_cache
        scores = scorer.score(model, pair, history, set())
        assert len(scores) == 2
        # Prior builds were windowed once for calibration and their windows
        # reused for the second execution's scoring pass.
        assert cache.hits > 0

    def test_mae_matches_direct_computation(self, model, fleet):
        executions, history = fleet
        scorer = CampaignScorer(ContextualAnomalyDetector(), N_LAGS)
        [score] = scorer.score(model, executions[:1], history, set())
        X, h, y = build_windows(executions[0].features, executions[0].cpu, N_LAGS)
        predictions = model.predict([executions[0].environment] * len(y), X, h)
        assert score.mae == float(np.abs(predictions - y).mean())
        assert score.n_windows == len(y)


class TestWindowCache:
    def test_identity_keyed_hit(self, fleet):
        executions, _ = fleet
        cache = WindowCache(N_LAGS)
        first = cache.windows(executions[0])
        second = cache.windows(executions[0])
        assert cache.hits == 1 and cache.misses == 1
        for a, b in zip(first, second):
            assert a is b

    def test_cached_arrays_are_frozen(self, fleet):
        executions, _ = fleet
        cache = WindowCache(N_LAGS)
        X, history, y = cache.windows(executions[0])
        for array in (X, history, y):
            with pytest.raises(ValueError):
                array[0] = 0.0

    def test_matches_direct_build_windows(self, fleet):
        executions, _ = fleet
        cache = WindowCache(N_LAGS)
        cached = cache.windows(executions[0])
        direct = build_windows(executions[0].features, executions[0].cpu, N_LAGS)
        for a, b in zip(cached, direct):
            np.testing.assert_array_equal(a, b)

    def test_eviction_bounds_size(self, fleet):
        executions, history = fleet
        cache = WindowCache(N_LAGS, maxsize=2)
        pool = [e for chain in history.values() for e in chain][:4]
        for execution in pool:
            cache.windows(execution)
        assert len(cache) == 2

    def test_rejects_zero_maxsize(self):
        with pytest.raises(ValueError):
            WindowCache(N_LAGS, maxsize=0)


class TestExecutionScore:
    def test_n_alarms_without_report(self):
        score = ExecutionScore(index=0, report=None, mae=None, n_windows=0)
        assert score.n_alarms == 0
