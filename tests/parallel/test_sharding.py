"""Snapshot shards: partitioning, routing, read parity, isolation."""

import numpy as np
import pytest

from repro.parallel import (
    ReadOnlyTSDBError,
    shard_index,
    snapshot_shards,
)
from repro.workflow.tsdb import AmbiguousSeries, SeriesNotFound, TimeSeriesDB


def _populated_db(n_envs=6, n_metrics=3, n_samples=5):
    db = TimeSeriesDB(name="test-db")
    timestamps = np.arange(float(n_samples))
    for e in range(n_envs):
        labels = {"env": f"em-{e:04d}"}
        for m in range(n_metrics):
            db.write_array(f"feature_{m:02d}", labels, timestamps, timestamps * (e + 1) + m)
        db.write_array("cpu_usage", labels, timestamps, timestamps + e)
    db.write("repro_selfmetric_total", {}, 0.0, 1.0)  # label-less series
    return db


class TestShardIndex:
    def test_stable_and_in_range(self):
        key = ("cpu_usage", (("env", "em-0001"),))
        first = shard_index(key, 4)
        assert 0 <= first < 4
        assert shard_index(key, 4) == first  # deterministic, not salted

    def test_label_half_drives_placement(self):
        """All metrics of one labelled entity land in the same shard."""
        labels = (("env", "em-0002"),)
        indices = {shard_index((m, labels), 4) for m in ("a", "b", "cpu_usage")}
        assert len(indices) == 1

    def test_labelless_series_hash_by_metric(self):
        assert shard_index(("some_total", ()), 3) == shard_index(("some_total", ()), 3)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_index(("m", ()), 0)


class TestSnapshotShards:
    def test_shards_partition_every_series(self):
        db = _populated_db()
        shards = snapshot_shards(db, 4)
        assert shards.n_shards == 4
        assert shards.n_series() == db.n_series()
        assert shards.n_samples() == db.n_samples()

    def test_single_shard_holds_everything(self):
        db = _populated_db()
        shards = snapshot_shards(db, 1)
        assert shards.shards[0].n_series() == db.n_series()

    def test_shard_for_finds_every_env_series(self):
        db = _populated_db()
        shards = snapshot_shards(db, 4)
        for e in range(6):
            labels = {"env": f"em-{e:04d}"}
            shard = shards.shard_for(labels)
            for metric in ("feature_00", "feature_01", "feature_02", "cpu_usage"):
                series = shard.query_one(metric, labels)
                live = db.query_one(metric, labels)
                np.testing.assert_array_equal(series.as_arrays()[0], live.as_arrays()[0])
                np.testing.assert_array_equal(series.as_arrays()[1], live.as_arrays()[1])

    def test_shard_for_rejects_empty_labels(self):
        shards = snapshot_shards(_populated_db(), 2)
        with pytest.raises(ValueError, match="non-empty"):
            shards.shard_for({})

    def test_global_query_one_parity_with_live_db(self):
        db = _populated_db()
        shards = snapshot_shards(db, 4)
        live = db.query_one("cpu_usage", {"env": "em-0003"})
        snap = shards.query_one("cpu_usage", {"env": "em-0003"})
        np.testing.assert_array_equal(snap.as_arrays()[1], live.as_arrays()[1])
        with pytest.raises(SeriesNotFound):
            shards.query_one("cpu_usage", {"env": "nope"})
        with pytest.raises(AmbiguousSeries):
            shards.query_one("cpu_usage")  # matches every env

    def test_shard_query_one_error_parity(self):
        db = _populated_db()
        shard = snapshot_shards(db, 1).shards[0]
        with pytest.raises(SeriesNotFound):
            shard.query_one("missing_metric", {"env": "em-0000"})
        with pytest.raises(AmbiguousSeries):
            shard.query_one("cpu_usage")

    def test_writes_refused(self):
        shard = snapshot_shards(_populated_db(), 2).shards[0]
        with pytest.raises(ReadOnlyTSDBError):
            shard.write("cpu_usage", {"env": "x"}, 99.0, 1.0)
        with pytest.raises(ReadOnlyTSDBError):
            shard.write_array("cpu_usage", {"env": "x"}, np.array([99.0]), np.array([1.0]))

    def test_snapshot_isolation(self):
        """Writes to the live store after the snapshot are invisible."""
        db = _populated_db(n_envs=1)
        shards = snapshot_shards(db, 2)
        before = len(shards.query_one("cpu_usage", {"env": "em-0000"}))
        db.write("cpu_usage", {"env": "em-0000"}, 100.0, 42.0)
        assert len(shards.query_one("cpu_usage", {"env": "em-0000"})) == before
        assert len(db.query_one("cpu_usage", {"env": "em-0000"})) == before + 1

    def test_snapshot_arrays_are_frozen(self):
        shards = snapshot_shards(_populated_db(n_envs=1), 1)
        timestamps, values = shards.query_one("cpu_usage", {"env": "em-0000"}).as_arrays()
        with pytest.raises(ValueError):
            values[0] = -1.0
        with pytest.raises(ValueError):
            timestamps[0] = -1.0

    def test_range_matches_live_half_open_contract(self):
        db = _populated_db(n_envs=1)
        shards = snapshot_shards(db, 1)
        snap = shards.query_one("cpu_usage", {"env": "em-0000"}).range(1.0, 3.0)
        live = db.query_one("cpu_usage", {"env": "em-0000"}).range(1.0, 3.0)
        np.testing.assert_array_equal(snap.as_arrays()[0], live.as_arrays()[0])
        np.testing.assert_array_equal(snap.as_arrays()[1], live.as_arrays()[1])

    def test_introspection(self):
        db = _populated_db(n_envs=2, n_metrics=1)
        shard = snapshot_shards(db, 1).shards[0]
        assert "cpu_usage" in shard.metrics()
        assert shard.label_values("env") == ["em-0000", "em-0001"]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            snapshot_shards(_populated_db(n_envs=1), 0)
