"""Failure injection: every public API must fail loudly on corrupt input.

Systematically feeds malformed data — NaNs, shape mismatches, truncated
blobs, out-of-order timestamps, empty collections — to the public surface
and asserts clear, typed errors rather than silent corruption.
"""

import zipfile

import numpy as np
import pytest

from repro.core import (
    ContextualAnomalyDetector,
    Env2VecRegressor,
    EnvironmentVocabulary,
    GaussianErrorModel,
)
from repro.data import Environment, Frame, TelecomConfig, build_windows, generate_telecom
from repro.ml import PCA, Lasso, Ridge, StandardScaler
from repro.nn import Dense, Tensor, Trainer
from repro.workflow import AlarmStore, ModelStore, TimeSeriesDB


def _env():
    return Environment("T1", "S1", "C1", "B1")


class TestNaNPropagation:
    def test_ridge_rejects_nan_features(self):
        X = np.ones((10, 2))
        X[3, 1] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            Ridge().fit(X, np.ones(10))

    def test_ridge_rejects_inf_target(self):
        y = np.ones(10)
        y[0] = np.inf
        with pytest.raises(ValueError, match="NaN|infinite"):
            Ridge().fit(np.ones((10, 2)), y)

    def test_lasso_rejects_nan(self):
        X = np.ones((20, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            Lasso().fit(X, np.ones(20))

    def test_error_model_rejects_nan(self):
        with pytest.raises(ValueError):
            GaussianErrorModel.fit(np.array([1.0, np.nan, 2.0]))


class TestShapeCorruption:
    def test_windows_reject_ragged_inputs(self):
        with pytest.raises(ValueError):
            build_windows(np.zeros((10, 3)), np.zeros(9), 2)

    def test_detector_rejects_misaligned_series(self):
        detector = ContextualAnomalyDetector()
        with pytest.raises(ValueError):
            detector.detect(np.zeros(5), np.zeros(6), GaussianErrorModel(0, 1))

    def test_frame_rejects_ragged_columns(self):
        frame = Frame({"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            frame["b"] = [1.0, 2.0, 3.0]

    def test_dense_rejects_wrong_input_width(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((4, 5))))  # matmul shape mismatch

    def test_scaler_rejects_wrong_width(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((2, 4)))

    def test_pca_rejects_1d(self):
        with pytest.raises(ValueError):
            PCA().fit(np.zeros(10))


class TestBlobCorruption:
    def test_truncated_model_blob_fails_loudly(self):
        rng = np.random.default_rng(0)
        envs = [_env()] * 60
        X = rng.standard_normal((60, 3))
        history = rng.standard_normal((60, 2))
        model = Env2VecRegressor(n_lags=2, max_epochs=2, seed=0)
        model.fit(envs, X, history, X[:, 0])
        blob = model.to_bytes()
        with pytest.raises((ValueError, zipfile.BadZipFile)):
            Env2VecRegressor.from_bytes(blob[: len(blob) // 2])

    def test_garbage_blob_fails_loudly(self):
        with pytest.raises((ValueError, zipfile.BadZipFile)):
            Env2VecRegressor.from_bytes(b"definitely not an npz archive")

    def test_model_store_rejects_empty_blob(self):
        with pytest.raises(ValueError):
            ModelStore().publish(b"")


class TestTemporalCorruption:
    def test_tsdb_rejects_time_travel(self):
        db = TimeSeriesDB()
        db.write("cpu", {"env": "a"}, 100.0, 1.0)
        with pytest.raises(ValueError, match="increasing"):
            db.write("cpu", {"env": "a"}, 50.0, 2.0)

    def test_alarm_store_rejects_inverted_interval(self):
        with AlarmStore() as store:
            with pytest.raises(ValueError):
                store.push(_env(), 10, 5, 1.0, 2.0)


class TestEmptyCollections:
    def test_vocabulary_empty_fit(self):
        with pytest.raises(ValueError):
            EnvironmentVocabulary().fit([])

    def test_trainer_empty_inputs(self):
        class Identity(Dense):
            pass

        model = Identity(2, 1, rng=np.random.default_rng(0))

        class Wrap(Dense):
            def forward(self, x):
                return super().forward(Tensor(x)).reshape(-1)

        wrapped = Wrap(2, 1, rng=np.random.default_rng(0))
        trainer = Trainer(wrapped)
        with pytest.raises(ValueError):
            trainer.fit({}, np.zeros(0))

    def test_generate_telecom_invalid_config(self):
        with pytest.raises(ValueError):
            generate_telecom(TelecomConfig(n_chains=0))


class TestFaultedCorpusIsStillSane:
    """Even with aggressive fault injection, the corpus stays in-range."""

    def test_extreme_fault_magnitudes_clipped(self):
        dataset = generate_telecom(
            TelecomConfig(
                n_chains=6,
                n_testbeds=3,
                builds_per_chain=(2, 3),
                timesteps_per_build=(40, 50),
                n_focus=4,
                include_rare_testbed=False,
                fault_magnitude=(60.0, 90.0),  # absurdly large
                impactful_per_focus=(4, 6),
                seed=5,
            )
        )
        for chain in dataset.chains:
            for execution in chain.executions:
                assert execution.cpu.min() >= 0.0
                assert execution.cpu.max() <= 100.0
                assert np.isfinite(execution.features).all()

    def test_detection_survives_extreme_faults(self):
        dataset = generate_telecom(
            TelecomConfig(
                n_chains=6,
                n_testbeds=3,
                builds_per_chain=(3, 3),
                timesteps_per_build=(50, 60),
                n_focus=2,
                include_rare_testbed=False,
                fault_magnitude=(60.0, 90.0),
                seed=5,
            )
        )
        from repro.eval import train_env2vec_telecom
        from repro.eval.telecom_experiments import _predict_execution

        model = train_env2vec_telecom(dataset, fast=True, max_epochs=8)
        chain = dataset.focus_chains[0]
        predicted, observed = _predict_execution(model, chain.current, 3)
        detector = ContextualAnomalyDetector(gamma=2.0)
        report = detector.detect_self_calibrated(predicted, observed)
        assert np.isfinite(report.errors).all()


class TestCorruptModelStoreBlobs:
    """The store must refuse to serve tampered or truncated blobs."""

    @staticmethod
    def _published_store(path=None):
        store = ModelStore(path=path)
        version = store.publish(b"x" * 256, metadata={"kind": "good"})
        return store, version

    def test_bit_flip_detected(self):
        from repro.workflow import CorruptModelError

        store, version = self._published_store()
        blob = bytearray(store._blobs[version.version])
        blob[17] ^= 0xFF
        store._blobs[version.version] = bytes(blob)
        with pytest.raises(CorruptModelError, match="SHA-256"):
            store.fetch_latest()

    def test_truncation_detected(self):
        from repro.workflow import CorruptModelError

        store, version = self._published_store()
        store._blobs[version.version] = store._blobs[version.version][:-32]
        with pytest.raises(CorruptModelError, match="truncated"):
            store.fetch(version.version)

    def test_on_disk_corruption_detected_on_reload(self, tmp_path):
        from repro.workflow import CorruptModelError

        store, version = self._published_store(path=tmp_path)
        blob_file = tmp_path / f"model-{version.version:06d}.npz"
        raw = bytearray(blob_file.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        blob_file.write_bytes(bytes(raw))
        reloaded = ModelStore(path=tmp_path)
        with pytest.raises(CorruptModelError):
            reloaded.fetch_latest()

    def test_intact_versions_still_served(self):
        from repro.workflow import CorruptModelError

        store, v1 = self._published_store()
        v2 = store.publish(b"y" * 128)
        store._blobs[v2.version] = b"z" * 128  # corrupt only the latest
        blob, record = store.fetch(v1.version)
        assert blob == b"x" * 256 and record.version == v1.version
        with pytest.raises(CorruptModelError):
            store.fetch_latest()


class TestLastGoodModelFallback:
    """A corrupt publish must not take monitoring dark (satellite: the
    prediction pipeline keeps serving its cached last-good model)."""

    @staticmethod
    def _fitted_blob(seed):
        rng = np.random.default_rng(seed)
        envs = [_env()] * 60
        X = rng.standard_normal((60, 3))
        history = rng.standard_normal((60, 2))
        model = Env2VecRegressor(n_lags=2, max_epochs=2, seed=seed)
        model.fit(envs, X, history, X[:, 0])
        return model.to_bytes()

    def test_cached_model_keeps_serving_after_corrupt_publish(self):
        from repro.data import TestExecution
        from repro.workflow import PredictionPipeline

        store = ModelStore()
        v1 = store.publish(self._fitted_blob(0))
        with AlarmStore() as alarms:
            pipeline = PredictionPipeline(store, alarms, gamma=3.0)
            rng = np.random.default_rng(3)
            execution = TestExecution(
                environment=_env(),
                features=rng.standard_normal((40, 3)),
                cpu=50.0 + rng.standard_normal(40),
            )
            first = pipeline.run(execution)
            assert first.model_version == v1.version

            v2 = store.publish(self._fitted_blob(1))
            store._blobs[v2.version] = store._blobs[v2.version][:-64]  # torn write
            fallback = pipeline.run(execution)
            assert fallback.model_version == v1.version  # last-good served

    def test_corrupt_blob_with_no_cache_propagates(self):
        from repro.data import TestExecution
        from repro.workflow import CorruptModelError, PredictionPipeline

        store = ModelStore()
        version = store.publish(self._fitted_blob(0))
        store._blobs[version.version] = store._blobs[version.version][:-64]
        with AlarmStore() as alarms:
            pipeline = PredictionPipeline(store, alarms)
            rng = np.random.default_rng(3)
            execution = TestExecution(
                environment=_env(),
                features=rng.standard_normal((40, 3)),
                cpu=np.full(40, 50.0),
            )
            with pytest.raises(CorruptModelError):
                pipeline.run(execution)


class TestTrainingDivergence:
    """The Trainer's NaN/Inf loss guard (satellite: TrainingDiverged)."""

    @staticmethod
    def _model():
        class Wrap(Dense):
            def forward(self, x):
                return super().forward(Tensor(x)).reshape(-1)

        return Wrap(2, 1, rng=np.random.default_rng(0))

    def test_nan_targets_raise_training_diverged_naming_epoch(self):
        from repro.nn import TrainingDiverged

        trainer = Trainer(self._model(), max_epochs=5)
        x = np.random.default_rng(0).standard_normal((32, 2))
        with pytest.raises(TrainingDiverged, match="epoch 0") as excinfo:
            trainer.fit({"x": x}, np.full(32, np.nan))
        assert excinfo.value.epoch == 0

    def test_nan_validation_loss_raises_training_diverged(self):
        from repro.nn import TrainingDiverged

        trainer = Trainer(self._model(), max_epochs=5)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((32, 2))
        y = x[:, 0]
        with pytest.raises(TrainingDiverged) as excinfo:
            trainer.fit({"x": x}, y, {"x": x}, np.full(32, np.inf))
        assert excinfo.value.epoch >= 0
        assert "validation loss" in str(excinfo.value)

    def test_training_diverged_is_a_runtime_error(self):
        from repro.nn import TrainingDiverged

        assert issubclass(TrainingDiverged, RuntimeError)
