"""Anomaly likelihood post-processing (Ahmad et al. 2017, §3 of that paper).

Raw temporal-memory anomaly scores are noisy; HTM-AD converts them into an
*anomaly likelihood* by modelling the recent distribution of scores as a
Gaussian and computing the tail probability of the short-term average:

    likelihood = 1 - Q((shortMean - windowMean) / windowStd)

where Q is the Gaussian survival function. A likelihood near 1 means the
recent anomaly scores are extreme relative to the historical distribution.
The paper thresholds this at exactly 1.0 ("we only considered when the
anomaly score is equal to 1 to generate alarms"); in practice that
corresponds to a likelihood above ``1 - epsilon``.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy import stats

__all__ = ["AnomalyLikelihood"]


class AnomalyLikelihood:
    def __init__(self, window: int = 200, short_window: int = 10, learning_period: int = 50):
        if short_window < 1 or window < short_window:
            raise ValueError("need 1 <= short_window <= window")
        if learning_period < 0:
            raise ValueError("learning_period must be >= 0")
        self.window = window
        self.short_window = short_window
        self.learning_period = learning_period
        self._scores: deque[float] = deque(maxlen=window)
        self._seen = 0

    def update(self, raw_score: float) -> float:
        """Feed a raw anomaly score; returns the anomaly likelihood in [0, 1]."""
        if not 0.0 <= raw_score <= 1.0:
            raise ValueError("raw anomaly scores must be in [0, 1]")
        self._scores.append(float(raw_score))
        self._seen += 1
        if self._seen <= self.learning_period or len(self._scores) < self.short_window:
            return 0.5
        scores = np.asarray(self._scores)
        mean = scores.mean()
        std = scores.std()
        if std < 1e-6:
            std = 1e-6
        short_mean = scores[-self.short_window :].mean()
        # z-test on the short-window mean: under the null (no change) its
        # standard error is std / sqrt(short_window).
        z = (short_mean - mean) / (std / np.sqrt(self.short_window))
        return float(1.0 - stats.norm.sf(z))

    def reset(self) -> None:
        self._scores.clear()
        self._seen = 0
