"""End-to-end HTM anomaly detector (the HTM-AD baseline of §4.2.2).

Wires encoder → spatial pooler → temporal memory → anomaly likelihood into
a streaming detector over a single scalar metric. Crucially — and this is
the property the paper contrasts against — the detector sees **only** the
target resource time series; it has no access to contextual features or
environment metadata, which is why it underperforms on contextual
anomalies (Table 5: A_T = 0.381).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .anomaly import AnomalyLikelihood
from .encoder import ScalarEncoder
from .spatial_pooler import SpatialPooler
from .temporal_memory import TemporalMemory

__all__ = ["HTMDetector", "HTMResult"]


@dataclass
class HTMResult:
    """Streaming outputs for one series: raw scores and likelihoods."""

    raw_scores: np.ndarray
    likelihoods: np.ndarray

    def alarms(self, threshold: float = 0.99) -> np.ndarray:
        """Boolean alarm mask: likelihood ~1, as the paper thresholds it."""
        return self.likelihoods >= threshold


class HTMDetector:
    """Streaming univariate anomaly detector."""

    def __init__(
        self,
        minimum: float,
        maximum: float,
        n_bits: int = 256,
        w: int = 17,
        n_columns: int = 160,
        cells_per_column: int = 6,
        sparsity: float = 0.06,
        likelihood_window: int = 100,
        short_window: int = 5,
        learning_period: int = 50,
        seed: int | None = 0,
    ):
        self.encoder = ScalarEncoder(minimum, maximum, n_bits=n_bits, w=w)
        self.pooler = SpatialPooler(
            input_size=n_bits, n_columns=n_columns, sparsity=sparsity, seed=seed
        )
        n_active = self.pooler.n_active
        self.memory = TemporalMemory(
            n_columns=n_columns,
            cells_per_column=cells_per_column,
            activation_threshold=max(1, int(n_active * 0.8)),
            learning_threshold=max(1, int(n_active * 0.5)),
            seed=seed,
        )
        self.likelihood = AnomalyLikelihood(
            window=likelihood_window, short_window=short_window, learning_period=learning_period
        )

    def step(self, value: float, learn: bool = True) -> tuple[float, float]:
        """Consume one value; returns (raw_anomaly, anomaly_likelihood)."""
        sdr = self.encoder.encode(value)
        columns = self.pooler.compute(sdr, learn=learn)
        raw = self.memory.compute(columns, learn=learn)
        return raw, self.likelihood.update(raw)

    def run(self, series: np.ndarray, learn: bool = True) -> HTMResult:
        """Process a whole series; returns per-timestep scores."""
        series = np.asarray(series, dtype=np.float64)
        raw_scores = np.empty(len(series))
        likelihoods = np.empty(len(series))
        for i, value in enumerate(series):
            raw_scores[i], likelihoods[i] = self.step(value, learn=learn)
        return HTMResult(raw_scores=raw_scores, likelihoods=likelihoods)

    def reset_sequence(self) -> None:
        """Forget sequence state between independent series."""
        self.memory.reset()
        self.likelihood.reset()
