"""HTM temporal memory: learns sequences over active-column SDRs.

A compact but faithful implementation of the temporal-memory algorithm:
columns contain ``cells_per_column`` cells; distal segments on each cell
learn to recognize sets of previously-active cells. A column whose
activation was predicted activates only its predicted cells; an unpredicted
column *bursts* (all cells activate) and grows a new segment on a
best-matching or least-used cell.

The instantaneous anomaly score — the quantity HTM-AD thresholds — is the
fraction of currently active columns that were **not** predicted:

    anomaly = |active - predicted| / |active|
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TemporalMemory", "Segment"]


@dataclass
class Segment:
    """A distal dendrite segment: presynaptic cell ids -> permanences."""

    cell: int
    synapses: dict[int, float] = field(default_factory=dict)

    def active_potential(self, active_cells: set[int]) -> int:
        """Count synapses (any permanence) to currently active cells."""
        return sum(1 for presynaptic in self.synapses if presynaptic in active_cells)

    def active_connected(self, active_cells: set[int], threshold: float) -> int:
        """Count connected synapses to currently active cells."""
        return sum(
            1
            for presynaptic, permanence in self.synapses.items()
            if permanence >= threshold and presynaptic in active_cells
        )


class TemporalMemory:
    def __init__(
        self,
        n_columns: int,
        cells_per_column: int = 8,
        activation_threshold: int = 10,
        learning_threshold: int = 7,
        initial_permanence: float = 0.3,
        permanence_threshold: float = 0.5,
        permanence_increment: float = 0.1,
        permanence_decrement: float = 0.05,
        max_new_synapses: int = 16,
        seed: int | None = None,
    ):
        if cells_per_column < 1:
            raise ValueError("cells_per_column must be >= 1")
        if learning_threshold > activation_threshold:
            raise ValueError("learning_threshold must be <= activation_threshold")
        self.n_columns = n_columns
        self.cells_per_column = cells_per_column
        self.activation_threshold = activation_threshold
        self.learning_threshold = learning_threshold
        self.initial_permanence = initial_permanence
        self.permanence_threshold = permanence_threshold
        self.permanence_increment = permanence_increment
        self.permanence_decrement = permanence_decrement
        self.max_new_synapses = max_new_synapses
        self._rng = np.random.default_rng(seed)
        self.segments: list[Segment] = []
        self._segments_by_cell: dict[int, list[Segment]] = {}
        self.active_cells: set[int] = set()
        self.winner_cells: set[int] = set()
        self.predicted_cells: set[int] = set()

    # -- cell/column arithmetic -----------------------------------------
    def column_of(self, cell: int) -> int:
        return cell // self.cells_per_column

    def cells_of(self, column: int) -> range:
        start = column * self.cells_per_column
        return range(start, start + self.cells_per_column)

    # -- main step -------------------------------------------------------
    def compute(self, active_columns: np.ndarray, learn: bool = True) -> float:
        """Advance one timestep; returns the instantaneous anomaly score."""
        active_columns = np.asarray(active_columns, dtype=bool)
        if active_columns.shape != (self.n_columns,):
            raise ValueError(f"expected ({self.n_columns},) column SDR; got {active_columns.shape}")
        column_ids = np.flatnonzero(active_columns)
        prev_active = self.active_cells
        prev_winner = self.winner_cells

        predicted_columns = {self.column_of(cell) for cell in self.predicted_cells}
        n_active = len(column_ids)
        unpredicted = sum(1 for column in column_ids if column not in predicted_columns)
        anomaly = unpredicted / n_active if n_active else 0.0

        next_active: set[int] = set()
        next_winner: set[int] = set()
        for column in column_ids:
            predicted_here = [
                cell for cell in self.cells_of(column) if cell in self.predicted_cells
            ]
            if predicted_here:
                next_active.update(predicted_here)
                next_winner.update(predicted_here)
                if learn:
                    for cell in predicted_here:
                        for segment in self._matching_segments(cell, prev_active):
                            self._reinforce(segment, prev_active)
            else:
                # Burst: all cells activate; grow a segment on the
                # best-matching cell (or the least-used one).
                next_active.update(self.cells_of(column))
                winner = self._select_burst_winner(column, prev_active)
                next_winner.add(winner)
                if learn and prev_winner:
                    segment = self._best_matching_segment(winner, prev_active)
                    if segment is None:
                        segment = self._create_segment(winner)
                    self._reinforce(segment, prev_active)
                    self._grow_synapses(segment, prev_winner)

        if learn:
            # Punish segments that predicted columns that did not activate.
            for cell in self.predicted_cells:
                if self.column_of(cell) not in set(column_ids):
                    for segment in self._matching_segments(cell, prev_active):
                        for presynaptic in list(segment.synapses):
                            if presynaptic in prev_active:
                                segment.synapses[presynaptic] = max(
                                    0.0, segment.synapses[presynaptic] - self.permanence_decrement
                                )

        self.active_cells = next_active
        self.winner_cells = next_winner
        self.predicted_cells = self._compute_predictions(next_active)
        return anomaly

    def reset(self) -> None:
        """Clear sequence state (e.g. between independent time series)."""
        self.active_cells = set()
        self.winner_cells = set()
        self.predicted_cells = set()

    # -- internals --------------------------------------------------------
    def _compute_predictions(self, active_cells: set[int]) -> set[int]:
        predicted: set[int] = set()
        for segment in self.segments:
            if segment.active_connected(active_cells, self.permanence_threshold) >= self.activation_threshold:
                predicted.add(segment.cell)
        return predicted

    def _matching_segments(self, cell: int, active_cells: set[int]) -> list[Segment]:
        return [
            segment
            for segment in self._segments_by_cell.get(cell, [])
            if segment.active_potential(active_cells) >= self.learning_threshold
        ]

    def _best_matching_segment(self, cell: int, active_cells: set[int]) -> Segment | None:
        best: Segment | None = None
        best_overlap = self.learning_threshold - 1
        for segment in self._segments_by_cell.get(cell, []):
            overlap = segment.active_potential(active_cells)
            if overlap > best_overlap:
                best_overlap = overlap
                best = segment
        return best

    def _select_burst_winner(self, column: int, prev_active: set[int]) -> int:
        cells = list(self.cells_of(column))
        best_cell = None
        best_overlap = self.learning_threshold - 1
        for cell in cells:
            segment = self._best_matching_segment(cell, prev_active)
            if segment is not None:
                overlap = segment.active_potential(prev_active)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best_cell = cell
        if best_cell is not None:
            return best_cell
        # Least-used cell breaks ties pseudo-randomly.
        usage = [(len(self._segments_by_cell.get(cell, [])), self._rng.random(), cell) for cell in cells]
        return min(usage)[2]

    def _create_segment(self, cell: int) -> Segment:
        segment = Segment(cell=cell)
        self.segments.append(segment)
        self._segments_by_cell.setdefault(cell, []).append(segment)
        return segment

    def _reinforce(self, segment: Segment, active_cells: set[int]) -> None:
        for presynaptic in list(segment.synapses):
            if presynaptic in active_cells:
                segment.synapses[presynaptic] = min(
                    1.0, segment.synapses[presynaptic] + self.permanence_increment
                )
            else:
                segment.synapses[presynaptic] = max(
                    0.0, segment.synapses[presynaptic] - self.permanence_decrement
                )

    def _grow_synapses(self, segment: Segment, winner_cells: set[int]) -> None:
        candidates = [cell for cell in winner_cells if cell not in segment.synapses]
        if not candidates:
            return
        budget = self.max_new_synapses - segment.active_potential(winner_cells)
        if budget <= 0:
            return
        chosen = self._rng.permutation(len(candidates))[:budget]
        for i in chosen:
            segment.synapses[candidates[i]] = self.initial_permanence
