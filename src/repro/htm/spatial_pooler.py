"""HTM spatial pooler: maps input SDRs to a stable sparse column code.

A compact implementation of the spatial pooling algorithm: each column has
potential synapses to a random subset of input bits with scalar permanences;
columns with the highest overlap with the active input win a global
k-winners-take-all inhibition, and the winners' synapses are reinforced
toward the active bits (Hebbian learning with permanence increments and
decrements).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SpatialPooler"]


class SpatialPooler:
    def __init__(
        self,
        input_size: int,
        n_columns: int = 256,
        sparsity: float = 0.02,
        potential_fraction: float = 0.5,
        permanence_threshold: float = 0.5,
        permanence_increment: float = 0.05,
        permanence_decrement: float = 0.008,
        seed: int | None = None,
    ):
        if not 0.0 < sparsity < 1.0:
            raise ValueError("sparsity must be in (0, 1)")
        if not 0.0 < potential_fraction <= 1.0:
            raise ValueError("potential_fraction must be in (0, 1]")
        self.input_size = input_size
        self.n_columns = n_columns
        self.n_active = max(1, int(round(n_columns * sparsity)))
        self.permanence_threshold = permanence_threshold
        self.permanence_increment = permanence_increment
        self.permanence_decrement = permanence_decrement
        rng = np.random.default_rng(seed)
        n_potential = max(1, int(round(input_size * potential_fraction)))
        self.potential = np.zeros((n_columns, input_size), dtype=bool)
        for column in range(n_columns):
            chosen = rng.choice(input_size, size=n_potential, replace=False)
            self.potential[column, chosen] = True
        # Permanences start centered on the threshold so roughly half the
        # potential synapses are initially connected.
        self.permanence = np.where(
            self.potential,
            rng.normal(permanence_threshold, 0.1, size=(n_columns, input_size)),
            0.0,
        ).clip(0.0, 1.0)

    @property
    def connected(self) -> np.ndarray:
        """Boolean matrix of currently connected synapses."""
        return self.potential & (self.permanence >= self.permanence_threshold)

    def compute(self, input_sdr: np.ndarray, learn: bool = True) -> np.ndarray:
        """Return the active-column SDR for an input; optionally learn."""
        input_sdr = np.asarray(input_sdr, dtype=bool)
        if input_sdr.shape != (self.input_size,):
            raise ValueError(f"expected input of shape ({self.input_size},); got {input_sdr.shape}")
        overlaps = (self.connected & input_sdr).sum(axis=1)
        # k-winners-take-all global inhibition with random tie-breaking via
        # stable argsort on (overlap, column index).
        winners = np.argsort(overlaps, kind="stable")[-self.n_active :]
        active = np.zeros(self.n_columns, dtype=bool)
        active[winners] = True
        if learn:
            for column in winners:
                mask = self.potential[column]
                delta = np.where(input_sdr, self.permanence_increment, -self.permanence_decrement)
                self.permanence[column, mask] = np.clip(
                    self.permanence[column, mask] + delta[mask], 0.0, 1.0
                )
        return active
