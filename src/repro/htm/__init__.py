"""A compact hierarchical temporal memory (HTM) implementation.

Substitutes for Numenta's HTM, which backs the HTM-AD baseline [1] the
paper compares against in §4.2.2 and §4.3: an *unsupervised, univariate*
streaming anomaly detector that sees only the resource time series — no
contextual features, no environment metadata.
"""

from .anomaly import AnomalyLikelihood
from .detector import HTMDetector, HTMResult
from .encoder import ScalarEncoder
from .spatial_pooler import SpatialPooler
from .temporal_memory import Segment, TemporalMemory

__all__ = [
    "ScalarEncoder",
    "SpatialPooler",
    "TemporalMemory",
    "Segment",
    "AnomalyLikelihood",
    "HTMDetector",
    "HTMResult",
]
