"""Sparse distributed representation (SDR) encoders for HTM.

HTM-AD [Ahmad et al., Neurocomputing 2017] — the unsupervised baseline the
paper compares against in §4.2.2 — consumes scalar metric streams encoded
as SDRs. We implement the classic scalar bucket encoder: a value maps to
``w`` consecutive active bits within ``n`` total bits, so nearby values
share active bits (semantic overlap) and distant values share none.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ScalarEncoder"]


class ScalarEncoder:
    """Encode scalars in [minimum, maximum] as w-of-n sparse binary vectors."""

    def __init__(self, minimum: float, maximum: float, n_bits: int = 400, w: int = 21):
        if maximum <= minimum:
            raise ValueError("maximum must exceed minimum")
        if w < 1 or n_bits < w:
            raise ValueError("need 1 <= w <= n_bits")
        if w % 2 == 0:
            raise ValueError("w must be odd (centered bucket)")
        self.minimum = float(minimum)
        self.maximum = float(maximum)
        self.n_bits = n_bits
        self.w = w
        self._buckets = n_bits - w + 1

    def encode(self, value: float) -> np.ndarray:
        """Return a binary vector with ``w`` consecutive ones (clipped range)."""
        clipped = min(max(float(value), self.minimum), self.maximum)
        fraction = (clipped - self.minimum) / (self.maximum - self.minimum)
        start = int(round(fraction * (self._buckets - 1)))
        sdr = np.zeros(self.n_bits, dtype=bool)
        sdr[start : start + self.w] = True
        return sdr

    def bucket(self, value: float) -> int:
        """Bucket index for a value (used in overlap tests)."""
        clipped = min(max(float(value), self.minimum), self.maximum)
        fraction = (clipped - self.minimum) / (self.maximum - self.minimum)
        return int(round(fraction * (self._buckets - 1)))

    def overlap(self, a: float, b: float) -> int:
        """Number of shared active bits between the encodings of two values."""
        return int(np.sum(self.encode(a) & self.encode(b)))
