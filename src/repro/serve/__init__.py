"""Always-on serving layer: campaign-as-a-service over the workflow.

The batch workflow monitors executions a day at a time; this package
keeps the same pipelines resident behind a unified request API, the way
a production deployment of the paper's system would actually run:

- :class:`Env2VecService` — the service: bounded admission with explicit
  backpressure and deadline shedding, cross-chain micro-batching, a
  per-version warm model pool fed by publish hooks, a circuit breaker on
  the TSDB boundary, and (with ``n_workers > 0``) a supervised
  multi-process scoring tier with heartbeat crash/stall detection,
  deterministic in-flight re-dispatch, and rolling model rollouts.
- :class:`ServeClient` — the single client facade (``predict`` /
  ``predict_many`` / ``scrape`` / ``alarms`` / ``health``), all typed
  requests in, typed responses out.
- :mod:`~repro.serve.loadgen` — seeded bursty load generation for the
  serving benchmarks and the ``repro serve`` CLI demo.

Serve responses are byte-identical to batch
:meth:`~repro.workflow.PredictionPipeline.execute` on the same model
version: every compiled kernel is row-wise, so micro-batch composition
(a timing artifact) cannot leak into the numbers.

Everything under ``repro.serve._internal`` is private; the REP010 lint
rule keeps outside imports out.
"""

from .api import (
    AlarmQuery,
    AlarmQueryResponse,
    HealthReport,
    PredictRequest,
    PredictResponse,
    ScrapeRequest,
    ScrapeResponse,
    ServeConfig,
    ServiceOverloaded,
    WorkerState,
)
from .loadgen import LoadProfile, LoadReport, arrival_offsets, run_load
from .service import Env2VecService, ServeClient

__all__ = [
    "Env2VecService",
    "HealthReport",
    "ServeClient",
    "ServeConfig",
    "PredictRequest",
    "PredictResponse",
    "ScrapeRequest",
    "ScrapeResponse",
    "AlarmQuery",
    "AlarmQueryResponse",
    "ServiceOverloaded",
    "WorkerState",
    "LoadProfile",
    "LoadReport",
    "arrival_offsets",
    "run_load",
]
