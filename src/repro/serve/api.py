"""Typed request/response surface of the always-on serving layer.

Every piece of traffic a live deployment fields maps to one request type:

- :class:`PredictRequest` — monitor one test execution (inline arrays or a
  ``record_id`` referencing telemetry previously scraped into the TSDB);
  answered with a :class:`PredictResponse` wrapping the canonical
  :class:`~repro.workflow.PipelineRun`.
- :class:`ScrapeRequest` — ingest one execution's telemetry through the
  collector into the workload TSDB; answered with a
  :class:`ScrapeResponse` carrying the EM ``record_id``.
- :class:`AlarmQuery` — the testing engineer's read path over the alarm
  store; answered with an :class:`AlarmQueryResponse`.

Requests are immutable and carry a caller-chosen ``request_id`` tag that
is echoed back verbatim, so concurrent clients can correlate responses
without relying on ordering. :class:`ServiceOverloaded` is the admission
layer's explicit backpressure signal: it subclasses
:class:`~repro.resilience.TransientError`, so a standard
:class:`~repro.resilience.Retry` policy on the client side backs off and
re-submits — ``retry_after`` is the service's own estimate of when queue
depth will have drained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.anomaly import GaussianErrorModel
from ..data.chains import TestExecution
from ..data.environment import Environment
from ..resilience import TransientError
from ..workflow.alarms import AlarmRecord
from ..workflow.prediction_pipeline import PipelineRun, SkippedExecution

__all__ = [
    "HealthReport",
    "PredictRequest",
    "PredictResponse",
    "ScrapeRequest",
    "ScrapeResponse",
    "AlarmQuery",
    "AlarmQueryResponse",
    "ServeConfig",
    "ServiceOverloaded",
    "WorkerState",
]


class ServiceOverloaded(TransientError):
    """Admission rejected the request: queue depth exceeded the bound.

    ``retry_after`` (seconds) estimates when the queue will have drained
    enough to admit new work; a client-side retry policy should back off
    at least that long before re-submitting.
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = float(retry_after)


@dataclass(frozen=True)
class ServeConfig:
    """The service's operating knobs (admission, batching, resilience).

    ``max_batch``/``max_wait`` trade latency for throughput: the
    micro-batcher coalesces up to ``max_batch`` queued predictions into
    one :meth:`~repro.nn.inference.InferenceModel.predict_many`-shaped
    forward, lingering at most ``max_wait`` seconds for the batch to fill
    (``0`` coalesces only what is already queued). ``max_queue_depth``
    bounds admission; past it, requests are rejected with
    :class:`ServiceOverloaded` instead of growing the queue without bound.
    """

    max_batch: int = 32
    max_wait: float = 0.002
    max_queue_depth: int = 1024
    #: warm model pool: how many compiled versions to keep resident.
    pool_capacity: int = 2
    #: consecutive scrape failures before the TSDB breaker opens, and the
    #: (simulated) seconds it stays open before a half-open trial.
    breaker_failures: int = 5
    breaker_recovery: float = 300.0
    #: fallback per-request service-time estimate (seconds) used for
    #: ``retry_after`` before the first batch has been measured — it seeds
    #: the EWMA, so the cold-start estimate is this value, not zero.
    default_service_seconds: float = 0.005
    #: EWMA decay for the measured service time: ``estimate = decay * old
    #: + (1 - decay) * sample``. Higher values smooth harder.
    service_time_decay: float = 0.8
    #: worker processes behind the supervisor; ``0`` executes batches on
    #: the event loop exactly as the single-loop service always has.
    n_workers: int = 0
    #: multiprocessing start method for supervised workers ("fork" is
    #: cheap on Linux; workers are rehydrated from ModelStore blobs either
    #: way, so the code is spawn-safe).
    worker_start_method: str = "fork"
    #: supervisor tick interval (seconds, wall clock) between liveness
    #: checks, and how long a worker may sit on one dispatched batch (or
    #: fail to answer pings while idle) before it is declared hung.
    heartbeat_interval: float = 0.05
    worker_stall_timeout: float = 2.0
    #: how long a spawned worker may take to report ready.
    worker_start_timeout: float = 30.0
    #: dispatch attempts per batch before its requests are failed (each
    #: worker crash/stall consumes one attempt for the batch it carried).
    max_dispatch_attempts: int = 5
    #: degradation ladder: per-environment last-good answers kept for
    #: serving (stamped ``degraded=True``) while the TSDB breaker is open
    #: or every worker is restarting. ``0`` disables the ladder.
    last_good_capacity: int = 256
    #: numeric precision of the compiled inference engines ("float64" or
    #: "float32"). float64 is the default and is byte-identical to batch
    #: mode; float32 trades that for ~3× batch-path throughput within the
    #: :data:`repro.nn.inference.FLOAT32_ATOL` parity bound.
    inference_dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.pool_capacity < 1:
            raise ValueError("pool_capacity must be >= 1")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_recovery <= 0:
            raise ValueError("breaker_recovery must be positive")
        if self.default_service_seconds <= 0:
            raise ValueError("default_service_seconds must be positive")
        if not 0.0 < self.service_time_decay < 1.0:
            raise ValueError("service_time_decay must be in (0, 1)")
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if self.worker_start_method not in ("fork", "spawn", "forkserver"):
            raise ValueError(
                "worker_start_method must be one of 'fork', 'spawn', 'forkserver'"
            )
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.worker_stall_timeout <= 0:
            raise ValueError("worker_stall_timeout must be positive")
        if self.worker_start_timeout <= 0:
            raise ValueError("worker_start_timeout must be positive")
        if self.max_dispatch_attempts < 1:
            raise ValueError("max_dispatch_attempts must be >= 1")
        if self.last_good_capacity < 0:
            raise ValueError("last_good_capacity must be >= 0")
        if self.inference_dtype not in ("float64", "float32"):
            raise ValueError("inference_dtype must be 'float64' or 'float32'")


@dataclass(frozen=True)
class PredictRequest:
    """Monitor one execution: inline telemetry or a scraped ``record_id``.

    Exactly one of ``execution``/``record_id`` must be set; a
    ``record_id`` request must also name the ``environment`` the scraped
    telemetry came from (the TSDB stores series, not EM tuples). With
    ``error_model=None`` the §4.3 self-calibrated mode is used.

    ``deadline_seconds`` is the caller's latency budget, relative to
    admission: once it elapses, the caller has given up, so the service
    sheds the request (:class:`~repro.resilience.DeadlineExceeded`)
    instead of spending a batch slot on an answer nobody will read.
    ``None`` means the caller waits forever.
    """

    execution: TestExecution | None = None
    record_id: str | None = None
    environment: Environment | None = None
    error_model: GaussianErrorModel | None = None
    deadline_seconds: float | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        if (self.execution is None) == (self.record_id is None):
            raise ValueError(
                "exactly one of execution/record_id must be set on a PredictRequest"
            )
        if self.record_id is not None and self.environment is None:
            raise ValueError("a record_id request must carry its environment")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive when set")

    def __repr__(self) -> str:
        # Compact by design: the default repr would stringify the inline
        # execution's telemetry arrays every time a queue/future holding
        # the request is repr'd (asyncio does this on the hot path).
        target = (
            f"record_id={self.record_id!r}"
            if self.record_id is not None
            else f"execution=<{len(self.execution.cpu)} timesteps>"
        )
        return f"PredictRequest({target}, request_id={self.request_id!r})"


@dataclass(frozen=True)
class PredictResponse:
    """One prediction outcome; ``run`` is byte-identical to batch mode.

    ``status`` is ``"ok"`` (``run`` set) or ``"skipped"`` (``skipped``
    names why the referenced telemetry could not be monitored — missing
    series, quarantine, TSDB circuit open). ``batch_size`` records how
    many requests shared this response's coalesced forward, and
    ``queued_seconds`` how long the request waited for it; neither
    influences the numbers in ``run``. ``degraded=True`` marks a
    last-good answer replayed from cache while the fresh path was down
    (TSDB breaker open, or every worker mid-restart) — the numbers are
    real but stale, and callers should treat them accordingly.
    """

    request_id: str
    status: str
    model_version: int
    run: PipelineRun | None = None
    skipped: SkippedExecution | None = None
    batch_size: int = 1
    queued_seconds: float = 0.0
    degraded: bool = False

    def __repr__(self) -> str:
        # PipelineRun's own repr is compact; keep the response repr flat
        # so asyncio future reprs stay O(1) regardless of payload size.
        body = repr(self.run) if self.run is not None else repr(self.skipped)
        degraded = ", degraded=True" if self.degraded else ""
        return (
            f"PredictResponse(request_id={self.request_id!r}, "
            f"status={self.status!r}, model_version={self.model_version}, "
            f"batch_size={self.batch_size}{degraded}, {body})"
        )


@dataclass(frozen=True)
class WorkerState:
    """One supervised worker's liveness snapshot, as ``health()`` saw it.

    ``phase`` is ``"ready"`` (idle, answering pings), ``"busy"`` (a batch
    dispatched, inside its stall budget), ``"starting"`` (spawned, not
    yet reported ready — includes rolling-publish rehydration) or
    ``"dead"`` (process gone, restart pending). ``epoch`` counts spawns:
    it starts at 1 and each restart increments it, so ``epoch - 1`` is
    the worker's lifetime restart count.
    """

    worker_id: int
    phase: str
    epoch: int
    model_version: int
    inflight_batch: int | None = None


@dataclass(frozen=True)
class HealthReport:
    """``/health``-style readiness + liveness for the whole service.

    ``live`` — the service can make progress (event loop up, and in
    supervised mode at least the supervisor is running); ``ready`` — a
    request admitted now will be served fresh (some worker ready, TSDB
    breaker not open, not draining). ``degraded`` mirrors the response
    stamp: the service is answering from last-good cache.
    """

    live: bool
    ready: bool
    degraded: bool
    n_workers: int
    workers_ready: int
    queue_depth: int
    breaker_state: str
    model_version: int
    workers: tuple[WorkerState, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class ScrapeRequest:
    """Ingest one execution's telemetry through the collector."""

    execution: TestExecution
    start_time: float = 0.0
    request_id: str = ""


@dataclass(frozen=True)
class ScrapeResponse:
    """Outcome of a scrape: the EM ``record_id``, or why it failed.

    ``status`` is ``"ok"``, ``"unavailable"`` (the TSDB write path failed
    past its retry budget) or ``"circuit_open"`` (the TSDB breaker is
    failing fast; ``retry_after`` estimates when the next trial runs).
    """

    request_id: str
    status: str
    record_id: str | None = None
    detail: str = ""
    retry_after: float = 0.0


@dataclass(frozen=True)
class AlarmQuery:
    """Query the alarm store (step 4's engineer-facing read path)."""

    environment: object | None = None
    testbed: str | None = None
    build: str | None = None
    unacknowledged_only: bool = False
    request_id: str = ""


@dataclass(frozen=True)
class AlarmQueryResponse:
    """Matching alarms, in id order."""

    request_id: str
    alarms: tuple[AlarmRecord, ...] = field(default_factory=tuple)
