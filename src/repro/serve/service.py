"""The always-on serving layer: campaign-as-a-service.

:class:`Env2VecService` turns the batch workflow (scrape → predict →
alarm) into a long-running asyncio service with one typed request API:

- **admission** — a bounded FIFO; past ``max_queue_depth`` submits are
  rejected synchronously with :class:`~repro.serve.ServiceOverloaded`
  (explicit backpressure, never an unbounded queue),
- **micro-batching** — a background drain loop coalesces queued predict
  requests across chains into one batched forward (``max_batch`` /
  ``max_wait`` knobs), which is safe because every compiled kernel is
  row-wise: the numbers are byte-identical to batch
  :meth:`~repro.workflow.PredictionPipeline.execute` no matter how
  traffic happens to batch,
- **warm model pool** — publishes compile off the request path, so a
  retrain swaps in atomically without a cold-compile latency spike,
- **resilience at the boundary** — a :class:`~repro.resilience.CircuitBreaker`
  around the TSDB scrape path fails fast during outages, and rejections
  carry ``retry_after`` hints sized from measured service time.

All request-path metrics (`repro_serve_*`) are ordinary
:mod:`repro.obs` instruments; with ``self_monitor=True`` the service
dogfoods them into an in-repo TSDB via :class:`~repro.obs.TSDBExporter`,
so p50/p95/p99 and queue depth are answerable with the repo's own
PromQL (``histogram_quantile(0.95, repro_serve_request_seconds_bucket)``).

Clients never touch the service object directly: :meth:`Env2VecService.client`
hands out the :class:`ServeClient` facade, the single sanctioned entry
point for predictions, scrapes, and alarm queries.
"""

from __future__ import annotations

import asyncio

from ..obs import LATENCY_BUCKETS, get_observability
from ..resilience import (
    CircuitBreaker,
    CircuitOpen,
    ExecutionQuarantined,
    RetryExhausted,
    TransientError,
)
from ..workflow.alarms import AlarmStore
from ..workflow.model_store import ModelStore
from ..workflow.prediction_pipeline import (
    PipelineRun,
    PredictBatch,
    PredictionPipeline,
    SkippedExecution,
)
from ..workflow.tsdb import AmbiguousSeries, SeriesNotFound, TimeSeriesDB
from ._internal.admission import AdmissionController, PendingRequest
from ._internal.batcher import MicroBatcher
from ._internal.warm_pool import WarmModelPool
from .api import (
    AlarmQuery,
    AlarmQueryResponse,
    PredictRequest,
    PredictResponse,
    ScrapeRequest,
    ScrapeResponse,
    ServeConfig,
)

__all__ = ["Env2VecService", "ServeClient"]

_OBS = get_observability()
_M_REQUESTS = _OBS.counter(
    "repro_serve_requests_total",
    "Requests answered by the serving layer",
    labels=("kind", "status"),
)
_H_LATENCY = _OBS.histogram(
    "repro_serve_request_seconds",
    "End-to-end request latency (admission to response)",
    labels=("kind",),
    buckets=LATENCY_BUCKETS,
)
# The predict path touches these once per request; resolve the label
# children up front instead of re-hashing label tuples on the hot path.
_M_PREDICT_OK = _M_REQUESTS.labels(kind="predict", status="ok")
_M_PREDICT_SKIPPED = _M_REQUESTS.labels(kind="predict", status="skipped")
_H_PREDICT_LATENCY = _H_LATENCY.labels(kind="predict")


class Env2VecService:
    """Always-on serving front end over the workflow pipelines."""

    def __init__(
        self,
        model_store: ModelStore,
        alarm_store: AlarmStore | None = None,
        collector=None,
        *,
        config: ServeConfig | None = None,
        gamma: float = 2.0,
        abs_threshold: float = 5.0,
        termination_threshold: int | None = None,
        breaker_clock=None,
        self_monitor: bool = False,
        scrape_interval: float = 15.0,
    ):
        self.config = config if config is not None else ServeConfig()
        self.model_store = model_store
        self.alarm_store = alarm_store if alarm_store is not None else AlarmStore()
        self.collector = collector
        self.pipeline = PredictionPipeline(
            model_store,
            self.alarm_store,
            gamma=gamma,
            abs_threshold=abs_threshold,
            termination_threshold=termination_threshold,
        )
        self.pool = WarmModelPool(model_store, capacity=self.config.pool_capacity)
        self.admission = AdmissionController(
            self.config.max_queue_depth, self.config.default_service_seconds
        )
        self.tsdb_breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            recovery_time=self.config.breaker_recovery,
            clock=breaker_clock,
            name="serve-tsdb",
        )
        self._batcher = MicroBatcher(
            self.admission,
            max_batch=self.config.max_batch,
            max_wait=self.config.max_wait,
            execute=self._execute_batch,
        )
        self.exporter = None
        if self_monitor:
            from ..obs import TSDBExporter

            self.exporter = TSDBExporter(
                _OBS.registry,
                tsdb=TimeSeriesDB(name="serve-observability"),
                interval=scrape_interval,
            )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the micro-batcher (requires a running event loop)."""
        self._batcher.start()

    async def stop(self) -> None:
        """Stop draining; queued-but-unbatched requests fail explicitly."""
        await self._batcher.stop()
        self.pool.close()
        if self.exporter is not None:
            self.exporter.tick()

    async def __aenter__(self) -> "Env2VecService":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    def client(self) -> "ServeClient":
        return ServeClient(self)

    def export_metrics(self) -> float:
        """Dogfood one metrics snapshot into the service's own TSDB."""
        if self.exporter is None:
            raise RuntimeError("service was built with self_monitor=False")
        return self.exporter.tick()

    # -- predict path --------------------------------------------------

    def submit_predict(self, request: PredictRequest) -> asyncio.Future:
        """Admit a predict request; the future resolves to a PredictResponse."""
        if not isinstance(request, PredictRequest):
            raise TypeError(f"expected PredictRequest, got {type(request).__name__}")
        return self.admission.submit(request, now=asyncio.get_running_loop().time())

    def _resolve_execution(self, request: PredictRequest):
        """Inline execution, or the TSDB read-back behind a record_id.

        Returns ``(execution, skipped)`` — exactly one is set. Degraded
        telemetry becomes a typed skip (mirroring
        :meth:`~repro.workflow.PredictionPipeline.run_from_tsdb`); a TSDB
        outage trips the scrape breaker's failure counter too, since both
        paths share the backend.
        """
        if request.execution is not None:
            return request.execution, None
        if self.collector is None:
            return None, SkippedExecution(
                reason="no_collector",
                detail="service has no MetricCollector; record_id requests unsupported",
            )
        try:
            self.tsdb_breaker.allow()
        except CircuitOpen as exc:
            return None, SkippedExecution(reason="tsdb_circuit_open", detail=str(exc))
        try:
            features, cpu = self.collector.read_back(request.record_id)
        except (SeriesNotFound, AmbiguousSeries) as exc:
            return None, SkippedExecution(reason="series_missing", detail=str(exc))
        except ExecutionQuarantined as exc:
            return None, SkippedExecution(reason=exc.reason, detail=exc.detail)
        except (RetryExhausted, TransientError) as exc:
            self.tsdb_breaker.record_failure()
            return None, SkippedExecution(reason="tsdb_unavailable", detail=str(exc))
        self.tsdb_breaker.record_success()
        from ..data.chains import TestExecution

        return (
            TestExecution(environment=request.environment, features=features, cpu=cpu),
            None,
        )

    def _execute_batch(self, batch: list[PendingRequest]) -> None:
        """Run one coalesced forward and resolve futures in admission order."""
        loop = asyncio.get_running_loop()
        try:
            model, version = self.pool.latest()
        except LookupError as exc:
            for pending in batch:
                pending.future.set_exception(LookupError(str(exc)))
            return

        ready: list[tuple[PendingRequest, object, object]] = []
        for pending in batch:
            request = pending.request
            execution, skipped = self._resolve_execution(request)
            if skipped is not None:
                self._respond(pending, self._skip_response(pending, version, skipped), loop)
                continue
            if len(execution.cpu) <= model.n_lags + 1:
                pending.future.set_exception(
                    ValueError(
                        f"execution has {len(execution.cpu)} timesteps; "
                        f"need more than n_lags + 1 = {model.n_lags + 1} to window"
                    )
                )
                continue
            ready.append((pending, execution, request.error_model))

        if not ready:
            return
        started = loop.time()
        runs = self.pipeline.execute(
            PredictBatch(
                tuple(execution for _, execution, _ in ready),
                tuple(error_model for _, _, error_model in ready),
            ),
            model=model,
            model_version=version,
        )
        self.admission.record_service_time((loop.time() - started) / len(ready))
        for (pending, _, _), run in zip(ready, runs):
            self._respond(pending, self._ok_response(pending, version, run), loop)

    def _skip_response(
        self, pending: PendingRequest, version: int, skipped: SkippedExecution
    ) -> PredictResponse:
        return PredictResponse(
            request_id=pending.request.request_id,
            status="skipped",
            model_version=version,
            skipped=skipped,
            batch_size=pending.batch_size,
        )

    def _ok_response(
        self, pending: PendingRequest, version: int, run: PipelineRun
    ) -> PredictResponse:
        return PredictResponse(
            request_id=pending.request.request_id,
            status="ok",
            model_version=version,
            run=run,
            batch_size=pending.batch_size,
        )

    def _respond(self, pending: PendingRequest, response: PredictResponse, loop) -> None:
        now = loop.time()
        response = PredictResponse(
            request_id=response.request_id,
            status=response.status,
            model_version=response.model_version,
            run=response.run,
            skipped=response.skipped,
            batch_size=response.batch_size,
            queued_seconds=now - pending.enqueued_at,
        )
        (_M_PREDICT_OK if response.status == "ok" else _M_PREDICT_SKIPPED).inc()
        _H_PREDICT_LATENCY.observe(now - pending.enqueued_at)
        if not pending.future.done():
            pending.future.set_result(response)

    # -- scrape path ---------------------------------------------------

    def scrape(self, request: ScrapeRequest) -> ScrapeResponse:
        """Ingest telemetry through the collector, breaker-gated."""
        if self.collector is None:
            raise RuntimeError("service has no MetricCollector; cannot scrape")
        with _H_LATENCY.labels(kind="scrape").time():
            try:
                self.tsdb_breaker.allow()
            except CircuitOpen as exc:
                _M_REQUESTS.labels(kind="scrape", status="circuit_open").inc()
                return ScrapeResponse(
                    request_id=request.request_id,
                    status="circuit_open",
                    detail=str(exc),
                    retry_after=self.tsdb_breaker.retry_after(),
                )
            try:
                record_id = self.collector.collect(
                    request.execution, start_time=request.start_time
                )
            except (RetryExhausted, TransientError) as exc:
                self.tsdb_breaker.record_failure()
                _M_REQUESTS.labels(kind="scrape", status="unavailable").inc()
                return ScrapeResponse(
                    request_id=request.request_id,
                    status="unavailable",
                    detail=str(exc),
                    retry_after=self.tsdb_breaker.retry_after(),
                )
            self.tsdb_breaker.record_success()
            _M_REQUESTS.labels(kind="scrape", status="ok").inc()
            return ScrapeResponse(
                request_id=request.request_id, status="ok", record_id=record_id
            )

    # -- alarm path ----------------------------------------------------

    def query_alarms(self, query: AlarmQuery) -> AlarmQueryResponse:
        """Engineer-facing read path over the alarm store (step 4)."""
        with _H_LATENCY.labels(kind="alarms").time():
            records = self.alarm_store.fetch(
                testbed=query.testbed,
                build=query.build,
                environment=query.environment,
                unacknowledged_only=query.unacknowledged_only,
            )
            _M_REQUESTS.labels(kind="alarms", status="ok").inc()
            return AlarmQueryResponse(request_id=query.request_id, alarms=tuple(records))


class ServeClient:
    """The one public handle for traffic against an :class:`Env2VecService`.

    Every method is a coroutine; submits happen synchronously inside the
    calling coroutine, so concurrent clients that are started in a fixed
    order are admitted in that order (what makes serve traffic replayable
    against batch mode).
    """

    def __init__(self, service: Env2VecService):
        self._service = service

    async def predict(self, request: PredictRequest) -> PredictResponse:
        """Monitor one execution; may coalesce with concurrent requests."""
        return await self._service.submit_predict(request)

    async def predict_many(self, requests) -> list[PredictResponse]:
        """Submit a group atomically: all admitted, or none stay queued.

        On overload mid-group, submissions still waiting in the admission
        queue are withdrawn before :class:`ServiceOverloaded` propagates,
        so a rejected group never leaves orphaned work behind.
        """
        futures: list[asyncio.Future] = []
        try:
            for request in requests:
                futures.append(self._service.submit_predict(request))
        except Exception:
            self._service.admission.evict(futures)
            for future in futures:
                if not future.done():
                    future.cancel()
            raise
        return list(await asyncio.gather(*futures))

    async def scrape(self, request: ScrapeRequest) -> ScrapeResponse:
        """Ingest one execution's telemetry (breaker-gated)."""
        return self._service.scrape(request)

    async def alarms(self, query: AlarmQuery) -> AlarmQueryResponse:
        """Query raised alarms."""
        return self._service.query_alarms(query)
