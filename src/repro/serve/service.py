"""The always-on serving layer: campaign-as-a-service.

:class:`Env2VecService` turns the batch workflow (scrape → predict →
alarm) into a long-running asyncio service with one typed request API:

- **admission** — a bounded FIFO; past ``max_queue_depth`` submits are
  rejected synchronously with :class:`~repro.serve.ServiceOverloaded`
  (explicit backpressure, never an unbounded queue); requests carrying a
  ``deadline_seconds`` budget are shed with
  :class:`~repro.resilience.DeadlineExceeded` once it lapses in queue,
- **micro-batching** — a background drain loop coalesces queued predict
  requests across chains into one batched forward (``max_batch`` /
  ``max_wait`` knobs), which is safe because every compiled kernel is
  row-wise: the numbers are byte-identical to batch
  :meth:`~repro.workflow.PredictionPipeline.execute` no matter how
  traffic happens to batch,
- **execution** — on the event loop (``n_workers=0``), or sharded across
  N supervised worker processes
  (:class:`~repro.serve._internal.supervisor.WorkerSupervisor`): workers
  run the pure scoring half only; alarm fan-in happens here, in dispatch
  order through a :class:`~repro.parallel.SequencedMerger`, so both
  modes are byte-identical to batch mode and to each other,
- **warm models** — publishes compile off the request path (the warm
  pool on the loop; rolling one-worker-at-a-time rollouts under the
  supervisor), so a retrain swaps in without a cold-compile spike,
- **resilience at the boundary** — a :class:`~repro.resilience.CircuitBreaker`
  around the TSDB scrape path fails fast during outages; rejections
  carry ``retry_after`` hints sized from measured service time; a
  per-row scoring failure dead-letters that request
  (:class:`~repro.resilience.DeadLetterStore`) without failing its
  batchmates; and a degradation ladder replays per-environment last-good
  answers (stamped ``degraded=True``) while the breaker is open or every
  worker is mid-restart.

All request-path metrics (`repro_serve_*`) are ordinary
:mod:`repro.obs` instruments; with ``self_monitor=True`` the service
dogfoods them into an in-repo TSDB via :class:`~repro.obs.TSDBExporter`,
so p50/p95/p99 and queue depth are answerable with the repo's own
PromQL (``histogram_quantile(0.95, repro_serve_request_seconds_bucket)``).

Clients never touch the service object directly: :meth:`Env2VecService.client`
hands out the :class:`ServeClient` facade, the single sanctioned entry
point for predictions, scrapes, alarm queries, and health probes.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict

from ..obs import LATENCY_BUCKETS, get_observability
from ..parallel import SequencedMerger
from ..resilience import (
    BREAKER_OPEN,
    CircuitBreaker,
    CircuitOpen,
    DeadLetterStore,
    ExecutionQuarantined,
    RetryExhausted,
    TransientError,
)
from ..workflow.alarms import AlarmStore
from ..workflow.model_store import ModelStore
from ..workflow.prediction_pipeline import (
    PipelineRun,
    PredictionPipeline,
    SkippedExecution,
)
from ..workflow.tsdb import AmbiguousSeries, SeriesNotFound, TimeSeriesDB
from ._internal.admission import AdmissionController, PendingRequest
from ._internal.batcher import MicroBatcher
from ._internal.supervisor import WorkerSupervisor
from ._internal.warm_pool import WarmModelPool
from .api import (
    AlarmQuery,
    AlarmQueryResponse,
    HealthReport,
    PredictRequest,
    PredictResponse,
    ScrapeRequest,
    ScrapeResponse,
    ServeConfig,
)

__all__ = ["Env2VecService", "ServeClient"]

_OBS = get_observability()
_M_REQUESTS = _OBS.counter(
    "repro_serve_requests_total",
    "Requests answered by the serving layer",
    labels=("kind", "status"),
)
_H_LATENCY = _OBS.histogram(
    "repro_serve_request_seconds",
    "End-to-end request latency (admission to response)",
    labels=("kind",),
    buckets=LATENCY_BUCKETS,
)
_M_DEGRADED = _OBS.counter(
    "repro_serve_degraded_total",
    "Responses replayed from the last-good cache while the fresh path was down",
)
_M_DEAD_LETTERED = _OBS.counter(
    "repro_serve_dead_lettered_total",
    "Predict requests dead-lettered after failing scoring in isolation",
)
# The predict path touches these once per request; resolve the label
# children up front instead of re-hashing label tuples on the hot path.
_M_PREDICT_OK = _M_REQUESTS.labels(kind="predict", status="ok")
_M_PREDICT_SKIPPED = _M_REQUESTS.labels(kind="predict", status="skipped")
_H_PREDICT_LATENCY = _H_LATENCY.labels(kind="predict")

#: skip reasons the degradation ladder may answer from last-good cache.
_DEGRADABLE_SKIPS = frozenset({"tsdb_circuit_open", "tsdb_unavailable"})


class _LastGoodCache:
    """Per-environment cache of the newest successful answer.

    The bottom rung of the degradation ladder: when the fresh path is
    down (TSDB breaker open for a record_id request, or every supervised
    worker mid-restart), the service replays the environment's last good
    run stamped ``degraded=True`` instead of going dark. Bounded LRU;
    ``capacity=0`` disables the ladder entirely.
    """

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._entries: OrderedDict[object, tuple[int, PipelineRun]] = OrderedDict()

    def remember(self, environment, version: int, run: PipelineRun) -> None:
        if self.capacity == 0:
            return
        self._entries[environment] = (version, run)
        self._entries.move_to_end(environment)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def get(self, environment) -> tuple[int, PipelineRun] | None:
        return self._entries.get(environment)

    def __len__(self) -> int:
        return len(self._entries)


class Env2VecService:
    """Always-on serving front end over the workflow pipelines."""

    def __init__(
        self,
        model_store: ModelStore,
        alarm_store: AlarmStore | None = None,
        collector=None,
        *,
        config: ServeConfig | None = None,
        gamma: float = 2.0,
        abs_threshold: float = 5.0,
        termination_threshold: int | None = None,
        breaker_clock=None,
        self_monitor: bool = False,
        scrape_interval: float = 15.0,
        chaos=None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.model_store = model_store
        self.alarm_store = alarm_store if alarm_store is not None else AlarmStore()
        self.collector = collector
        self.pipeline = PredictionPipeline(
            model_store,
            self.alarm_store,
            gamma=gamma,
            abs_threshold=abs_threshold,
            termination_threshold=termination_threshold,
        )
        self.admission = AdmissionController(
            self.config.max_queue_depth,
            self.config.default_service_seconds,
            decay=self.config.service_time_decay,
        )
        self.tsdb_breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            recovery_time=self.config.breaker_recovery,
            clock=breaker_clock,
            name="serve-tsdb",
        )
        self.dead_letters = DeadLetterStore()
        self.last_good = _LastGoodCache(self.config.last_good_capacity)
        self.supervisor: WorkerSupervisor | None = None
        self.pool: WarmModelPool | None = None
        self._unsubscribe = None
        if self.config.n_workers > 0:
            self.supervisor = WorkerSupervisor(
                model_store,
                self.config,
                gamma=gamma,
                abs_threshold=abs_threshold,
                chaos=chaos,
            )
            self._unsubscribe = model_store.subscribe(
                lambda record: self.supervisor.schedule_publish(record.version)
            )
            execute = self._dispatch_supervised
            max_inflight = self.config.n_workers
        else:
            self.pool = WarmModelPool(
                model_store,
                capacity=self.config.pool_capacity,
                dtype=self.config.inference_dtype,
            )
            execute = self._execute_batch
            max_inflight = 1
        self._merger = SequencedMerger()
        self._commit_seq = 0
        self._batcher = MicroBatcher(
            self.admission,
            max_batch=self.config.max_batch,
            max_wait=self.config.max_wait,
            execute=execute,
            max_inflight=max_inflight,
        )
        self.exporter = None
        if self_monitor:
            from ..obs import TSDBExporter

            self.exporter = TSDBExporter(
                _OBS.registry,
                tsdb=TimeSeriesDB(name="serve-observability"),
                interval=scrape_interval,
            )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the micro-batcher (requires a running event loop).

        A supervised service (``n_workers > 0``) must be entered with
        ``async with service:`` instead, so worker processes can be
        spawned and awaited ready before traffic flows.
        """
        if self.supervisor is not None:
            raise RuntimeError(
                "a supervised service (n_workers > 0) must be started with "
                "'async with service:' so its workers can be spawned"
            )
        self._batcher.start()

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` (the default) is the graceful path: queued
        requests whose deadline expired are shed, live queued requests
        are batched and completed, in-flight batches finish. With
        ``drain=False`` the loop is torn down immediately and queued
        requests fail loudly — the programmatic equivalent of a crash,
        used by kill/restart tests.
        """
        await self._batcher.stop(drain=drain)
        if self.supervisor is not None:
            await self.supervisor.stop()
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self.pool is not None:
            self.pool.close()
        if self.exporter is not None:
            self.exporter.tick()

    async def __aenter__(self) -> "Env2VecService":
        if self.supervisor is not None:
            await self.supervisor.start()
            self._batcher.start()
        else:
            self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    def client(self) -> "ServeClient":
        return ServeClient(self)

    def export_metrics(self) -> float:
        """Dogfood one metrics snapshot into the service's own TSDB."""
        if self.exporter is None:
            raise RuntimeError("service was built with self_monitor=False")
        return self.exporter.tick()

    # -- health --------------------------------------------------------

    def health(self) -> HealthReport:
        """Readiness + liveness, the ``/health`` endpoint's payload.

        *Live* means the drain loop can make progress; *ready* means a
        request admitted right now would be served fresh (a worker free
        or the loop executing inline, breaker not open). ``degraded``
        says answers are currently coming from the last-good cache.
        """
        live = self._batcher.running
        breaker_open = self.tsdb_breaker.state == BREAKER_OPEN
        if self.supervisor is not None:
            workers = self.supervisor.worker_states()
            available = self.supervisor.available_count
            n_workers = self.config.n_workers
            version = self.supervisor.latest_version
            ready = live and available > 0
            degraded = breaker_open or available == 0
        else:
            workers = ()
            available = 1 if live else 0
            n_workers = 0
            version = self.model_store.latest_version
            ready = live and version > 0
            degraded = breaker_open
        return HealthReport(
            live=live,
            ready=ready,
            degraded=degraded,
            n_workers=n_workers,
            workers_ready=available,
            queue_depth=self.admission.depth,
            breaker_state=self.tsdb_breaker.state,
            model_version=version,
            workers=workers,
        )

    # -- predict path --------------------------------------------------

    def submit_predict(self, request: PredictRequest) -> asyncio.Future:
        """Admit a predict request; the future resolves to a PredictResponse."""
        if not isinstance(request, PredictRequest):
            raise TypeError(f"expected PredictRequest, got {type(request).__name__}")
        return self.admission.submit(request, now=asyncio.get_running_loop().time())

    def _resolve_execution(self, request: PredictRequest):
        """Inline execution, or the TSDB read-back behind a record_id.

        Returns ``(execution, skipped)`` — exactly one is set. Degraded
        telemetry becomes a typed skip (mirroring
        :meth:`~repro.workflow.PredictionPipeline.run_from_tsdb`); a TSDB
        outage trips the scrape breaker's failure counter too, since both
        paths share the backend.
        """
        if request.execution is not None:
            return request.execution, None
        if self.collector is None:
            return None, SkippedExecution(
                reason="no_collector",
                detail="service has no MetricCollector; record_id requests unsupported",
            )
        try:
            self.tsdb_breaker.allow()
        except CircuitOpen as exc:
            return None, SkippedExecution(reason="tsdb_circuit_open", detail=str(exc))
        try:
            features, cpu = self.collector.read_back(request.record_id)
        except (SeriesNotFound, AmbiguousSeries) as exc:
            return None, SkippedExecution(reason="series_missing", detail=str(exc))
        except ExecutionQuarantined as exc:
            return None, SkippedExecution(reason=exc.reason, detail=exc.detail)
        except (RetryExhausted, TransientError) as exc:
            self.tsdb_breaker.record_failure()
            return None, SkippedExecution(reason="tsdb_unavailable", detail=str(exc))
        self.tsdb_breaker.record_success()
        from ..data.chains import TestExecution

        return (
            TestExecution(environment=request.environment, features=features, cpu=cpu),
            None,
        )

    def _try_degraded(self, pending: PendingRequest, loop) -> bool:
        """Answer from the last-good cache if the ladder allows; else False."""
        request = pending.request
        environment = (
            request.execution.environment
            if request.execution is not None
            else request.environment
        )
        cached = self.last_good.get(environment)
        if cached is None:
            return False
        version, run = cached
        _M_DEGRADED.inc()
        self._respond(
            pending,
            PredictResponse(
                request_id=request.request_id,
                status="ok",
                model_version=version,
                run=run,
                batch_size=pending.batch_size,
                degraded=True,
            ),
            loop,
        )
        return True

    def _dead_letter(self, pending: PendingRequest, detail: str) -> None:
        """Quarantine one bad request without failing its batchmates."""
        request = pending.request
        key = request.request_id or request.record_id or f"predict-{id(request):x}"
        self.dead_letters.add(key=key, reason="serve_row_failure", detail=detail)
        _M_DEAD_LETTERED.inc()
        if not pending.future.done():
            pending.future.set_exception(
                RuntimeError(f"request failed scoring and was dead-lettered: {detail}")
            )

    def _screen_batch(self, batch, n_lags, loop):
        """Resolve record_ids, apply skips/degradation, length pre-checks.

        Shared front half of both execution modes. Returns the rows that
        should be scored: ``[(pending, execution, error_model), ...]``.
        """
        ready = []
        for pending in batch:
            request = pending.request
            execution, skipped = self._resolve_execution(request)
            if skipped is not None:
                if skipped.reason in _DEGRADABLE_SKIPS and self._try_degraded(
                    pending, loop
                ):
                    continue
                self._respond(
                    pending, self._skip_response(pending, skipped), loop
                )
                continue
            if len(execution.cpu) <= n_lags + 1:
                pending.future.set_exception(
                    ValueError(
                        f"execution has {len(execution.cpu)} timesteps; "
                        f"need more than n_lags + 1 = {n_lags + 1} to window"
                    )
                )
                continue
            ready.append((pending, execution, request.error_model))
        return ready

    def _commit_scored(self, ready, outcomes, version, n_lags, elapsed, loop) -> None:
        """Ordered side-effect half: dead-letter errs, fan in oks, respond."""
        ready_ok, scored_ok = [], []
        for (pending, execution, _), outcome in zip(ready, outcomes):
            if outcome[0] == "err":
                self._dead_letter(pending, outcome[1])
            else:
                ready_ok.append((pending, execution))
                scored_ok.append((outcome[1], outcome[2], outcome[3]))
        runs = self.pipeline.fan_in(
            [execution for _, execution in ready_ok],
            scored_ok,
            model_version=version,
            n_lags=n_lags,
        )
        if ready:
            self.admission.record_service_time(elapsed / len(ready))
        for (pending, execution), run in zip(ready_ok, runs):
            self.last_good.remember(execution.environment, version, run)
            self._respond(pending, self._ok_response(pending, version, run), loop)

    def _execute_batch(self, batch: list[PendingRequest]) -> None:
        """Single-loop mode: one coalesced forward on the event loop."""
        loop = asyncio.get_running_loop()
        try:
            model, version = self.pool.latest()
        except LookupError as exc:
            for pending in batch:
                pending.future.set_exception(LookupError(str(exc)))
            return
        ready = self._screen_batch(batch, model.n_lags, loop)
        if not ready:
            return
        started = loop.time()
        model.ensure_compiled(dtype=self.pool.dtype)
        outcomes = self.pipeline.score_with_isolation(
            model,
            [execution for _, execution, _ in ready],
            [error_model for _, _, error_model in ready],
        )
        self._commit_scored(
            ready, outcomes, version, model.n_lags, loop.time() - started, loop
        )

    async def _dispatch_supervised(self, batch: list[PendingRequest]) -> None:
        """Supervised mode: score on a worker, commit in dispatch order.

        The commit sequence number is claimed in the first synchronous
        segment (batch tasks start in creation order, and creation order
        is batch composition order), so however the worker results race
        back, :class:`SequencedMerger` applies fan-in — and therefore
        alarm ids — exactly as the single-loop service would.
        """
        seq = self._commit_seq
        self._commit_seq += 1
        loop = asyncio.get_running_loop()
        thunks: list = []
        try:
            thunks = await self._score_supervised(batch, loop)
        finally:
            for _, released in self._merger.put(seq, thunks):
                for thunk in released:
                    thunk()

    async def _score_supervised(self, batch, loop) -> list:
        supervisor = self.supervisor
        if supervisor.latest_version == 0:
            error = LookupError("no model has been published yet")
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(error)
            return []
        ready = self._screen_batch(batch, supervisor.n_lags, loop)
        if ready and supervisor.available_count == 0:
            # Every worker is mid-restart: serve what the ladder can,
            # queue the rest behind recovery.
            still_ready = []
            for row in ready:
                if not self._try_degraded(row[0], loop):
                    still_ready.append(row)
            ready = still_ready
        if not ready:
            return []
        started = loop.time()
        version, n_lags, outcomes = await supervisor.score(
            [(execution, error_model) for _, execution, error_model in ready]
        )
        elapsed = loop.time() - started
        return [
            lambda: self._commit_scored(ready, outcomes, version, n_lags, elapsed, loop)
        ]

    def _skip_response(
        self, pending: PendingRequest, skipped: SkippedExecution
    ) -> PredictResponse:
        version = (
            self.supervisor.latest_version
            if self.supervisor is not None
            else self.model_store.latest_version
        )
        return PredictResponse(
            request_id=pending.request.request_id,
            status="skipped",
            model_version=version,
            skipped=skipped,
            batch_size=pending.batch_size,
        )

    def _ok_response(
        self, pending: PendingRequest, version: int, run: PipelineRun
    ) -> PredictResponse:
        return PredictResponse(
            request_id=pending.request.request_id,
            status="ok",
            model_version=version,
            run=run,
            batch_size=pending.batch_size,
        )

    def _respond(self, pending: PendingRequest, response: PredictResponse, loop) -> None:
        now = loop.time()
        response = PredictResponse(
            request_id=response.request_id,
            status=response.status,
            model_version=response.model_version,
            run=response.run,
            skipped=response.skipped,
            batch_size=response.batch_size,
            queued_seconds=now - pending.enqueued_at,
            degraded=response.degraded,
        )
        (_M_PREDICT_OK if response.status == "ok" else _M_PREDICT_SKIPPED).inc()
        _H_PREDICT_LATENCY.observe(now - pending.enqueued_at)
        if not pending.future.done():
            pending.future.set_result(response)

    # -- scrape path ---------------------------------------------------

    def scrape(self, request: ScrapeRequest) -> ScrapeResponse:
        """Ingest telemetry through the collector, breaker-gated."""
        if self.collector is None:
            raise RuntimeError("service has no MetricCollector; cannot scrape")
        with _H_LATENCY.labels(kind="scrape").time():
            try:
                self.tsdb_breaker.allow()
            except CircuitOpen as exc:
                _M_REQUESTS.labels(kind="scrape", status="circuit_open").inc()
                return ScrapeResponse(
                    request_id=request.request_id,
                    status="circuit_open",
                    detail=str(exc),
                    retry_after=self.tsdb_breaker.retry_after(),
                )
            try:
                record_id = self.collector.collect(
                    request.execution, start_time=request.start_time
                )
            except (RetryExhausted, TransientError) as exc:
                self.tsdb_breaker.record_failure()
                _M_REQUESTS.labels(kind="scrape", status="unavailable").inc()
                return ScrapeResponse(
                    request_id=request.request_id,
                    status="unavailable",
                    detail=str(exc),
                    retry_after=self.tsdb_breaker.retry_after(),
                )
            self.tsdb_breaker.record_success()
            _M_REQUESTS.labels(kind="scrape", status="ok").inc()
            return ScrapeResponse(
                request_id=request.request_id, status="ok", record_id=record_id
            )

    # -- alarm path ----------------------------------------------------

    def query_alarms(self, query: AlarmQuery) -> AlarmQueryResponse:
        """Engineer-facing read path over the alarm store (step 4)."""
        with _H_LATENCY.labels(kind="alarms").time():
            records = self.alarm_store.fetch(
                testbed=query.testbed,
                build=query.build,
                environment=query.environment,
                unacknowledged_only=query.unacknowledged_only,
            )
            _M_REQUESTS.labels(kind="alarms", status="ok").inc()
            return AlarmQueryResponse(request_id=query.request_id, alarms=tuple(records))


class ServeClient:
    """The one public handle for traffic against an :class:`Env2VecService`.

    Every method is a coroutine; submits happen synchronously inside the
    calling coroutine, so concurrent clients that are started in a fixed
    order are admitted in that order (what makes serve traffic replayable
    against batch mode).
    """

    def __init__(self, service: Env2VecService):
        self._service = service

    async def predict(self, request: PredictRequest) -> PredictResponse:
        """Monitor one execution; may coalesce with concurrent requests."""
        return await self._service.submit_predict(request)

    async def predict_many(self, requests) -> list[PredictResponse]:
        """Submit a group atomically: all admitted, or none stay queued.

        On overload mid-group, submissions still waiting in the admission
        queue are withdrawn before :class:`ServiceOverloaded` propagates,
        so a rejected group never leaves orphaned work behind.
        """
        futures: list[asyncio.Future] = []
        try:
            for request in requests:
                futures.append(self._service.submit_predict(request))
        except Exception:
            self._service.admission.evict(futures)
            for future in futures:
                if not future.done():
                    future.cancel()
            raise
        return list(await asyncio.gather(*futures))

    async def scrape(self, request: ScrapeRequest) -> ScrapeResponse:
        """Ingest one execution's telemetry (breaker-gated)."""
        return self._service.scrape(request)

    async def alarms(self, query: AlarmQuery) -> AlarmQueryResponse:
        """Query raised alarms."""
        return self._service.query_alarms(query)

    async def health(self) -> HealthReport:
        """Readiness + liveness probe."""
        return self._service.health()
