"""Seeded load generation against a :class:`~repro.serve.ServeClient`.

Real VNF test traffic is bursty — a CI trigger lands a wave of chain
executions at once, then the testbed idles. :func:`arrival_offsets`
draws that shape deterministically from a seed: burst sizes are
geometric, inter-burst gaps exponential, and requests inside a burst
arrive back-to-back. :func:`run_load` replays any request list on that
arrival schedule through a client (open-loop), retrying explicit
:class:`~repro.serve.ServiceOverloaded` rejections after the service's
own ``retry_after`` hint, and folds the outcome into a
:class:`LoadReport` with the latency percentiles the serving benchmarks
(and the CLI demo) print.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from .api import PredictResponse, ServiceOverloaded

__all__ = ["LoadProfile", "LoadReport", "arrival_offsets", "run_load"]


@dataclass(frozen=True)
class LoadProfile:
    """Shape of a bursty open-loop arrival process (all times seconds)."""

    n_requests: int
    #: mean requests per burst (geometric; every burst has >= 1).
    burst_size: float = 8.0
    #: mean idle gap between bursts (exponential).
    burst_gap: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if self.burst_gap < 0:
            raise ValueError("burst_gap must be >= 0")


def arrival_offsets(profile: LoadProfile) -> np.ndarray:
    """Deterministic arrival times (seconds from start), one per request."""
    rng = np.random.default_rng(profile.seed)
    offsets: list[float] = []
    now = 0.0
    while len(offsets) < profile.n_requests:
        burst = 1 + rng.geometric(min(1.0, 1.0 / profile.burst_size))
        burst = min(burst, profile.n_requests - len(offsets))
        offsets.extend([now] * int(burst))
        now += float(rng.exponential(profile.burst_gap))
    return np.asarray(offsets[: profile.n_requests], dtype=np.float64)


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` replay."""

    latencies: np.ndarray  # per-completed-request seconds, arrival order
    responses: list[PredictResponse]
    n_rejected: int  # ServiceOverloaded raised (counting retries)
    n_failed: int  # requests that never completed (retry budget spent)
    makespan: float  # first submit to last response, seconds

    def __repr__(self) -> str:
        # Compact: the default repr would stringify the full latency
        # array and every response (asyncio reprs task results).
        return (
            f"LoadReport(n_completed={len(self.responses)}, "
            f"n_rejected={self.n_rejected}, n_failed={self.n_failed}, "
            f"throughput={self.throughput:.1f} rps)"
        )

    @property
    def throughput(self) -> float:
        """Completed requests per second over the makespan."""
        if self.makespan <= 0:
            return float("inf")
        return len(self.responses) / self.makespan

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] over completed requests."""
        if len(self.latencies) == 0:
            return float("nan")
        return float(np.percentile(self.latencies, q))

    def summary(self) -> dict:
        return {
            "n_completed": len(self.responses),
            "n_rejected": self.n_rejected,
            "n_failed": self.n_failed,
            "makespan_seconds": self.makespan,
            "throughput_rps": self.throughput,
            "p50_seconds": self.percentile(50),
            "p95_seconds": self.percentile(95),
            "p99_seconds": self.percentile(99),
        }


async def run_load(client, requests, offsets, *, max_retries: int = 3) -> LoadReport:
    """Replay ``requests`` open-loop on the ``offsets`` arrival schedule.

    Each request is submitted at its offset regardless of earlier
    responses (open loop — backpressure must come from admission, not
    from the generator slowing down). A rejected submit sleeps the
    service's ``retry_after`` hint and retries up to ``max_retries``
    times; requests that exhaust the budget count as failed.
    """
    offsets = np.asarray(offsets, dtype=np.float64)
    if len(offsets) != len(requests):
        raise ValueError(f"{len(requests)} requests but {len(offsets)} offsets")
    loop = asyncio.get_running_loop()
    start = loop.time()
    rejected = 0

    async def one(request, offset: float):
        nonlocal rejected
        await asyncio.sleep(max(0.0, start + offset - loop.time()))
        submitted = loop.time()
        for _attempt in range(1 + max_retries):
            try:
                response = await client.predict(request)
            except ServiceOverloaded as exc:
                rejected += 1
                await asyncio.sleep(exc.retry_after)
                continue
            return loop.time() - submitted, response
        return None

    outcomes = await asyncio.gather(
        *(one(request, offset) for request, offset in zip(requests, offsets))
    )
    completed = [outcome for outcome in outcomes if outcome is not None]
    return LoadReport(
        latencies=np.asarray([latency for latency, _ in completed], dtype=np.float64),
        responses=[response for _, response in completed],
        n_rejected=rejected,
        n_failed=len(outcomes) - len(completed),
        makespan=loop.time() - start,
    )
