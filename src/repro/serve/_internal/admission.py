"""Bounded request admission with explicit backpressure.

The admission controller is the only component that decides whether a
request enters the service at all. It keeps a FIFO of pending predict
requests with a hard depth bound: past ``max_depth`` the submit raises
:class:`~repro.serve.api.ServiceOverloaded` *synchronously* — the caller
learns immediately, nothing is silently dropped, and the queue can never
grow without bound. ``retry_after`` on the rejection is the current
depth times an EWMA of measured per-request service time, i.e. the
service's own estimate of when the backlog will have drained.

Depth checks and enqueues happen synchronously on the event loop, so
admission order equals submit order — the property the byte-identity
tests lean on.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

from ...obs import get_observability
from ..api import PredictRequest, ServiceOverloaded

__all__ = ["AdmissionController", "PendingRequest"]

_OBS = get_observability()
_M_REJECTED = _OBS.counter(
    "repro_serve_rejected_total",
    "Predict requests rejected by admission (queue depth exceeded)",
)
_G_DEPTH = _OBS.gauge(
    "repro_serve_queue_depth",
    "Predict requests currently queued ahead of the micro-batcher",
)


@dataclass
class PendingRequest:
    """One admitted predict request waiting for a micro-batch slot."""

    request: PredictRequest
    future: asyncio.Future
    enqueued_at: float
    #: filled in by the batcher when the request joins a coalesced forward.
    batch_size: int = field(default=1, compare=False)


class AdmissionController:
    """FIFO admission queue with a depth bound and drain estimation."""

    def __init__(self, max_depth: int, default_service_seconds: float):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = int(max_depth)
        self._queue: deque[PendingRequest] = deque()
        self._nonempty = asyncio.Event()
        # EWMA of per-request service time, seeded with the configured
        # default so the very first rejection still quotes a finite wait.
        self._service_seconds = float(default_service_seconds)
        self.rejected = 0
        self.admitted = 0

    @property
    def depth(self) -> int:
        return len(self._queue)

    def retry_after(self) -> float:
        """Estimated seconds until the current backlog has drained."""
        return max(1, len(self._queue)) * self._service_seconds

    def submit(self, request: PredictRequest, *, now: float) -> asyncio.Future:
        """Admit ``request`` or raise :class:`ServiceOverloaded`.

        Must be called from the event loop thread; the depth check and
        enqueue are atomic with respect to other coroutines.
        """
        if len(self._queue) >= self.max_depth:
            self.rejected += 1
            _M_REJECTED.inc()
            raise ServiceOverloaded(
                f"admission queue is full ({self.max_depth} pending)",
                retry_after=self.retry_after(),
            )
        loop = asyncio.get_running_loop()
        pending = PendingRequest(request=request, future=loop.create_future(), enqueued_at=now)
        self._queue.append(pending)
        self.admitted += 1
        _G_DEPTH.set(len(self._queue))
        self._nonempty.set()
        return pending.future

    def evict(self, futures: list[asyncio.Future]) -> int:
        """Remove still-queued requests whose future is in ``futures``.

        Lets ``predict_many`` withdraw its partial submissions when a
        later submit in the same call is rejected, so an all-or-nothing
        batch submit never leaves orphaned work behind. Requests already
        drained into a batch are past the point of no return and are left
        to complete. Returns the number evicted.
        """
        targets = {id(f) for f in futures}
        kept = [p for p in self._queue if id(p.future) not in targets]
        evicted = len(self._queue) - len(kept)
        if evicted:
            self._queue.clear()
            self._queue.extend(kept)
            _G_DEPTH.set(len(self._queue))
            if not self._queue:
                self._nonempty.clear()
        return evicted

    async def wait_nonempty(self) -> None:
        """Block until at least one request is queued."""
        while not self._queue:
            self._nonempty.clear()
            await self._nonempty.wait()

    def drain(self, limit: int) -> list[PendingRequest]:
        """Dequeue up to ``limit`` requests in admission order."""
        batch: list[PendingRequest] = []
        while self._queue and len(batch) < limit:
            batch.append(self._queue.popleft())
        _G_DEPTH.set(len(self._queue))
        if not self._queue:
            self._nonempty.clear()
        return batch

    def record_service_time(self, per_request_seconds: float) -> None:
        """Fold a measured per-request service time into the EWMA."""
        if per_request_seconds <= 0:
            return
        self._service_seconds = 0.8 * self._service_seconds + 0.2 * per_request_seconds
