"""Bounded request admission with explicit backpressure.

The admission controller is the only component that decides whether a
request enters the service at all. It keeps a FIFO of pending predict
requests with a hard depth bound: past ``max_depth`` the submit raises
:class:`~repro.serve.api.ServiceOverloaded` *synchronously* — the caller
learns immediately, nothing is silently dropped, and the queue can never
grow without bound. ``retry_after`` on the rejection is the current
depth times an EWMA of measured per-request service time, i.e. the
service's own estimate of when the backlog will have drained. The EWMA
is seeded from config (no zero-sample cold start) and its decay constant
is a validated :class:`~repro.serve.api.ServeConfig` field.

Deadlines are stamped here: a request carrying ``deadline_seconds`` gets
an absolute expiry (``now + budget``, monotonic loop time) at admission,
and :meth:`drain` sheds expired requests instead of handing them to the
batcher — their futures fail with
:class:`~repro.resilience.DeadlineExceeded` and the shed is counted in
``repro_serve_deadline_shed_total``. Shedding at drain time (not on a
timer) costs nothing when no deadlines are set and guarantees a batch
never contains an already-dead request.

Depth checks and enqueues happen synchronously on the event loop, so
admission order equals submit order — the property the byte-identity
tests lean on.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

from ...obs import get_observability
from ...resilience import DeadlineExceeded
from ..api import PredictRequest, ServiceOverloaded

__all__ = ["AdmissionController", "PendingRequest"]

_OBS = get_observability()
_M_REJECTED = _OBS.counter(
    "repro_serve_rejected_total",
    "Predict requests rejected by admission (queue depth exceeded)",
)
_M_SHED = _OBS.counter(
    "repro_serve_deadline_shed_total",
    "Queued predict requests shed because their deadline expired",
)
_G_DEPTH = _OBS.gauge(
    "repro_serve_queue_depth",
    "Predict requests currently queued ahead of the micro-batcher",
)


@dataclass
class PendingRequest:
    """One admitted predict request waiting for a micro-batch slot."""

    request: PredictRequest
    future: asyncio.Future
    enqueued_at: float
    #: absolute monotonic expiry, or ``None`` when the caller waits forever.
    deadline: float | None = None
    #: filled in by the batcher when the request joins a coalesced forward.
    batch_size: int = field(default=1, compare=False)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class AdmissionController:
    """FIFO admission queue with a depth bound and drain estimation."""

    def __init__(
        self,
        max_depth: int,
        default_service_seconds: float,
        decay: float = 0.8,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.max_depth = int(max_depth)
        self._queue: deque[PendingRequest] = deque()
        self._nonempty = asyncio.Event()
        # EWMA of per-request service time, seeded with the configured
        # default so the very first rejection still quotes a finite wait.
        self._service_seconds = float(default_service_seconds)
        self._decay = float(decay)
        self.rejected = 0
        self.admitted = 0
        self.shed = 0

    @property
    def depth(self) -> int:
        return len(self._queue)

    def retry_after(self) -> float:
        """Estimated seconds until the current backlog has drained."""
        return max(1, len(self._queue)) * self._service_seconds

    def submit(self, request: PredictRequest, *, now: float) -> asyncio.Future:
        """Admit ``request`` or raise :class:`ServiceOverloaded`.

        Must be called from the event loop thread; the depth check and
        enqueue are atomic with respect to other coroutines.
        """
        if len(self._queue) >= self.max_depth:
            self.rejected += 1
            _M_REJECTED.inc()
            raise ServiceOverloaded(
                f"admission queue is full ({self.max_depth} pending)",
                retry_after=self.retry_after(),
            )
        loop = asyncio.get_running_loop()
        deadline = (
            now + request.deadline_seconds
            if request.deadline_seconds is not None
            else None
        )
        pending = PendingRequest(
            request=request,
            future=loop.create_future(),
            enqueued_at=now,
            deadline=deadline,
        )
        self._queue.append(pending)
        self.admitted += 1
        _G_DEPTH.set(len(self._queue))
        self._nonempty.set()
        return pending.future

    def evict(self, futures: list[asyncio.Future]) -> int:
        """Remove still-queued requests whose future is in ``futures``.

        Lets ``predict_many`` withdraw its partial submissions when a
        later submit in the same call is rejected, so an all-or-nothing
        batch submit never leaves orphaned work behind. Requests already
        drained into a batch are past the point of no return and are left
        to complete. Returns the number evicted.
        """
        targets = {id(f) for f in futures}
        kept = [p for p in self._queue if id(p.future) not in targets]
        evicted = len(self._queue) - len(kept)
        if evicted:
            self._queue.clear()
            self._queue.extend(kept)
            _G_DEPTH.set(len(self._queue))
            if not self._queue:
                self._nonempty.clear()
        return evicted

    async def wait_nonempty(self) -> None:
        """Block until at least one request is queued."""
        while not self._queue:
            self._nonempty.clear()
            await self._nonempty.wait()

    def earliest_deadline(self) -> float | None:
        """The soonest absolute expiry among queued requests, if any."""
        deadlines = [p.deadline for p in self._queue if p.deadline is not None]
        return min(deadlines) if deadlines else None

    def _shed_one(self, pending: PendingRequest, now: float) -> None:
        self.shed += 1
        _M_SHED.inc()
        if not pending.future.done():
            pending.future.set_exception(
                DeadlineExceeded(
                    f"request {pending.request.request_id!r} spent "
                    f"{now - pending.enqueued_at:.4f}s queued, past its "
                    f"{pending.request.deadline_seconds}s deadline"
                )
            )

    def shed_expired(self, *, now: float) -> int:
        """Fail every queued request whose deadline has passed.

        Used by the graceful-stop drain; the batcher's normal path sheds
        lazily inside :meth:`drain`. Returns the number shed.
        """
        kept: list[PendingRequest] = []
        shed = 0
        for pending in self._queue:
            if pending.expired(now):
                self._shed_one(pending, now)
                shed += 1
            else:
                kept.append(pending)
        if shed:
            self._queue.clear()
            self._queue.extend(kept)
            _G_DEPTH.set(len(self._queue))
            if not self._queue:
                self._nonempty.clear()
        return shed

    def drain(self, limit: int, *, now: float | None = None) -> list[PendingRequest]:
        """Dequeue up to ``limit`` live requests in admission order.

        With ``now`` given, expired requests are shed (future failed with
        :class:`DeadlineExceeded`, counted) instead of occupying a batch
        slot; shed requests do not count against ``limit``.
        """
        batch: list[PendingRequest] = []
        while self._queue and len(batch) < limit:
            pending = self._queue.popleft()
            if now is not None and pending.expired(now):
                self._shed_one(pending, now)
                continue
            batch.append(pending)
        _G_DEPTH.set(len(self._queue))
        if not self._queue:
            self._nonempty.clear()
        return batch

    def record_service_time(self, per_request_seconds: float) -> None:
        """Fold a measured per-request service time into the EWMA."""
        if per_request_seconds <= 0:
            return
        self._service_seconds = (
            self._decay * self._service_seconds
            + (1.0 - self._decay) * per_request_seconds
        )
