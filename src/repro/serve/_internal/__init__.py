"""Private machinery of :mod:`repro.serve` — not a public surface.

Everything importable from here (admission, micro-batching, the warm
model pool's internals) may change shape without notice. Outside code
goes through :mod:`repro.serve`'s curated ``__all__``; the REP010 lint
rule enforces the boundary.
"""
