"""Per-model-version warm pool: retrains swap in without cold compiles.

The pool subscribes to :meth:`~repro.workflow.ModelStore.publish` and
deserializes + compiles each new version *at publish time*, off the
request path. :meth:`latest` then answers from the pool in O(1): the
first request after a retrain gets the already-compiled new engine
instead of paying npz parsing plus autograd tracing inline. A bounded
number of versions stays resident (``capacity``, evicting oldest) so an
in-flight request pinned to an older version keeps its engine while the
next retrain lands.

Corrupt publishes degrade instead of failing: the pool keeps serving its
newest good version (the store's last-good contract) and counts the
fallback. The cold-compile path in :meth:`latest` remains as a safety
net for versions published while the pool was detached — it is counted
separately (``repro_serve_cold_compiles_total``) precisely so tests can
assert it stays at zero during normal serve traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ...core.model import Env2VecRegressor
from ...obs import get_observability
from ...workflow.model_store import CorruptModelError, ModelStore

__all__ = ["WarmModelPool"]

_OBS = get_observability()
_M_WARM = _OBS.counter(
    "repro_serve_warm_compiles_total",
    "Model versions compiled off the request path (publish-time warmup)",
)
_M_COLD = _OBS.counter(
    "repro_serve_cold_compiles_total",
    "Model versions compiled inline on the request path (pool miss)",
)
_M_FALLBACKS = _OBS.counter(
    "repro_serve_model_fallbacks_total",
    "Corrupt publishes served by falling back to the newest good version",
)
_G_RESIDENT = _OBS.gauge(
    "repro_serve_warm_models",
    "Compiled model versions currently resident in the warm pool",
)


class WarmModelPool:
    """Keeps the latest published models deserialized and compiled."""

    def __init__(self, store: ModelStore, *, capacity: int = 2, dtype: str = "float64"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if dtype not in ("float64", "float32"):
            raise ValueError("dtype must be 'float64' or 'float32'")
        self._store = store
        self.capacity = int(capacity)
        self.dtype = np.dtype(dtype).type
        self._lock = threading.Lock()
        self._models: OrderedDict[int, Env2VecRegressor] = OrderedDict()
        self._unsubscribe = store.subscribe(self._on_publish)
        if store.latest_version:
            try:
                self._warm(store.latest_version)
                _M_WARM.inc()
            except CorruptModelError:
                # Nothing good to fall back to yet; the first request will
                # surface the error through the pipeline's own handling.
                _M_FALLBACKS.inc()

    def close(self) -> None:
        """Detach from the store; resident engines stay usable."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    @property
    def resident_versions(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._models))

    def _admit(self, version: int, model: Env2VecRegressor) -> None:
        with self._lock:
            self._models[version] = model
            while len(self._models) > self.capacity:
                oldest = min(self._models)
                del self._models[oldest]
            _G_RESIDENT.set(len(self._models))

    def _warm(self, version: int) -> Env2VecRegressor:
        """Deserialize + compile ``version`` and make it resident."""
        blob, _record = self._store.fetch(version)
        model = Env2VecRegressor.from_bytes(blob)
        engine = model.compile(dtype=self.dtype)
        engine.meta["model_store_version"] = version
        self._admit(version, model)
        return model

    def _on_publish(self, record) -> None:
        """Publish hook: compile the new version before traffic needs it.

        A corrupt blob is absorbed here — the pool keeps answering with
        its newest good version rather than propagating the failure into
        the publisher (the store's own checksum already told it).
        """
        try:
            self._warm(record.version)
            _M_WARM.inc()
        except CorruptModelError:
            _M_FALLBACKS.inc()

    def latest(self) -> tuple[Env2VecRegressor, int]:
        """The newest resident model ``(engine, version)``.

        When the store's latest version is resident (the steady state —
        every publish warms it), this is a dict lookup. A missing version
        (published while detached) is compiled inline and counted cold; a
        corrupt one falls back to the newest resident good version.
        """
        target = self._store.latest_version
        if not target:
            raise LookupError("no model has been published yet")
        with self._lock:
            model = self._models.get(target)
        if model is not None:
            return model, target
        try:
            model = self._warm(target)
            _M_COLD.inc()
            return model, target
        except CorruptModelError:
            with self._lock:
                if not self._models:
                    raise
                _M_FALLBACKS.inc()
                newest = max(self._models)
                return self._models[newest], newest
