"""Process-backed serving tier: supervised workers, heartbeats, recovery.

The single-loop service executes every coalesced forward on the event
loop; one hung forward (or one crash) takes the whole service down. This
module shards that work across N worker *processes*, each owning a warm
model replica rehydrated from :class:`~repro.workflow.ModelStore` blobs
on spawn, under a supervisor that holds three guarantees:

1. **No acknowledged request is ever lost.** The parent keeps every
   dispatched batch until its result message arrives; when a worker
   crashes or stalls, its in-flight batch is re-enqueued at the *front*
   of the backlog under a fresh batch id and redispatched (bounded by
   ``max_dispatch_attempts``, after which the batch's futures fail
   loudly — failed, never silently dropped).
2. **Determinism survives the process boundary.** Workers run only the
   pure half of the pipeline
   (:meth:`~repro.workflow.PredictionPipeline.score_with_isolation` —
   windows, one coalesced forward, detection); every side effect (alarm
   pushes, metrics) is applied by the parent in dispatch order through a
   :class:`~repro.parallel.SequencedMerger`. Chaos draws are keyed by
   batch id, and a re-dispatch gets a *new* id, so a seeded
   ``worker_kill_rate < 1`` cannot pin one batch forever.
3. **Serving never goes cold on a publish.** Rolling publishes walk the
   fleet one worker at a time: wait for the worker to go idle, ship the
   new blob, await its compile ack, move on — the other N-1 workers keep
   serving the previous version throughout.

Liveness is heartbeat-based: a reader thread per worker forwards pipe
messages onto the loop; the supervise task ticks every
``heartbeat_interval`` and declares a worker dead when its process is
gone (crash), when a dispatched batch outlives ``worker_stall_timeout``
(hung mid-batch), or when an idle worker stops answering pings. Every
restart path converges on the same respawn: bump the worker's epoch
(messages from the old incarnation are dropped by epoch tag), kill the
process, spawn a replacement from the parent-held blob set, and measure
the outage in ``repro_serve_worker_recovery_seconds``.

This file is the one sanctioned home for process-management APIs
(``os.kill``/``os._exit``/``multiprocessing.Process``/...); lint rule
REP011 keeps it that way.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from ...core.model import Env2VecRegressor
from ...obs import get_observability
from ...workflow.model_store import CorruptModelError, ModelStore
from ...workflow.prediction_pipeline import PredictionPipeline
from ..api import ServeConfig, WorkerState

__all__ = ["WorkerSupervisor"]

_OBS = get_observability()
_M_RESTARTS = _OBS.counter(
    "repro_serve_worker_restarts_total",
    "Supervised worker restarts, by detection reason.",
    labels=("reason",),
)
_M_REENQUEUED = _OBS.counter(
    "repro_serve_inflight_reenqueued_total",
    "In-flight batches re-enqueued after their worker died or stalled.",
)
_G_READY = _OBS.gauge(
    "repro_serve_workers_ready",
    "Supervised workers currently able to take a batch (ready or busy).",
)
_H_RECOVERY = _OBS.histogram(
    "repro_serve_worker_recovery_seconds",
    "Outage per worker restart: failure detected to replacement ready.",
    buckets=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0),
)


# ---------------------------------------------------------------------------
# Worker process side
# ---------------------------------------------------------------------------

def _worker_main(worker_id: int, epoch: int, conn, init: dict) -> None:
    """Entry point of one scoring worker process.

    Single-threaded recv loop over the duplex pipe. The worker holds a
    capacity-bounded dict of rehydrated+compiled model replicas and a
    store-less :class:`PredictionPipeline` used purely for
    ``score_with_isolation`` — it never touches a ModelStore, AlarmStore,
    or TSDB, which is what keeps it byte-neutral and spawn-safe.
    """
    pipeline = PredictionPipeline(
        None,  # type: ignore[arg-type] - scoring never touches the store
        None,  # type: ignore[arg-type] - ... or the alarm store
        gamma=init["gamma"],
        abs_threshold=init["abs_threshold"],
    )
    chaos = init.get("chaos")
    stall_seconds = init["stall_seconds"]
    capacity = init["capacity"]
    dtype = np.dtype(init.get("dtype", "float64")).type
    models: OrderedDict[int, Env2VecRegressor] = OrderedDict()

    def admit(version: int, blob: bytes) -> None:
        model = Env2VecRegressor.from_bytes(blob)
        model.compile(dtype=dtype)
        models[version] = model
        while len(models) > capacity:
            del models[min(models)]

    for version, blob in init["blobs"]:
        admit(version, blob)
    conn.send(("ready", epoch, worker_id, os.getpid()))
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                _, batch_id, version, rows = message
                if chaos is not None and chaos.worker_kill(batch_id):
                    os._exit(17)
                if chaos is not None and chaos.worker_stall(batch_id):
                    time.sleep(stall_seconds)
                model = models.get(version)
                used = version
                if model is None and models:
                    # Mirror the warm pool's fallback: newest resident.
                    used = max(models)
                    model = models[used]
                if model is None:
                    outcomes = [("err", "worker has no resident model")] * len(rows)
                    conn.send(("result", epoch, batch_id, -1, 0, outcomes))
                    continue
                executions = [execution for execution, _ in rows]
                error_models = [error_model for _, error_model in rows]
                outcomes = pipeline.score_with_isolation(model, executions, error_models)
                conn.send(("result", epoch, batch_id, used, model.n_lags, outcomes))
            elif kind == "model":
                _, version, blob = message
                admit(version, blob)
                conn.send(("model_ready", epoch, version))
            elif kind == "ping":
                conn.send(("pong", epoch, message[1]))
            elif kind == "shutdown":
                break
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

@dataclass
class _Dispatch:
    """One batch the supervisor has acknowledged and must answer."""

    batch_id: int
    rows: list  # [(TestExecution, GaussianErrorModel | None), ...]
    future: asyncio.Future
    attempts: int = 0


@dataclass
class _Worker:
    """Parent-side bookkeeping for one worker incarnation."""

    worker_id: int
    epoch: int
    process: multiprocessing.process.BaseProcess | None = None
    conn: object = None
    phase: str = "starting"  # starting | ready | busy | publishing | dead
    inflight: _Dispatch | None = None
    dispatched_at: float = 0.0
    last_pong: float = 0.0
    versions: set = field(default_factory=set)
    publish_ack: asyncio.Future | None = None
    restart_began: float | None = None


class WorkerSupervisor:
    """Owns N scoring processes; detects failure, restarts, re-enqueues.

    The public surface is four calls: :meth:`start`, :meth:`score` (the
    service's async batch executor), :meth:`publish` (rolling model
    rollout) and :meth:`stop`. Everything else — heartbeats, stall
    detection, respawn, redispatch — happens inside the supervise task.
    """

    def __init__(
        self,
        store: ModelStore,
        config: ServeConfig,
        *,
        gamma: float = 2.0,
        abs_threshold: float = 5.0,
        chaos=None,
    ):
        if config.n_workers < 1:
            raise ValueError("WorkerSupervisor needs n_workers >= 1")
        self._store = store
        self.config = config
        self._gamma = gamma
        self._abs_threshold = abs_threshold
        self._chaos = chaos
        self._ctx = multiprocessing.get_context(config.worker_start_method)
        self._workers: dict[int, _Worker] = {}
        self._backlog: deque[_Dispatch] = deque()
        self._next_batch_id = 0
        self._blobs: OrderedDict[int, bytes] = OrderedDict()
        self.latest_version = 0
        self.n_lags: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._supervise_task: asyncio.Task | None = None
        self._publish_lock = asyncio.Lock()
        self._publish_tasks: set[asyncio.Task] = set()
        self._idle_events: dict[int, asyncio.Event] = {}
        self._stopping = False
        self.restarts = 0
        self.reenqueued = 0
        self.recovery_seconds: list[float] = []
        self.restart_log: list[tuple[float, int, str]] = []

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Load blobs, spawn the fleet, wait for every worker's ready."""
        self._loop = asyncio.get_running_loop()
        self._load_blob(self._store.latest_version)
        for worker_id in range(self.config.n_workers):
            self._workers[worker_id] = _Worker(worker_id=worker_id, epoch=0)
            self._idle_events[worker_id] = asyncio.Event()
            self._spawn(self._workers[worker_id])
        await self._wait_all_ready()
        self._supervise_task = self._loop.create_task(
            self._supervise(), name="serve-supervisor"
        )

    async def stop(self) -> None:
        """Shut the fleet down; pending dispatches fail loudly."""
        self._stopping = True
        if self._supervise_task is not None:
            self._supervise_task.cancel()
            try:
                await self._supervise_task
            except asyncio.CancelledError:
                pass
            self._supervise_task = None
        for task in list(self._publish_tasks):
            task.cancel()
        if self._publish_tasks:
            await asyncio.gather(*self._publish_tasks, return_exceptions=True)
            self._publish_tasks.clear()
        for dispatch in (*self._backlog, *(
            w.inflight for w in self._workers.values() if w.inflight is not None
        )):
            if not dispatch.future.done():
                dispatch.future.set_exception(
                    RuntimeError("supervisor stopped before the batch was scored")
                )
        self._backlog.clear()
        for worker in self._workers.values():
            worker.inflight = None
            self._teardown(worker)
        _G_READY.set(0)

    def _load_blob(self, version: int) -> None:
        if not version or version in self._blobs:
            return
        blob, _record = self._store.fetch(version)
        self._blobs[version] = blob
        while len(self._blobs) > self.config.pool_capacity:
            del self._blobs[min(self._blobs)]
        self.latest_version = max(self.latest_version, version)
        # One uncompiled deserialize gives the parent the model geometry
        # it needs for admission-time pre-checks without a warm pool.
        self.n_lags = Env2VecRegressor.from_bytes(blob).n_lags

    def _spawn(self, worker: _Worker) -> None:
        """Start a fresh incarnation of ``worker`` (epoch already bumped)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        init = {
            "gamma": self._gamma,
            "abs_threshold": self._abs_threshold,
            "chaos": self._chaos,
            "capacity": self.config.pool_capacity,
            "stall_seconds": self.config.worker_stall_timeout * 10,
            "dtype": self.config.inference_dtype,
            "blobs": list(self._blobs.items()),
        }
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker.worker_id, worker.epoch, child_conn, init),
            name=f"repro-serve-worker-{worker.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.phase = "starting"
        worker.versions = set(self._blobs)
        worker.last_pong = self._loop.time()
        reader = threading.Thread(
            target=self._read_forever,
            args=(parent_conn, worker.worker_id, worker.epoch),
            name=f"repro-serve-reader-{worker.worker_id}",
            daemon=True,
        )
        reader.start()

    def _teardown(self, worker: _Worker) -> None:
        """Kill a worker's process and close its pipe (idempotent)."""
        worker.epoch += 1  # stale reader callbacks are dropped by epoch
        worker.phase = "dead"
        self._idle_events[worker.worker_id].clear()
        if worker.conn is not None:
            try:
                worker.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        if worker.process is not None:
            process = worker.process
            worker.process = None
            if process.is_alive():
                process.kill()
            # Reap without blocking the loop.
            threading.Thread(target=process.join, daemon=True).start()

    # -- reader thread -> loop -----------------------------------------

    def _read_forever(self, conn, worker_id: int, epoch: int) -> None:
        loop = self._loop
        try:
            while True:
                message = conn.recv()
                loop.call_soon_threadsafe(self._on_message, worker_id, epoch, message)
        except (EOFError, OSError):
            try:
                loop.call_soon_threadsafe(self._on_eof, worker_id, epoch)
            except RuntimeError:
                pass  # loop already closed during shutdown

    def _on_message(self, worker_id: int, epoch: int, message: tuple) -> None:
        worker = self._workers.get(worker_id)
        if worker is None or worker.epoch != epoch:
            return  # stale incarnation
        kind = message[0]
        if kind == "ready":
            worker.phase = "ready"
            if worker.restart_began is not None:
                recovered = self._loop.time() - worker.restart_began
                worker.restart_began = None
                self.recovery_seconds.append(recovered)
                _H_RECOVERY.observe(recovered)
            worker.last_pong = self._loop.time()
            self._idle_events[worker_id].set()
            self._update_ready_gauge()
            self._pump()
        elif kind == "pong":
            worker.last_pong = self._loop.time()
        elif kind == "model_ready":
            _, _, version = message
            worker.versions.add(version)
            if worker.publish_ack is not None and not worker.publish_ack.done():
                worker.publish_ack.set_result(version)
        elif kind == "result":
            _, _, batch_id, used_version, n_lags, outcomes = message
            dispatch = worker.inflight
            worker.inflight = None
            worker.phase = "ready"
            worker.last_pong = self._loop.time()
            self._idle_events[worker_id].set()
            if dispatch is not None and not dispatch.future.done():
                dispatch.future.set_result((used_version, n_lags, outcomes))
            self._update_ready_gauge()
            self._pump()

    def _on_eof(self, worker_id: int, epoch: int) -> None:
        worker = self._workers.get(worker_id)
        if worker is None or worker.epoch != epoch or self._stopping:
            return
        self._restart(worker, reason="crash")

    # -- supervision ----------------------------------------------------

    async def _supervise(self) -> None:
        interval = self.config.heartbeat_interval
        while True:
            await asyncio.sleep(interval)
            now = self._loop.time()
            for worker in self._workers.values():
                if worker.phase == "dead":
                    continue
                process = worker.process
                if process is not None and not process.is_alive():
                    self._restart(worker, reason="crash")
                    continue
                if (
                    worker.phase == "busy"
                    and now - worker.dispatched_at > self.config.worker_stall_timeout
                ):
                    self._restart(worker, reason="stall")
                    continue
                if worker.phase == "starting":
                    if now - worker.last_pong > self.config.worker_start_timeout:
                        self._restart(worker, reason="start_timeout")
                    continue
                if worker.phase == "ready":
                    if now - worker.last_pong > self.config.worker_stall_timeout:
                        self._restart(worker, reason="idle_hang")
                        continue
                    try:
                        worker.conn.send(("ping", now))
                    except (BrokenPipeError, OSError):
                        self._restart(worker, reason="crash")

    def _restart(self, worker: _Worker, *, reason: str) -> None:
        """Declare a worker dead, requeue its batch, spawn a replacement."""
        if self._stopping:
            return
        self.restarts += 1
        _M_RESTARTS.labels(reason=reason).inc()
        began = self._loop.time()
        worker.restart_began = began
        self.restart_log.append((began, worker.worker_id, reason))
        dispatch = worker.inflight
        worker.inflight = None
        if worker.publish_ack is not None and not worker.publish_ack.done():
            # The replacement spawns with the full blob set, new version
            # included — the publish is satisfied by the respawn itself.
            worker.publish_ack.set_result(-1)
        if dispatch is not None:
            dispatch.attempts += 1
            if dispatch.attempts >= self.config.max_dispatch_attempts:
                if not dispatch.future.done():
                    dispatch.future.set_exception(
                        RuntimeError(
                            f"batch failed after {dispatch.attempts} dispatch "
                            f"attempts (last worker {worker.worker_id}: {reason})"
                        )
                    )
            else:
                # Fresh id => fresh chaos draw; front of the backlog so
                # recovered work is not starved by newly admitted work.
                dispatch.batch_id = self._next_batch_id
                self._next_batch_id += 1
                self.reenqueued += 1
                _M_REENQUEUED.inc()
                self._backlog.appendleft(dispatch)
        self._teardown(worker)
        self._spawn(worker)
        self._update_ready_gauge()

    def _update_ready_gauge(self) -> None:
        _G_READY.set(self.available_count)

    @property
    def available_count(self) -> int:
        """Workers currently able to serve (ready now, or finishing a batch)."""
        return sum(1 for w in self._workers.values() if w.phase in ("ready", "busy"))

    @property
    def ready_count(self) -> int:
        return sum(1 for w in self._workers.values() if w.phase == "ready")

    async def _wait_all_ready(self) -> None:
        deadline = self._loop.time() + self.config.worker_start_timeout
        for worker_id, event in self._idle_events.items():
            remaining = deadline - self._loop.time()
            try:
                await asyncio.wait_for(event.wait(), max(0.01, remaining))
            except asyncio.TimeoutError:
                raise RuntimeError(
                    f"worker {worker_id} did not become ready within "
                    f"{self.config.worker_start_timeout}s"
                ) from None

    # -- dispatch -------------------------------------------------------

    def _pump(self) -> None:
        """Hand backlog batches to ready workers, lowest worker id first."""
        while self._backlog:
            candidates = [w for w in self._workers.values() if w.phase == "ready"]
            if not candidates:
                return
            worker = min(candidates, key=lambda w: w.worker_id)
            dispatch = self._backlog.popleft()
            worker.phase = "busy"
            worker.inflight = dispatch
            worker.dispatched_at = self._loop.time()
            self._idle_events[worker.worker_id].clear()
            try:
                worker.conn.send(
                    ("batch", dispatch.batch_id, self.latest_version, dispatch.rows)
                )
            except (BrokenPipeError, OSError):
                self._restart(worker, reason="crash")

    async def score(self, rows: list) -> tuple[int, int, list]:
        """Score ``rows`` on some worker; survives crashes and stalls.

        ``rows`` is ``[(execution, error_model), ...]``. Returns
        ``(used_model_version, n_lags, outcomes)`` where each outcome is
        ``("ok", report, predictions, observations)`` or
        ``("err", message)``, aligned with ``rows``. The returned future
        resolves only when a worker has actually answered (or the batch
        exhausted its dispatch attempts) — acknowledged work is never
        dropped on the floor.
        """
        dispatch = _Dispatch(
            batch_id=self._next_batch_id,
            rows=list(rows),
            future=self._loop.create_future(),
        )
        self._next_batch_id += 1
        self._backlog.append(dispatch)
        self._pump()
        return await dispatch.future

    # -- rolling publish ------------------------------------------------

    def schedule_publish(self, version: int) -> asyncio.Task | None:
        """React to a store publish: roll the fleet onto ``version``.

        Fired synchronously from the store's subscriber hook; the actual
        rollout runs as a task so the publisher is never blocked on N
        compiles. Corrupt blobs are absorbed exactly like the warm pool:
        the fleet keeps serving its newest good version.
        """
        try:
            self._load_blob(version)
        except CorruptModelError:
            return None
        if self._loop is None or self._stopping:
            return None  # next start()/spawn ships the blob anyway
        task = self._loop.create_task(
            self._rolling_publish(version), name=f"serve-publish-v{version}"
        )
        self._publish_tasks.add(task)
        task.add_done_callback(self._publish_tasks.discard)
        return task

    async def _rolling_publish(self, version: int) -> None:
        blob = self._blobs.get(version)
        if blob is None:
            return
        async with self._publish_lock:
            for worker_id in sorted(self._workers):
                await self._publish_to_worker(self._workers[worker_id], version, blob)
            self.latest_version = max(self.latest_version, version)

    async def _publish_to_worker(self, worker: _Worker, version: int, blob) -> None:
        """Drain one worker, ship the blob, await its compile ack."""
        while True:
            if version in worker.versions:
                return  # respawned with the new blob set already
            if worker.phase == "ready":
                break
            await self._idle_events[worker.worker_id].wait()
        worker.phase = "publishing"
        self._idle_events[worker.worker_id].clear()
        worker.publish_ack = self._loop.create_future()
        try:
            worker.conn.send(("model", version, blob))
        except (BrokenPipeError, OSError):
            self._restart(worker, reason="crash")
            return
        try:
            await asyncio.wait_for(
                worker.publish_ack, self.config.worker_start_timeout
            )
        except asyncio.TimeoutError:
            self._restart(worker, reason="publish_timeout")
            return
        finally:
            worker.publish_ack = None
        if worker.phase == "publishing":
            worker.phase = "ready"
            self._idle_events[worker.worker_id].set()
            self._update_ready_gauge()
            self._pump()

    # -- introspection --------------------------------------------------

    def worker_states(self) -> tuple[WorkerState, ...]:
        """Liveness snapshot for ``health()``."""
        states = []
        for worker_id in sorted(self._workers):
            worker = self._workers[worker_id]
            states.append(
                WorkerState(
                    worker_id=worker_id,
                    phase=worker.phase,
                    epoch=worker.epoch + 1,
                    model_version=max(worker.versions) if worker.versions else 0,
                    inflight_batch=(
                        worker.inflight.batch_id if worker.inflight is not None else None
                    ),
                )
            )
        return tuple(states)
