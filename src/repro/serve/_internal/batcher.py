"""Cross-chain micro-batching over the admission queue.

The batcher is a single background task that repeatedly (1) waits for
the admission queue to become non-empty, (2) greedily drains whatever is
already queued up to ``max_batch`` — shedding any request whose deadline
already expired, (3) lingers up to ``max_wait`` seconds topping the
batch up as more requests arrive (clamped so lingering never outlives
the earliest queued deadline), then (4) hands the batch to the service's
execute callback, which runs the coalesced forward and resolves each
request's future in admission order.

The execute callback comes in two shapes. A plain callable runs
synchronously on the loop (the single-process service). A coroutine
function is scheduled as a task and the batcher immediately collects the
next batch, keeping up to ``max_inflight`` batches in flight — that is
how the supervised service keeps N worker processes busy from one drain
loop while batch *composition* stays a deterministic function of arrival
order.

Because every compiled kernel in the model is row-wise, the *numbers* a
request gets back are independent of which batch it landed in — batch
composition affects throughput and latency only. That is what makes the
timing-dependent coalescing safe to combine with byte-identity tests.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Callable

from ...obs import get_observability
from .admission import AdmissionController, PendingRequest

__all__ = ["MicroBatcher"]

_OBS = get_observability()
_M_BATCHES = _OBS.counter(
    "repro_serve_batches_total",
    "Coalesced forwards executed by the micro-batcher",
)
_H_BATCH_SIZE = _OBS.histogram(
    "repro_serve_batch_size",
    "Requests coalesced per micro-batch",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
)


class MicroBatcher:
    """Background drain loop: admission queue -> coalesced executes."""

    def __init__(
        self,
        admission: AdmissionController,
        *,
        max_batch: int,
        max_wait: float,
        execute: Callable[[list[PendingRequest]], object],
        max_inflight: int = 1,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._admission = admission
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self._execute = execute
        self._async_execute = inspect.iscoroutinefunction(execute)
        self.max_inflight = int(max_inflight)
        self._inflight: set[asyncio.Task] = set()
        self._task: asyncio.Task | None = None

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        if self.running:
            raise RuntimeError("micro-batcher is already running")
        self._task = asyncio.get_running_loop().create_task(self._run(), name="serve-batcher")

    async def stop(self, drain: bool = True) -> None:
        """Stop the drain loop.

        If the loop was running and ``drain`` is true, this is a
        *graceful drain*: expired queued requests are shed with
        ``DeadlineExceeded``, live queued requests are batched and
        completed, and in-flight async batches are awaited — an
        acknowledged live request is never dropped by a clean shutdown.
        With ``drain=False`` (a simulated crash), or if the loop never
        started, queued futures can never complete, so they are failed
        loudly instead.
        """
        if self._task is None:
            self._fail_queued()
            return
        was_running = self.running
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        if not was_running or not drain:
            for task in list(self._inflight):
                task.cancel()
            if self._inflight:
                await asyncio.gather(*self._inflight, return_exceptions=True)
                self._inflight.clear()
            self._fail_queued()
            return
        loop = asyncio.get_running_loop()
        self._admission.shed_expired(now=loop.time())
        while True:
            batch = self._admission.drain(self.max_batch, now=loop.time())
            if not batch:
                break
            await self._dispatch(batch)
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
            self._inflight.clear()

    def _fail_queued(self) -> None:
        for pending in self._admission.drain(self._admission.max_depth):
            if not pending.future.done():
                pending.future.set_exception(
                    RuntimeError("service stopped before the request was batched")
                )

    async def _collect(self) -> list[PendingRequest]:
        """Assemble one batch: greedy drain, then linger up to max_wait."""
        await self._admission.wait_nonempty()
        loop = asyncio.get_running_loop()
        batch = self._admission.drain(self.max_batch, now=loop.time())
        if self.max_wait > 0 and len(batch) < self.max_batch:
            deadline = loop.time() + self.max_wait
            # Lingering for a fuller batch must not expire what we hold:
            # cap the linger at the earliest deadline in hand or queued.
            held = [p.deadline for p in batch if p.deadline is not None]
            queued = self._admission.earliest_deadline()
            for bound in (*held, *(() if queued is None else (queued,))):
                deadline = min(deadline, bound)
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(self._admission.wait_nonempty(), remaining)
                except asyncio.TimeoutError:
                    break
                batch.extend(
                    self._admission.drain(self.max_batch - len(batch), now=loop.time())
                )
        return batch

    async def _dispatch(self, batch: list[PendingRequest]) -> None:
        """Run one batch through the execute callback (sync or async)."""
        for pending in batch:
            pending.batch_size = len(batch)
        _M_BATCHES.inc()
        _H_BATCH_SIZE.observe(len(batch))
        if not self._async_execute:
            # The forward runs synchronously on the loop: numpy releases
            # the GIL only inside kernels and the model is not re-entrant,
            # so there is nothing to gain from a thread hop — and staying
            # on the loop keeps execution order deterministic.
            try:
                self._execute(batch)
            except Exception as exc:  # noqa: BLE001 - fail the batch, not the loop
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            return
        while len(self._inflight) >= self.max_inflight:
            done, self._inflight = await asyncio.wait(
                self._inflight, return_when=asyncio.FIRST_COMPLETED
            )
            del done  # task exceptions are handled inside _guarded
        task = asyncio.get_running_loop().create_task(
            self._guarded(batch), name="serve-batch-exec"
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _guarded(self, batch: list[PendingRequest]) -> None:
        try:
            await self._execute(batch)
        except Exception as exc:  # noqa: BLE001 - fail the batch, not the loop
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)

    async def _run(self) -> None:
        while True:
            batch = await self._collect()
            if not batch:
                continue
            await self._dispatch(batch)
            # Yield once per batch so resolved waiters run before the
            # next drain, letting closed-loop clients re-submit and form
            # the next coalesced batch.
            await asyncio.sleep(0)
