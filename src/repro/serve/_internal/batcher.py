"""Cross-chain micro-batching over the admission queue.

The batcher is a single background task that repeatedly (1) waits for
the admission queue to become non-empty, (2) greedily drains whatever is
already queued up to ``max_batch``, (3) lingers up to ``max_wait``
seconds topping the batch up as more requests arrive, then (4) hands the
batch to the service's execute callback, which runs the coalesced
forward and resolves each request's future in admission order.

Because every compiled kernel in the model is row-wise, the *numbers* a
request gets back are independent of which batch it landed in — batch
composition affects throughput and latency only. That is what makes the
timing-dependent coalescing safe to combine with byte-identity tests.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from ...obs import get_observability
from .admission import AdmissionController, PendingRequest

__all__ = ["MicroBatcher"]

_OBS = get_observability()
_M_BATCHES = _OBS.counter(
    "repro_serve_batches_total",
    "Coalesced forwards executed by the micro-batcher",
)
_H_BATCH_SIZE = _OBS.histogram(
    "repro_serve_batch_size",
    "Requests coalesced per micro-batch",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
)


class MicroBatcher:
    """Background drain loop: admission queue -> coalesced executes."""

    def __init__(
        self,
        admission: AdmissionController,
        *,
        max_batch: int,
        max_wait: float,
        execute: Callable[[list[PendingRequest]], None],
    ):
        self._admission = admission
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self._execute = execute
        self._task: asyncio.Task | None = None

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        if self.running:
            raise RuntimeError("micro-batcher is already running")
        self._task = asyncio.get_running_loop().create_task(self._run(), name="serve-batcher")

    async def stop(self) -> None:
        """Stop the drain loop, failing any still-queued requests."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for pending in self._admission.drain(self._admission.max_depth):
            if not pending.future.done():
                pending.future.set_exception(
                    RuntimeError("service stopped before the request was batched")
                )

    async def _collect(self) -> list[PendingRequest]:
        """Assemble one batch: greedy drain, then linger up to max_wait."""
        await self._admission.wait_nonempty()
        batch = self._admission.drain(self.max_batch)
        if self.max_wait > 0 and len(batch) < self.max_batch:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.max_wait
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(self._admission.wait_nonempty(), remaining)
                except asyncio.TimeoutError:
                    break
                batch.extend(self._admission.drain(self.max_batch - len(batch)))
        return batch

    async def _run(self) -> None:
        while True:
            batch = await self._collect()
            if not batch:
                continue
            for pending in batch:
                pending.batch_size = len(batch)
            _M_BATCHES.inc()
            _H_BATCH_SIZE.observe(len(batch))
            # The forward runs synchronously on the loop: numpy releases
            # the GIL only inside kernels and the model is not re-entrant,
            # so there is nothing to gain from a thread hop — and staying
            # on the loop keeps execution order deterministic.
            try:
                self._execute(batch)
            except Exception as exc:  # noqa: BLE001 - fail the batch, not the loop
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            # Yield once per batch so resolved waiters run before the
            # next drain, letting closed-loop clients re-submit and form
            # the next coalesced batch.
            await asyncio.sleep(0)
