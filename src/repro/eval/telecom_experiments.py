"""Experiment drivers for the telecom testing corpus (§4.2, §4.3).

Covers every telecom-data table and figure:

- :func:`run_figure1` — per-chain linear-regression coefficient heatmap
  data and residual boxplot statistics (Figure 1).
- :func:`run_chain_mae` — per-chain characterization MAE for all methods
  on the current builds (Figures 3a/3b and the Figure 4 CDF).
- :func:`run_anomaly_table` — alarm counts and A_T/A_F per method and
  gamma (Table 5), with per-execution breakdowns.
- :func:`run_unseen_table` — the §4.3 blinded-environment protocol
  (Table 6).
- :func:`run_coverage_table` — the Table 7 coverage analysis of the
  under-performing execution.
- :func:`run_embedding_pca` — the 2-d PCA of learned environment
  embeddings colored by build type (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.anomaly import AlarmScore, ContextualAnomalyDetector, GaussianErrorModel, score_alarms
from ..core.baselines import RFNNRegressor
from ..core.model import Env2VecRegressor
from ..core.unseen import blind_chains, field_coverage
from ..data.chains import BuildChain, TestExecution
from ..data.environment import Environment
from ..data.telecom import TelecomDataset
from ..data.windows import build_windows, build_windows_multi
from ..htm.detector import HTMDetector
from ..ml.pca import PCA
from ..ml.preprocessing import StandardScaler
from ..ml.ridge import LinearRegression, Ridge, RidgeTS
from .metrics import empirical_cdf, mae, mse

__all__ = [
    "window_history_pool",
    "train_env2vec_telecom",
    "train_rfnn_all_telecom",
    "Figure1Result",
    "run_figure1",
    "ChainMAEResult",
    "run_chain_mae",
    "AnomalyRow",
    "AnomalyTableResult",
    "run_anomaly_table",
    "run_unseen_table",
    "CoverageResult",
    "run_coverage_table",
    "Figure6Result",
    "run_embedding_pca",
]

DEFAULT_N_LAGS = 3


# ---------------------------------------------------------------------------
# Shared training helpers
# ---------------------------------------------------------------------------
def window_history_pool(
    records: list[tuple[Environment, np.ndarray, np.ndarray]], n_lags: int
) -> tuple[list[Environment], np.ndarray, np.ndarray, np.ndarray]:
    """Window (env, features, cpu) records into one pooled training set."""
    if not records:
        raise ValueError("no training records")
    usable = [(env, f, c) for env, f, c in records if len(c) > n_lags]
    series = [(features, cpu) for _, features, cpu in usable]
    X, history, y, series_ids = build_windows_multi(series, n_lags)
    environments = [usable[i][0] for i in series_ids]
    return environments, X, history, y


def _fit_pooled(
    model,
    records: list[tuple[Environment, np.ndarray, np.ndarray]],
    n_lags: int,
    seed: int,
    with_envs: bool,
):
    environments, X, history, y = window_history_pool(records, n_lags)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(y))
    n_val = max(1, len(y) // 10)
    val_idx, train_idx = order[:n_val], order[n_val:]
    if with_envs:
        model.fit(
            [environments[i] for i in train_idx],
            X[train_idx],
            history[train_idx],
            y[train_idx],
            val=(
                [environments[i] for i in val_idx],
                X[val_idx],
                history[val_idx],
                y[val_idx],
            ),
        )
    else:
        model.fit(
            X[train_idx],
            history[train_idx],
            y[train_idx],
            val=(X[val_idx], history[val_idx], y[val_idx]),
        )
    return model


def train_env2vec_telecom(
    dataset_or_records,
    n_lags: int = DEFAULT_N_LAGS,
    fast: bool = True,
    seed: int = 0,
    **params,
) -> Env2VecRegressor:
    """Train the single Env2Vec model on all historical executions."""
    records = _as_records(dataset_or_records)
    defaults = dict(
        max_epochs=30 if fast else 120,
        batch_size=256,
        dropout=0.05,
        lr=0.004 if fast else 0.002,
        patience=8 if fast else 15,
    )
    defaults.update(params)
    model = Env2VecRegressor(n_lags=n_lags, seed=seed, **defaults)
    return _fit_pooled(model, records, n_lags, seed, with_envs=True)


def train_rfnn_all_telecom(
    dataset_or_records,
    n_lags: int = DEFAULT_N_LAGS,
    fast: bool = True,
    seed: int = 0,
    **params,
) -> RFNNRegressor:
    """Train the pooled no-embeddings RFNN_all model."""
    records = _as_records(dataset_or_records)
    defaults = dict(
        max_epochs=30 if fast else 120,
        batch_size=256,
        dropout=0.05,
        lr=0.004 if fast else 0.002,
        patience=8 if fast else 15,
    )
    defaults.update(params)
    model = RFNNRegressor(n_lags=n_lags, seed=seed, **defaults)
    return _fit_pooled(model, records, n_lags, seed, with_envs=False)


def _as_records(dataset_or_records):
    if isinstance(dataset_or_records, TelecomDataset):
        return dataset_or_records.history_training_series()
    return list(dataset_or_records)


def _predict_execution(model, execution: TestExecution, n_lags: int) -> tuple[np.ndarray, np.ndarray]:
    X, history, y = build_windows(execution.features, execution.cpu, n_lags)
    if isinstance(model, Env2VecRegressor):
        return model.predict([execution.environment] * len(y), X, history), y
    if isinstance(model, RFNNRegressor):
        return model.predict(X, history), y
    raise TypeError(f"unsupported pooled model {type(model).__name__}")


# ---------------------------------------------------------------------------
# Figure 1 — per-chain linear models
# ---------------------------------------------------------------------------
@dataclass
class Figure1Result:
    """Data behind Figure 1's heatmap and residual boxplots."""

    chain_keys: list[tuple[str, str, str]]
    weights: np.ndarray  # (n_features, n_chains) symmetric log-normalized
    residual_quantiles: np.ndarray  # (n_chains, 5): min/q25/median/q75/max of |residual|
    over_10_percent: np.ndarray  # (n_chains,) bool — the red boxplots

    def summary(self) -> str:
        n_red = int(self.over_10_percent.sum())
        spread = self.weights.std(axis=1).mean()
        return (
            f"Figure 1: {len(self.chain_keys)} chains; weight spread across chains "
            f"(mean per-feature std of normalized coefficients) = {spread:.3f}; "
            f"{n_red}/{len(self.chain_keys)} chains have max |residual| > 10% CPU"
        )


def run_figure1(dataset: TelecomDataset) -> Figure1Result:
    """Fit one linear model per build chain; collect weights and residuals.

    Mirrors the paper's setup: model input is the contextual features,
    output is CPU; the model is trained on the chain's historical builds
    and residuals are measured on the current build (the test data).
    """
    keys, columns, quantiles, red = [], [], [], []
    for chain in dataset.chains:
        X_train = np.concatenate([e.features for e in chain.history])
        y_train = np.concatenate([e.cpu for e in chain.history])
        scaler = StandardScaler().fit(X_train)
        model = LinearRegression().fit(scaler.transform(X_train), y_train)
        residuals = np.abs(
            model.predict(scaler.transform(chain.current.features)) - chain.current.cpu
        )
        keys.append(chain.key)
        columns.append(model.coef_)
        quantiles.append(np.percentile(residuals, [0, 25, 50, 75, 100]))
        red.append(bool(residuals.max() > 10.0))
    raw = np.stack(columns, axis=1)
    # Symmetric log normalization, as in the Figure 1 caption.
    log_weights = np.sign(raw) * np.log1p(np.abs(raw))
    peak = np.abs(log_weights).max()
    weights = log_weights / peak if peak > 0 else log_weights
    return Figure1Result(
        chain_keys=keys,
        weights=weights,
        residual_quantiles=np.stack(quantiles),
        over_10_percent=np.array(red),
    )


# ---------------------------------------------------------------------------
# Figures 3 & 4 — per-chain characterization MAE
# ---------------------------------------------------------------------------
TELECOM_METHODS = ("ridge", "ridge_ts", "rfnn_all", "env2vec")


@dataclass
class ChainMAEResult:
    """Per-chain MAE/MSE on current builds, per method."""

    chain_keys: list[tuple[str, str, str]]
    per_chain_mae: dict[str, np.ndarray]
    per_chain_mse: dict[str, np.ndarray]

    def mean_table(self) -> str:
        lines = ["Figure 3 table — average over all chains", f"{'method':<10}{'MAE':>8}{'MSE':>10}"]
        for method, values in self.per_chain_mae.items():
            lines.append(
                f"{method:<10}{values.mean():8.2f}{self.per_chain_mse[method].mean():10.2f}"
            )
        return "\n".join(lines)

    def cdf(self, method: str) -> tuple[np.ndarray, np.ndarray]:
        """(sorted MAE values, cumulative fraction) — Figure 4's curves."""
        return empirical_cdf(self.per_chain_mae[method])

    def improvement(self, method: str, baseline: str) -> np.ndarray:
        """Per-chain MAE improvement of ``method`` over ``baseline`` (Fig 3a/3b)."""
        return self.per_chain_mae[baseline] - self.per_chain_mae[method]

    def tail_mean(self, method: str, fraction: float = 0.1) -> float:
        """Mean MAE over the hardest ``fraction`` of chains for this method,
        where hardness is each chain's worst (max) MAE across methods —
        Figure 4's 'most difficult 10% of the cases'."""
        stacked = np.stack(list(self.per_chain_mae.values()))
        hardness = stacked.max(axis=0)
        k = max(1, int(len(hardness) * fraction))
        hardest = np.argsort(hardness)[-k:]
        return float(self.per_chain_mae[method][hardest].mean())


def _per_chain_ridge(chain: BuildChain, n_lags: int, use_history: bool) -> tuple[float, float]:
    """Train Ridge / Ridge_ts on a chain's history; score the current build."""
    series = chain.history_series()
    X, history, y, _ = build_windows_multi(series, n_lags)
    scaler = StandardScaler().fit(X)
    Xs = scaler.transform(X)
    X_test, history_test, y_test = build_windows(
        chain.current.features, chain.current.cpu, n_lags
    )
    Xs_test = scaler.transform(X_test)
    if use_history:
        model = RidgeTS(alpha=1.0, n_lags=n_lags).fit(Xs, y, history=history)
        predictions = model.predict(Xs_test, history=history_test)
    else:
        model = Ridge(alpha=1.0).fit(Xs, y)
        predictions = model.predict(Xs_test)
    return mae(y_test, predictions), mse(y_test, predictions)


def run_chain_mae(
    dataset: TelecomDataset,
    env2vec: Env2VecRegressor,
    rfnn_all: RFNNRegressor | None = None,
    n_lags: int = DEFAULT_N_LAGS,
) -> ChainMAEResult:
    """Per-chain current-build MAE for the Figure 3/4 comparisons."""
    chains = [c for c in dataset.chains if all(len(e.cpu) > n_lags for e in c.executions)]
    keys = [chain.key for chain in chains]
    maes: dict[str, list[float]] = {m: [] for m in TELECOM_METHODS}
    mses: dict[str, list[float]] = {m: [] for m in TELECOM_METHODS}
    for chain in chains:
        for method, use_history in (("ridge", False), ("ridge_ts", True)):
            m_mae, m_mse = _per_chain_ridge(chain, n_lags, use_history)
            maes[method].append(m_mae)
            mses[method].append(m_mse)
        for method, model in (("env2vec", env2vec), ("rfnn_all", rfnn_all)):
            if model is None:
                continue
            predictions, observed = _predict_execution(model, chain.current, n_lags)
            maes[method].append(mae(observed, predictions))
            mses[method].append(mse(observed, predictions))
    return ChainMAEResult(
        chain_keys=keys,
        per_chain_mae={m: np.array(v) for m, v in maes.items() if v},
        per_chain_mse={m: np.array(v) for m, v in mses.items() if v},
    )


# ---------------------------------------------------------------------------
# Tables 5 & 6 — anomaly detection
# ---------------------------------------------------------------------------
@dataclass
class AnomalyRow:
    """One Table 5/6 row."""

    method: str
    gamma: float | None
    n_alarms: int
    correct_alarms: int
    problems_detected: int = 0

    @property
    def a_t(self) -> float:
        return self.correct_alarms / self.n_alarms if self.n_alarms else 0.0

    @property
    def a_f(self) -> float:
        return 1.0 - self.a_t if self.n_alarms else 0.0

    def format(self) -> str:
        gamma = f"γ={self.gamma:g}" if self.gamma is not None else "     "
        return (
            f"{self.method:<10} {gamma:<6} alarms={self.n_alarms:<4} "
            f"correct={self.correct_alarms:<4} problems={self.problems_detected:<4} "
            f"A_T={self.a_t:5.3f} A_F={self.a_f:5.3f}"
        )


@dataclass
class AnomalyTableResult:
    rows: list[AnomalyRow]
    per_execution: dict[tuple[str, float | None], list[AlarmScore]] = field(default_factory=dict)
    ground_truth_problems: int = 0

    def row(self, method: str, gamma: float | None) -> AnomalyRow:
        for row in self.rows:
            if row.method == method and row.gamma == gamma:
                return row
        raise KeyError(f"no row for {method} gamma={gamma}")

    def table(self, title: str) -> str:
        lines = [f"{title} (ground truth: {self.ground_truth_problems} problems)"]
        lines += [row.format() for row in self.rows]
        return "\n".join(lines)


def _problem_intervals(execution: TestExecution, offset: int) -> list[tuple[int, int]]:
    """Ground-truth fault intervals, shifted into windowed-row coordinates."""
    intervals = []
    horizon = execution.n_timesteps - offset
    for fault in execution.impactful_faults:
        start = max(0, fault.start - offset)
        end = min(horizon, fault.end - offset)
        if start < end:
            intervals.append((start, end))
    return intervals


def _detect_with_model(
    model,
    chain: BuildChain,
    n_lags: int,
    gamma: float,
    self_calibrated: bool,
) -> AlarmScore:
    detector = ContextualAnomalyDetector(gamma=gamma)
    predictions, observed = _predict_execution(model, chain.current, n_lags)
    if self_calibrated:
        report = detector.detect_self_calibrated(predictions, observed)
    else:
        errors = []
        for execution in chain.history:
            p, o = _predict_execution(model, execution, n_lags)
            errors.append(p - o)
        error_model = GaussianErrorModel.fit(np.concatenate(errors))
        report = detector.detect(predictions, observed, error_model)
    truth = chain.current.anomaly_mask()[n_lags:]
    return score_alarms(report.alarms, truth, _problem_intervals(chain.current, n_lags))


def _detect_with_per_chain_ridge(
    chain: BuildChain, n_lags: int, gamma: float, use_history: bool
) -> AlarmScore:
    series = chain.history_series()
    X, history, y, _ = build_windows_multi(series, n_lags)
    scaler = StandardScaler().fit(X)
    Xs = scaler.transform(X)
    if use_history:
        model = RidgeTS(alpha=1.0, n_lags=n_lags).fit(Xs, y, history=history)
        train_pred = model.predict(Xs, history=history)
    else:
        model = Ridge(alpha=1.0).fit(Xs, y)
        train_pred = model.predict(Xs)
    error_model = GaussianErrorModel.fit(train_pred - y)
    X_test, history_test, y_test = build_windows(
        chain.current.features, chain.current.cpu, n_lags
    )
    Xs_test = scaler.transform(X_test)
    predictions = (
        model.predict(Xs_test, history=history_test) if use_history else model.predict(Xs_test)
    )
    detector = ContextualAnomalyDetector(gamma=gamma)
    report = detector.detect(predictions, y_test, error_model)
    truth = chain.current.anomaly_mask()[n_lags:]
    return score_alarms(report.alarms, truth, _problem_intervals(chain.current, n_lags))


def _detect_with_htm(chain: BuildChain, likelihood_threshold: float = 0.97) -> AlarmScore:
    """HTM-AD on the raw CPU stream: learn over history, score the current build."""
    cpu_history = np.concatenate([e.cpu for e in chain.history])
    detector = HTMDetector(
        minimum=0.0,
        maximum=100.0,
        n_bits=200,
        w=13,
        n_columns=128,
        cells_per_column=4,
        learning_period=30,
        seed=0,
    )
    detector.run(cpu_history)
    result = detector.run(chain.current.cpu)
    flags = result.alarms(likelihood_threshold)
    from ..core.anomaly import merge_flags_into_alarms

    alarms = merge_flags_into_alarms(flags, result.likelihoods)
    return score_alarms(
        alarms, chain.current.anomaly_mask(), _problem_intervals(chain.current, 0)
    )


def run_anomaly_table(
    dataset: TelecomDataset,
    env2vec: Env2VecRegressor,
    rfnn_all: RFNNRegressor | None = None,
    gammas: tuple[float, ...] = (1.0, 2.0, 3.0),
    n_lags: int = DEFAULT_N_LAGS,
    include_htm: bool = True,
    include_ridge: bool = True,
) -> AnomalyTableResult:
    """Table 5: pooled alarm quality over the focus test executions."""
    chains = dataset.focus_chains
    if not chains:
        raise ValueError("dataset has no focus executions")
    result = AnomalyTableResult(
        rows=[], ground_truth_problems=dataset.total_ground_truth_problems()
    )

    def add(method: str, gamma: float | None, scores: list[AlarmScore]) -> None:
        total = sum(scores, AlarmScore(0, 0))
        result.rows.append(
            AnomalyRow(
                method=method,
                gamma=gamma,
                n_alarms=total.n_alarms,
                correct_alarms=total.correct_alarms,
                problems_detected=total.problems_detected,
            )
        )
        result.per_execution[(method, gamma)] = scores

    if include_htm:
        add("htm_ad", None, [_detect_with_htm(chain) for chain in chains])
    for gamma in gammas:
        if include_ridge:
            add(
                "ridge",
                gamma,
                [_detect_with_per_chain_ridge(c, n_lags, gamma, False) for c in chains],
            )
            add(
                "ridge_ts",
                gamma,
                [_detect_with_per_chain_ridge(c, n_lags, gamma, True) for c in chains],
            )
        if rfnn_all is not None:
            add(
                "rfnn_all",
                gamma,
                [_detect_with_model(rfnn_all, c, n_lags, gamma, False) for c in chains],
            )
        add(
            "env2vec",
            gamma,
            [_detect_with_model(env2vec, c, n_lags, gamma, False) for c in chains],
        )
    return result


def run_unseen_table(
    dataset: TelecomDataset,
    gammas: tuple[float, ...] = (1.0, 2.0, 3.0),
    n_lags: int = DEFAULT_N_LAGS,
    fast: bool = True,
    seed: int = 0,
    include_htm: bool = True,
) -> AnomalyTableResult:
    """Table 6: detection in blinded (unseen) environments, self-calibrated.

    Ridge and Ridge_ts are N/A here — they need per-chain history that the
    protocol removes — so they simply have no rows.
    """
    split = blind_chains(dataset, dataset.focus_indices)
    env2vec = train_env2vec_telecom(split.training, n_lags=n_lags, fast=fast, seed=seed)
    rfnn_all = train_rfnn_all_telecom(split.training, n_lags=n_lags, fast=fast, seed=seed)
    chains = dataset.focus_chains
    result = AnomalyTableResult(
        rows=[], ground_truth_problems=dataset.total_ground_truth_problems()
    )

    def add(method: str, gamma: float | None, scores: list[AlarmScore]) -> None:
        total = sum(scores, AlarmScore(0, 0))
        result.rows.append(
            AnomalyRow(
                method,
                gamma,
                total.n_alarms,
                total.correct_alarms,
                problems_detected=total.problems_detected,
            )
        )
        result.per_execution[(method, gamma)] = scores

    if include_htm:
        add("htm_ad", None, [_detect_with_htm(chain) for chain in chains])
    for gamma in gammas:
        add(
            "rfnn_all",
            gamma,
            [_detect_with_model(rfnn_all, c, n_lags, gamma, True) for c in chains],
        )
        add(
            "env2vec",
            gamma,
            [_detect_with_model(env2vec, c, n_lags, gamma, True) for c in chains],
        )
    return result


# ---------------------------------------------------------------------------
# Table 7 — coverage analysis
# ---------------------------------------------------------------------------
@dataclass
class CoverageResult:
    """Table 7: the under-performing execution vs the remaining ones."""

    under_key: tuple[str, str, str]
    under_a_t: float
    rest_a_t_mean: float
    under_examples: int
    rest_examples_mean: float
    rest_examples_std: float
    under_coverage_pct: float
    rest_coverage_pct_mean: float

    def table(self) -> str:
        return "\n".join(
            [
                "Table 7 — under-performing execution vs the rest (γ=1)",
                f"{'':<18}{'under-performing':>18}{'remaining':>22}",
                f"{'A_T':<18}{self.under_a_t:>18.3f}{self.rest_a_t_mean:>22.3f}",
                f"{'# examples':<18}{self.under_examples:>18d}"
                f"{self.rest_examples_mean:>14.0f} ± {self.rest_examples_std:.0f}",
                f"{'coverage (%)':<18}{self.under_coverage_pct:>18.4f}"
                f"{self.rest_coverage_pct_mean:>22.4f}",
            ]
        )


def run_coverage_table(
    dataset: TelecomDataset,
    table5: AnomalyTableResult,
    gamma: float = 1.0,
    n_lags: int = DEFAULT_N_LAGS,
) -> CoverageResult:
    """Explain Env2Vec's weakest focus execution by testbed coverage."""
    scores = table5.per_execution[("env2vec", gamma)]
    chains = dataset.focus_chains
    training = dataset.history_training_series()
    training_envs = [env for env, _, _ in training]
    total_examples = sum(max(0, len(cpu) - n_lags) for _, _, cpu in training)

    def testbed_examples(chain: BuildChain) -> int:
        return sum(
            max(0, len(cpu) - n_lags)
            for env, _, cpu in training
            if env.testbed == chain.key[0]
        )

    a_t = [s.true_alarm_rate if s.n_alarms else 1.0 for s in scores]
    under = int(np.argmin(a_t))
    rest = [i for i in range(len(chains)) if i != under]
    under_examples = testbed_examples(chains[under])
    rest_examples = np.array([testbed_examples(chains[i]) for i in rest], dtype=float)
    # Keep the field_coverage utility exercised for the under-performing env.
    field_coverage(chains[under].current.environment, training_envs)
    return CoverageResult(
        under_key=chains[under].key,
        under_a_t=float(a_t[under]),
        rest_a_t_mean=float(np.mean([a_t[i] for i in rest])),
        under_examples=under_examples,
        rest_examples_mean=float(rest_examples.mean()),
        rest_examples_std=float(rest_examples.std()),
        under_coverage_pct=100.0 * under_examples / total_examples,
        rest_coverage_pct_mean=float(100.0 * rest_examples.mean() / total_examples),
    )


# ---------------------------------------------------------------------------
# Figure 6 — embedding PCA
# ---------------------------------------------------------------------------
@dataclass
class Figure6Result:
    """2-d PCA of concatenated environment embeddings."""

    coordinates: np.ndarray  # (n_envs, 2)
    build_types: list[str]
    environments: list[Environment]
    explained_variance_ratio: np.ndarray

    def cluster_ratio(self) -> float:
        """Mean intra-build-type distance over mean inter-type distance.

        Below 1.0 means same-build-type environments sit closer together —
        the clustering Figure 6 shows.
        """
        types = np.array(self.build_types)
        intra, inter = [], []
        n = len(types)
        for i in range(n):
            for j in range(i + 1, n):
                distance = float(np.linalg.norm(self.coordinates[i] - self.coordinates[j]))
                (intra if types[i] == types[j] else inter).append(distance)
        if not intra or not inter:
            raise ValueError("need at least two build types with two members")
        return float(np.mean(intra) / np.mean(inter))


def run_embedding_pca(model: Env2VecRegressor, dataset: TelecomDataset) -> Figure6Result:
    environments = dataset.environments(include_current=False)
    matrix = model.embed_environments(environments)
    pca = PCA(n_components=2)
    coordinates = pca.fit_transform(matrix)
    return Figure6Result(
        coordinates=coordinates,
        build_types=[env.build_type for env in environments],
        environments=environments,
        explained_variance_ratio=pca.explained_variance_ratio_,
    )
