"""Terminal-friendly plot renderers for the reproduced figures.

matplotlib is unavailable offline, so the benchmark harness and example
scripts render figures as ASCII: a shaded heatmap (Figure 1), a labelled
2-d scatter (Figure 6), and step CDF curves (Figure 4). These are shared
utilities — the benches and examples delegate here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_heatmap", "ascii_scatter", "ascii_cdf"]

_SHADES = " .:-=+*#%@"


def ascii_heatmap(matrix: np.ndarray, max_cols: int = 60) -> str:
    """Render |matrix| as shaded characters (rows x columns).

    Values are normalized by the matrix's maximum absolute value; columns
    are subsampled to at most ``max_cols``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.size == 0:
        raise ValueError("heatmap needs a non-empty 2-d matrix")
    if max_cols < 1:
        raise ValueError("max_cols must be >= 1")
    step = max(1, int(np.ceil(matrix.shape[1] / max_cols)))
    sampled = np.abs(matrix[:, ::step])
    peak = sampled.max() or 1.0
    lines = []
    for row in sampled:
        intensity = np.clip((row / peak * (len(_SHADES) - 1)).astype(int), 0, len(_SHADES) - 1)
        lines.append("".join(_SHADES[i] for i in intensity))
    return "\n".join(lines)


def ascii_scatter(
    coordinates: np.ndarray,
    labels: list[str] | None = None,
    rows: int = 22,
    cols: int = 56,
) -> str:
    """Render 2-d points on a character grid, marked by their label's
    first character (or ``*``)."""
    coordinates = np.asarray(coordinates, dtype=np.float64)
    if coordinates.ndim != 2 or coordinates.shape[1] != 2 or len(coordinates) == 0:
        raise ValueError("scatter needs a non-empty (n, 2) coordinate array")
    if labels is not None and len(labels) != len(coordinates):
        raise ValueError("labels must align with coordinates")
    if rows < 2 or cols < 2:
        raise ValueError("grid must be at least 2x2")
    marks = [str(label)[0] if label else "*" for label in labels] if labels else ["*"] * len(coordinates)
    x, y = coordinates[:, 0], coordinates[:, 1]
    xi = ((x - x.min()) / (np.ptp(x) or 1.0) * (cols - 1)).astype(int)
    yi = ((y - y.min()) / (np.ptp(y) or 1.0) * (rows - 1)).astype(int)
    grid = [[" "] * cols for _ in range(rows)]
    for cx, cy, mark in zip(xi, yi, marks):
        grid[rows - 1 - cy][cx] = mark
    return "\n".join("".join(row) for row in grid)


def ascii_cdf(
    curves: dict[str, np.ndarray],
    width: int = 60,
    quantiles: tuple[int, ...] = (10, 25, 50, 75, 90, 100),
) -> str:
    """Render named CDFs as a quantile table plus per-curve sparkbars.

    A true line plot is unreadable in ASCII for overlapping CDFs, so this
    prints the per-curve quantiles (the Figure 4 reading) and a bar of
    each curve's median-to-max span for quick visual comparison.
    """
    if not curves:
        raise ValueError("need at least one curve")
    if width < 10:
        raise ValueError("width must be >= 10")
    peak = max(float(np.max(values)) for values in curves.values()) or 1.0
    lines = [f"{'series':<12}" + "".join(f"{f'p{q}':>8}" for q in quantiles)]
    for name, values in curves.items():
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError(f"curve {name!r} is empty")
        row = f"{name:<12}" + "".join(f"{np.percentile(values, q):8.2f}" for q in quantiles)
        lines.append(row)
    lines.append("")
    for name, values in curves.items():
        median = float(np.percentile(values, 50))
        top = float(np.max(values))
        start = int(median / peak * (width - 1))
        stop = max(start + 1, int(top / peak * (width - 1)))
        bar = " " * start + "#" * (stop - start)
        lines.append(f"{name:<12}|{bar:<{width}}| median..max")
    return "\n".join(lines)
