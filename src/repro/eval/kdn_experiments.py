"""Table 4 experiment driver: method comparison on the KDN datasets (§4.1).

Runs every §4.1.3 method on the three synthetic KDN datasets with the
paper's protocol: hyper-parameters tuned on the validation split, scores
reported on the test split, and neural methods averaged over multiple
seeded runs. ``fast=True`` (the default, used by the benchmark harness)
shrinks the hyper-parameter grids and run counts so the whole comparison
completes in minutes; ``fast=False`` uses the paper's full grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.baselines import FNNRegressor, RFNNRegressor
from ..core.model import Env2VecRegressor
from ..data.kdn import KDN_NAMES, KDNDataset, load_all_kdn
from ..data.windows import build_windows
from ..ml.forest import RandomForestRegressor
from ..ml.model_selection import ValidationGridSearch
from ..ml.preprocessing import StandardScaler
from ..ml.ridge import PAPER_RIDGE_ALPHAS, Ridge, RidgeTS
from ..ml.svr import SVR
from .metrics import RunningAverage, mae, mse

__all__ = ["MethodScore", "KDNComparisonResult", "run_kdn_comparison", "KDN_METHODS"]

KDN_METHODS = ("ridge", "ridge_ts", "rfreg", "svr", "fnn", "rfnn", "rfnn_all", "env2vec")

#: Paper-reported best dropout rates for the FNN baseline (§4.1.3).
PAPER_FNN_DROPOUT = {"snort": 0.0, "firewall": 0.6, "switch": 0.1}
#: Paper-reported best RU-history window for RFNN (§4.1.3).
PAPER_RFNN_N = {"snort": 1, "firewall": 2, "switch": 1}


@dataclass
class MethodScore:
    """Test-set MAE/MSE, with std over runs for stochastic methods."""

    mae_mean: float
    mse_mean: float
    mae_std: float = 0.0
    mse_std: float = 0.0
    mae_runs: list[float] = field(default_factory=list)

    def format(self) -> str:
        if self.mae_std > 0:
            return f"{self.mae_mean:6.2f}±{self.mae_std:4.2f} {self.mse_mean:8.2f}±{self.mse_std:6.2f}"
        return f"{self.mae_mean:6.2f}       {self.mse_mean:8.2f}"


@dataclass
class KDNComparisonResult:
    """scores[dataset][method] -> MethodScore."""

    scores: dict[str, dict[str, MethodScore]]
    n_nn_runs: int

    def best_method(self, dataset: str, metric: str = "mae") -> str:
        attribute = f"{metric}_mean"
        return min(self.scores[dataset], key=lambda m: getattr(self.scores[dataset][m], attribute))

    def table4(self) -> str:
        """Render the Table 4 layout (method rows × dataset MAE/MSE columns)."""
        lines = [
            "Table 4 — MAE / MSE on the three VNF datasets",
            f"{'method':<10}" + "".join(f"{name:^28}" for name in KDN_NAMES),
        ]
        methods = next(iter(self.scores.values())).keys()
        for method in methods:
            row = f"{method:<10}"
            for dataset in KDN_NAMES:
                row += f" {self.scores[dataset][method].format()} "
            lines.append(row)
        return "\n".join(lines)


def _window_split(dataset: KDNDataset, n_lags: int):
    """Window the full series, then map examples back onto Table 3 splits."""
    X, history, y = build_windows(dataset.features, dataset.cpu, n_lags)
    train_idx, val_idx, test_idx = dataset.split()
    # Windowed example i targets raw timestep p = i + n_lags.
    target_steps = np.arange(len(y)) + n_lags
    splits = []
    for raw in (train_idx, val_idx, test_idx):
        members = np.isin(target_steps, raw)
        splits.append(np.flatnonzero(members))
    return X, history, y, splits


def _scaled_splits(dataset: KDNDataset):
    train_idx, val_idx, test_idx = dataset.split()
    scaler = StandardScaler().fit(dataset.features[train_idx])
    X = scaler.transform(dataset.features)
    y = dataset.cpu
    return (
        (X[train_idx], y[train_idx]),
        (X[val_idx], y[val_idx]),
        (X[test_idx], y[test_idx]),
    )


def _score_ridge(dataset: KDNDataset, fast: bool) -> MethodScore:
    (X_train, y_train), (X_val, y_val), (X_test, y_test) = _scaled_splits(dataset)
    search = ValidationGridSearch(Ridge(), {"alpha": list(PAPER_RIDGE_ALPHAS)})
    search.fit(X_train, y_train, X_val, y_val)
    predictions = search.best_estimator_.predict(X_test)
    return MethodScore(mae(y_test, predictions), mse(y_test, predictions))


def _score_ridge_ts(dataset: KDNDataset, fast: bool) -> MethodScore:
    lags = (1, 2) if fast else tuple(range(1, 10))
    best = None
    for n_lags in lags:
        X, history, y, (train, val, test) = _window_split(dataset, n_lags)
        scaler = StandardScaler().fit(X[train])
        Xs = scaler.transform(X)
        search = ValidationGridSearch(RidgeTS(n_lags=n_lags), {"alpha": list(PAPER_RIDGE_ALPHAS)})
        search.fit(
            Xs[train],
            y[train],
            Xs[val],
            y[val],
            fit_kwargs={"history": history[train]},
            score_kwargs={"history": history[val]},
        )
        if best is None or search.best_score_ > best[0]:
            predictions = search.best_estimator_.predict(Xs[test], history=history[test])
            best = (search.best_score_, MethodScore(mae(y[test], predictions), mse(y[test], predictions)))
    return best[1]


def _score_rfreg(dataset: KDNDataset, fast: bool, seed: int) -> MethodScore:
    (X_train, y_train), (X_val, y_val), (X_test, y_test) = _scaled_splits(dataset)
    grid = (
        {"max_depth": [3, 6, 10], "n_estimators": [10, 50]}
        if fast
        else {"max_depth": list(range(3, 11)), "n_estimators": [10, 50, 100, 1000]}
    )
    search = ValidationGridSearch(RandomForestRegressor(random_state=seed), grid)
    search.fit(X_train, y_train, X_val, y_val)
    predictions = search.best_estimator_.predict(X_test)
    return MethodScore(mae(y_test, predictions), mse(y_test, predictions))


def _score_svr(dataset: KDNDataset, fast: bool) -> MethodScore:
    (X_train, y_train), (X_val, y_val), (X_test, y_test) = _scaled_splits(dataset)
    grid = (
        {"alpha": [0.01, 1.0, 100.0], "kernel": ["linear", "rbf"], "epsilon": [0.1, 0.5]}
        if fast
        else {
            "alpha": [0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0],
            "kernel": ["linear", "poly", "rbf"],
            "epsilon": [round(0.1 * i, 1) for i in range(1, 11)],
        }
    )
    search = ValidationGridSearch(SVR(max_iter=100 if fast else 200), grid)
    search.fit(X_train, y_train, X_val, y_val)
    predictions = search.best_estimator_.predict(X_test)
    return MethodScore(mae(y_test, predictions), mse(y_test, predictions))


def _nn_score(run_maes: RunningAverage, run_mses: RunningAverage, maes: list[float]) -> MethodScore:
    return MethodScore(
        mae_mean=run_maes.mean,
        mse_mean=run_mses.mean,
        mae_std=run_maes.std,
        mse_std=run_mses.std,
        mae_runs=maes,
    )


def _score_fnn(dataset: KDNDataset, fast: bool, n_runs: int, seed: int) -> MethodScore:
    (X_train, y_train), (X_val, y_val), (X_test, y_test) = _scaled_splits(dataset)
    hidden = 128 if fast else 1024
    dropout = PAPER_FNN_DROPOUT[dataset.name]
    run_maes, run_mses, maes = RunningAverage(), RunningAverage(), []
    for run in range(n_runs):
        model = FNNRegressor(
            hidden=hidden, dropout=dropout, max_epochs=60 if fast else 150, seed=seed + run
        )
        model.fit(X_train, y_train, val=(X_val, y_val))
        predictions = model.predict(X_test)
        run_maes.update(mae(y_test, predictions))
        run_mses.update(mse(y_test, predictions))
        maes.append(mae(y_test, predictions))
    return _nn_score(run_maes, run_mses, maes)


def _score_rfnn(dataset: KDNDataset, fast: bool, n_runs: int, seed: int) -> MethodScore:
    n_lags = PAPER_RFNN_N[dataset.name]
    X, history, y, (train, val, test) = _window_split(dataset, n_lags)
    run_maes, run_mses, maes = RunningAverage(), RunningAverage(), []
    for run in range(n_runs):
        model = RFNNRegressor(
            n_lags=n_lags,
            fnn_hidden=64,
            max_epochs=60 if fast else 150,
            seed=seed + run,
        )
        model.fit(X[train], history[train], y[train], val=(X[val], history[val], y[val]))
        predictions = model.predict(X[test], history[test])
        run_maes.update(mae(y[test], predictions))
        run_mses.update(mse(y[test], predictions))
        maes.append(mae(y[test], predictions))
    return _nn_score(run_maes, run_mses, maes)


def _pooled_windows(datasets: dict[str, KDNDataset], n_lags: int):
    """Window each dataset and pool, tracking environments and splits."""
    pooled = {"X": [], "history": [], "y": [], "envs": [], "split": []}
    for name in KDN_NAMES:
        dataset = datasets[name]
        X, history, y, (train, val, test) = _window_split(dataset, n_lags)
        membership = np.empty(len(y), dtype=object)
        membership[train], membership[val], membership[test] = "train", "val", "test"
        pooled["X"].append(X)
        pooled["history"].append(history)
        pooled["y"].append(y)
        pooled["envs"].extend([dataset.environment] * len(y))
        pooled["split"].append(membership)
    return (
        np.concatenate(pooled["X"]),
        np.concatenate(pooled["history"]),
        np.concatenate(pooled["y"]),
        pooled["envs"],
        np.concatenate(pooled["split"]),
    )


def _per_dataset_test_scores(
    datasets: dict[str, KDNDataset],
    envs: list,
    split: np.ndarray,
    y: np.ndarray,
    predictions: np.ndarray,
) -> dict[str, tuple[float, float]]:
    out = {}
    env_names = np.array([env.sut for env in envs])
    for name in KDN_NAMES:
        mask = (env_names == f"SUT_{name}") & (split == "test")
        out[name] = (mae(y[mask], predictions[mask]), mse(y[mask], predictions[mask]))
    return out


def _score_pooled_nn(
    datasets: dict[str, KDNDataset],
    use_embeddings: bool,
    fast: bool,
    n_runs: int,
    seed: int,
    n_lags: int = 2,
) -> dict[str, MethodScore]:
    """RFNN_all (no embeddings) or Env2Vec (embeddings): one pooled model."""
    X, history, y, envs, split = _pooled_windows(datasets, n_lags)
    train, val = split == "train", split == "val"
    accumulators = {
        name: (RunningAverage(), RunningAverage(), []) for name in KDN_NAMES
    }
    for run in range(n_runs):
        if use_embeddings:
            model = Env2VecRegressor(
                n_lags=n_lags, max_epochs=60 if fast else 150, batch_size=256, seed=seed + run
            )
            model.fit(
                [envs[i] for i in np.flatnonzero(train)],
                X[train],
                history[train],
                y[train],
                val=([envs[i] for i in np.flatnonzero(val)], X[val], history[val], y[val]),
            )
            predictions = model.predict(envs, X, history)
        else:
            model = RFNNRegressor(
                n_lags=n_lags, max_epochs=60 if fast else 150, batch_size=256, seed=seed + run
            )
            model.fit(X[train], history[train], y[train], val=(X[val], history[val], y[val]))
            predictions = model.predict(X, history)
        for name, (m_mae, m_mse) in _per_dataset_test_scores(
            datasets, envs, split, y, predictions
        ).items():
            accumulators[name][0].update(m_mae)
            accumulators[name][1].update(m_mse)
            accumulators[name][2].append(m_mae)
    return {name: _nn_score(*acc) for name, acc in accumulators.items()}


def run_kdn_comparison(
    seed: int = 0,
    n_nn_runs: int = 3,
    fast: bool = True,
    methods: tuple[str, ...] = KDN_METHODS,
) -> KDNComparisonResult:
    """Run the Table 4 comparison; returns per-dataset per-method scores."""
    unknown = set(methods) - set(KDN_METHODS)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")
    if n_nn_runs < 1:
        raise ValueError("n_nn_runs must be >= 1")
    datasets = load_all_kdn(seed=seed)
    scores: dict[str, dict[str, MethodScore]] = {name: {} for name in KDN_NAMES}

    per_dataset = {
        "ridge": lambda d: _score_ridge(d, fast),
        "ridge_ts": lambda d: _score_ridge_ts(d, fast),
        "rfreg": lambda d: _score_rfreg(d, fast, seed),
        "svr": lambda d: _score_svr(d, fast),
        "fnn": lambda d: _score_fnn(d, fast, n_nn_runs, seed),
        "rfnn": lambda d: _score_rfnn(d, fast, n_nn_runs, seed),
    }
    for method, scorer in per_dataset.items():
        if method not in methods:
            continue
        for name in KDN_NAMES:
            scores[name][method] = scorer(datasets[name])

    if "rfnn_all" in methods:
        for name, score in _score_pooled_nn(datasets, False, fast, n_nn_runs, seed).items():
            scores[name]["rfnn_all"] = score
    if "env2vec" in methods:
        for name, score in _score_pooled_nn(datasets, True, fast, n_nn_runs, seed).items():
            scores[name]["env2vec"] = score

    # Preserve the Table 4 row order.
    ordered = {
        name: {m: scores[name][m] for m in KDN_METHODS if m in scores[name]}
        for name in KDN_NAMES
    }
    return KDNComparisonResult(scores=ordered, n_nn_runs=n_nn_runs)
