"""Hold-out contribution analysis for CF groups and EM fields (§6).

The paper suggests "starting with the complete Env2Vec model and using a
'hold out' strategy to remove a set of CFs or EM to investigate how the
performance changes" as a way to understand input contributions and reduce
model complexity. This module implements exactly that:

- :func:`cf_group_holdout` retrains Env2Vec with a named group of
  contextual-feature columns removed and reports the MAE change on the
  current builds;
- :func:`em_field_holdout` retrains with one EM embedding field dropped
  (e.g. no testbed embedding) and reports the same.

A positive delta (MAE increase) means the held-out inputs carried useful
signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import Env2VecRegressor
from ..data.environment import EM_FIELDS
from ..data.telecom import TelecomDataset
from ..data.windows import build_windows
from .metrics import mae
from .telecom_experiments import DEFAULT_N_LAGS, window_history_pool

__all__ = ["HoldoutResult", "cf_group_holdout", "em_field_holdout", "DEFAULT_CF_GROUPS"]

#: A natural grouping of the telecom corpus' contextual features.
DEFAULT_CF_GROUPS: dict[str, list[str]] = {
    "workload": ["client_ue", "burst_period", "demand_mbps", "active_sessions"],
    "traffic_counters": ["packet_cnt_mod0", "packet_cnt_mod1", "net_tx", "net_rx"],
    "quality": ["success_ratio_mod0", "success_ratio_mod1", "response_code_50x", "jitter_ms"],
}


@dataclass
class HoldoutResult:
    """Baseline vs held-out current-build MAE."""

    baseline_mae: float
    holdout_mae: dict[str, float]

    def delta(self, name: str) -> float:
        """MAE change caused by removing the named group/field."""
        return self.holdout_mae[name] - self.baseline_mae

    def ranking(self) -> list[tuple[str, float]]:
        """Held-out names ordered by importance (largest MAE increase first)."""
        return sorted(
            ((name, self.delta(name)) for name in self.holdout_mae),
            key=lambda item: item[1],
            reverse=True,
        )

    def table(self, title: str) -> str:
        lines = [title, f"  baseline MAE: {self.baseline_mae:.3f}"]
        for name, delta in self.ranking():
            lines.append(
                f"  without {name:<18} MAE={self.holdout_mae[name]:.3f} (Δ{delta:+.3f})"
            )
        return "\n".join(lines)


def _current_build_mae(
    model: Env2VecRegressor,
    dataset: TelecomDataset,
    n_lags: int,
    keep_columns: np.ndarray | None = None,
) -> float:
    scores = []
    for chain in dataset.chains:
        if any(len(e.cpu) <= n_lags for e in chain.executions):
            continue
        features = chain.current.features
        if keep_columns is not None:
            features = features[:, keep_columns]
        X, history, y = build_windows(features, chain.current.cpu, n_lags)
        predictions = model.predict([chain.current.environment] * len(y), X, history)
        scores.append(mae(y, predictions))
    return float(np.mean(scores))


def _train(
    dataset: TelecomDataset,
    n_lags: int,
    fast: bool,
    seed: int,
    keep_columns: np.ndarray | None = None,
    em_fields: tuple[str, ...] = EM_FIELDS,
) -> Env2VecRegressor:
    environments, X, history, y = window_history_pool(
        dataset.history_training_series(), n_lags
    )
    if keep_columns is not None:
        X = X[:, keep_columns]
    model = Env2VecRegressor(
        n_lags=n_lags,
        em_fields=em_fields,
        max_epochs=30 if fast else 120,
        lr=0.004 if fast else 0.002,
        patience=8 if fast else 15,
        batch_size=256,
        dropout=0.05,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(y))
    n_val = max(1, len(y) // 10)
    val_idx, train_idx = order[:n_val], order[n_val:]
    model.fit(
        [environments[i] for i in train_idx],
        X[train_idx],
        history[train_idx],
        y[train_idx],
        val=([environments[i] for i in val_idx], X[val_idx], history[val_idx], y[val_idx]),
    )
    return model


def cf_group_holdout(
    dataset: TelecomDataset,
    groups: dict[str, list[str]] | None = None,
    n_lags: int = DEFAULT_N_LAGS,
    fast: bool = True,
    seed: int = 0,
) -> HoldoutResult:
    """Retrain with each CF group removed; report current-build MAE deltas."""
    groups = groups if groups is not None else DEFAULT_CF_GROUPS
    if not groups:
        raise ValueError("need at least one CF group")
    names = dataset.feature_names
    for group, columns in groups.items():
        unknown = set(columns) - set(names)
        if unknown:
            raise ValueError(f"group {group!r} references unknown features {sorted(unknown)}")

    baseline = _train(dataset, n_lags, fast, seed)
    baseline_mae = _current_build_mae(baseline, dataset, n_lags)

    holdout_mae = {}
    for group, columns in groups.items():
        keep = np.array([i for i, name in enumerate(names) if name not in columns])
        model = _train(dataset, n_lags, fast, seed, keep_columns=keep)
        holdout_mae[group] = _current_build_mae(model, dataset, n_lags, keep_columns=keep)
    return HoldoutResult(baseline_mae=baseline_mae, holdout_mae=holdout_mae)


def em_field_holdout(
    dataset: TelecomDataset,
    fields: tuple[str, ...] = EM_FIELDS,
    n_lags: int = DEFAULT_N_LAGS,
    fast: bool = True,
    seed: int = 0,
) -> HoldoutResult:
    """Retrain with each EM embedding field dropped; report MAE deltas."""
    unknown = set(fields) - set(EM_FIELDS)
    if unknown:
        raise ValueError(f"unknown EM fields {sorted(unknown)}")
    baseline = _train(dataset, n_lags, fast, seed)
    baseline_mae = _current_build_mae(baseline, dataset, n_lags)

    holdout_mae = {}
    for field in fields:
        remaining = tuple(f for f in EM_FIELDS if f != field)
        model = _train(dataset, n_lags, fast, seed, em_fields=remaining)
        holdout_mae[field] = _current_build_mae(model, dataset, n_lags)
    return HoldoutResult(baseline_mae=baseline_mae, holdout_mae=holdout_mae)
