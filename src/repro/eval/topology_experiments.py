"""Detector-vs-topology experiment: the encoder zoo on coupled workloads.

The paper evaluates detection on *independent* build chains (§4.2). In
production, VNFs are deployed as service chains — upstream load propagates
downstream with placement-dependent delay and CPU coupling, so a member's
resource series is no longer explained by its own workload alone, and
upstream fault deltas bleed downstream without ground-truth labels.

:func:`run_encoder_topology_table` re-runs the §4.2.2 alarm protocol for
every registered sequence encoder over both topologies: the same pooled
training, the same :class:`~repro.core.anomaly.ContextualAnomalyDetector`,
only the corpus (independent vs. :func:`~repro.data.generate_chained_telecom`)
and the time-series branch vary. The output is the detector-vs-topology F1
table reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.anomaly import AlarmScore
from ..data.telecom import (
    ChainedTelecomConfig,
    TelecomConfig,
    TelecomDataset,
    generate_chained_telecom,
    generate_telecom,
)
from .telecom_experiments import DEFAULT_N_LAGS, _detect_with_model, train_env2vec_telecom

__all__ = [
    "ENCODER_ZOO",
    "TopologyRow",
    "TopologyComparisonResult",
    "run_encoder_topology_table",
]

#: Encoders compared by the topology experiment (the ISSUE's zoo; the
#: registry may hold more — pass ``encoders=available_encoders()`` for all).
ENCODER_ZOO = ("gru", "lstm", "stacked", "bidirectional", "attention")


@dataclass(frozen=True)
class TopologyRow:
    """One (encoder, topology) cell of the comparison."""

    encoder: str
    topology: str  # "independent" or "chained"
    f1: float
    precision: float  # A_T, the true-alarm rate
    recall: float  # fraction of ground-truth problems hit by an alarm
    n_alarms: int
    problems_detected: int
    total_problems: int


@dataclass
class TopologyComparisonResult:
    """All rows of the detector-vs-topology grid plus run parameters."""

    rows: list[TopologyRow]
    gamma: float
    n_lags: int
    seed: int

    def row(self, encoder: str, topology: str) -> TopologyRow:
        for row in self.rows:
            if row.encoder == encoder and row.topology == topology:
                return row
        raise KeyError(f"no row for encoder={encoder!r} topology={topology!r}")

    def f1_drop(self, encoder: str) -> float:
        """F1 lost when moving the same encoder from independent to chained."""
        return self.row(encoder, "independent").f1 - self.row(encoder, "chained").f1

    def table(self) -> str:
        """The grid as a GitHub-markdown table (encoder rows, topology columns)."""
        encoders = sorted({row.encoder for row in self.rows}, key=self._zoo_order)
        lines = [
            "| encoder | independent F1 | chained F1 | ΔF1 | chained A_T | chained recall |",
            "|---|---|---|---|---|---|",
        ]
        for encoder in encoders:
            independent = self.row(encoder, "independent")
            chained = self.row(encoder, "chained")
            lines.append(
                f"| {encoder} | {independent.f1:.3f} | {chained.f1:.3f} "
                f"| {independent.f1 - chained.f1:+.3f} "
                f"| {chained.precision:.3f} | {chained.recall:.3f} |"
            )
        return "\n".join(lines)

    @staticmethod
    def _zoo_order(name: str) -> tuple[int, str]:
        try:
            return (ENCODER_ZOO.index(name), name)
        except ValueError:
            return (len(ENCODER_ZOO), name)


def _score_dataset(
    dataset: TelecomDataset,
    encoder: str,
    n_lags: int,
    gamma: float,
    fast: bool,
    seed: int,
    **params,
) -> AlarmScore:
    """Train one encoder variant on the pooled history, score focus chains."""
    model = train_env2vec_telecom(
        dataset, n_lags=n_lags, fast=fast, seed=seed, encoder=encoder, **params
    )
    scores = [
        _detect_with_model(model, chain, n_lags, gamma, self_calibrated=False)
        for chain in dataset.focus_chains
    ]
    return sum(scores, AlarmScore(0, 0))


def run_encoder_topology_table(
    independent: TelecomDataset | None = None,
    chained: TelecomDataset | None = None,
    encoders: tuple[str, ...] = ENCODER_ZOO,
    n_lags: int = DEFAULT_N_LAGS,
    gamma: float = 2.0,
    fast: bool = True,
    seed: int = 0,
    **params,
) -> TopologyComparisonResult:
    """F1 per (encoder, topology) over independent and chained corpora.

    When datasets are not supplied, paper-scale defaults are generated
    with matching seeds so the two topologies share every marginal
    except the service-chain coupling. Extra keyword arguments reach
    :class:`~repro.core.model.Env2VecRegressor` (e.g. ``gru_hidden=8``).
    """
    independent = independent if independent is not None else generate_telecom(TelecomConfig())
    chained = (
        chained if chained is not None else generate_chained_telecom(ChainedTelecomConfig())
    )
    rows: list[TopologyRow] = []
    for encoder in encoders:
        for topology, dataset in (("independent", independent), ("chained", chained)):
            score = _score_dataset(dataset, encoder, n_lags, gamma, fast, seed, **params)
            recall = (
                score.problems_detected / score.total_problems if score.total_problems else 0.0
            )
            rows.append(
                TopologyRow(
                    encoder=encoder,
                    topology=topology,
                    f1=score.f1,
                    precision=score.true_alarm_rate,
                    recall=recall,
                    n_alarms=score.n_alarms,
                    problems_detected=score.problems_detected,
                    total_problems=score.total_problems,
                )
            )
    return TopologyComparisonResult(rows=rows, gamma=gamma, n_lags=n_lags, seed=seed)
