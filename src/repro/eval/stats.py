"""Statistical significance testing.

§4.1.2: "we use the paired t-test with a significance of 0.05 to draw
meaningful conclusions when comparing means." The implementation wraps
scipy's paired t-test with the 0.05 convention baked in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["PairedTTestResult", "paired_t_test"]

PAPER_SIGNIFICANCE = 0.05


@dataclass(frozen=True)
class PairedTTestResult:
    statistic: float
    p_value: float
    significant: bool
    mean_difference: float

    def __str__(self) -> str:
        marker = "significant" if self.significant else "not significant"
        return (
            f"t={self.statistic:.3f}, p={self.p_value:.4f} ({marker} at "
            f"{PAPER_SIGNIFICANCE}), mean diff={self.mean_difference:+.4f}"
        )


def paired_t_test(
    scores_a, scores_b, significance: float = PAPER_SIGNIFICANCE
) -> PairedTTestResult:
    """Two-sided paired t-test between matched score samples.

    A significant result with a negative ``mean_difference`` means method A
    scored lower (better, for error metrics) than method B.
    """
    scores_a = np.asarray(scores_a, dtype=np.float64)
    scores_b = np.asarray(scores_b, dtype=np.float64)
    if scores_a.shape != scores_b.shape or scores_a.ndim != 1:
        raise ValueError("need two aligned 1-d score vectors")
    if len(scores_a) < 2:
        raise ValueError("need at least 2 paired samples")
    if not 0 < significance < 1:
        raise ValueError("significance must be in (0, 1)")
    statistic, p_value = stats.ttest_rel(scores_a, scores_b)
    return PairedTTestResult(
        statistic=float(statistic),
        p_value=float(p_value),
        significant=bool(p_value < significance),
        mean_difference=float(np.mean(scores_a - scores_b)),
    )
