"""Evaluation harness: metrics, significance tests, and experiment drivers.

Each table/figure of the paper's evaluation has a driver here that the
``benchmarks/`` harness calls:

- Table 4 — :func:`~repro.eval.kdn_experiments.run_kdn_comparison`
- Figure 1 — :func:`~repro.eval.telecom_experiments.run_figure1`
- Figures 3/4 — :func:`~repro.eval.telecom_experiments.run_chain_mae`
- Table 5 — :func:`~repro.eval.telecom_experiments.run_anomaly_table`
- Table 6 — :func:`~repro.eval.telecom_experiments.run_unseen_table`
- Table 7 — :func:`~repro.eval.telecom_experiments.run_coverage_table`
- Figure 6 — :func:`~repro.eval.telecom_experiments.run_embedding_pca`
- Encoder-vs-topology F1 grid —
  :func:`~repro.eval.topology_experiments.run_encoder_topology_table`
"""

from .holdout import DEFAULT_CF_GROUPS, HoldoutResult, cf_group_holdout, em_field_holdout
from .kdn_experiments import KDN_METHODS, KDNComparisonResult, MethodScore, run_kdn_comparison
from .metrics import RunningAverage, empirical_cdf, mae, mse
from .stats import PairedTTestResult, paired_t_test
from .telecom_experiments import (
    AnomalyRow,
    AnomalyTableResult,
    ChainMAEResult,
    CoverageResult,
    Figure1Result,
    Figure6Result,
    run_anomaly_table,
    run_chain_mae,
    run_coverage_table,
    run_embedding_pca,
    run_figure1,
    run_unseen_table,
    train_env2vec_telecom,
    train_rfnn_all_telecom,
    window_history_pool,
)
from .topology_experiments import (
    ENCODER_ZOO,
    TopologyComparisonResult,
    TopologyRow,
    run_encoder_topology_table,
)

__all__ = [
    "mae",
    "mse",
    "empirical_cdf",
    "RunningAverage",
    "paired_t_test",
    "PairedTTestResult",
    "run_kdn_comparison",
    "HoldoutResult",
    "cf_group_holdout",
    "em_field_holdout",
    "DEFAULT_CF_GROUPS",
    "KDNComparisonResult",
    "MethodScore",
    "KDN_METHODS",
    "run_figure1",
    "Figure1Result",
    "run_chain_mae",
    "ChainMAEResult",
    "run_anomaly_table",
    "run_unseen_table",
    "AnomalyRow",
    "AnomalyTableResult",
    "run_coverage_table",
    "CoverageResult",
    "run_embedding_pca",
    "Figure6Result",
    "train_env2vec_telecom",
    "train_rfnn_all_telecom",
    "window_history_pool",
    "ENCODER_ZOO",
    "TopologyRow",
    "TopologyComparisonResult",
    "run_encoder_topology_table",
]
