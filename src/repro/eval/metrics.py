"""Evaluation metrics (paper §4.1.2 and §4.2.2).

- MAE and MSE for characterization accuracy (Table 4, Figures 3-4).
- A_T / A_F true- and false-alarm rates for anomaly detection
  (Tables 5-6) live in :mod:`repro.core.anomaly` (:class:`AlarmScore`).
- An empirical CDF helper for Figure 4.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "mse", "empirical_cdf", "RunningAverage"]


def _check(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot score empty arrays")
    return y_true, y_pred


def mae(y_true, y_pred) -> float:
    """Mean absolute error: (1/N) Σ |y_i − y'_i|."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mse(y_true, y_pred) -> float:
    """Mean squared error: (1/N) Σ (y_i − y'_i)²."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def empirical_cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Sorted values and their empirical CDF (for Figure 4's MAE CDF)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot build a CDF from zero values")
    ordered = np.sort(values)
    fractions = np.arange(1, len(ordered) + 1) / len(ordered)
    return ordered, fractions


class RunningAverage:
    """Streaming mean/std accumulator (Welford) for multi-run NN scores.

    §4.1.2: "we run up to 10 times the neural network models ... and
    report the average of these 10 runs".
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no values recorded")
        return self._mean

    @property
    def std(self) -> float:
        if self.count == 0:
            raise ValueError("no values recorded")
        if self.count == 1:
            return 0.0
        return float(np.sqrt(self._m2 / self.count))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningAverage(n={self.count}, mean={self._mean:.4f})"
