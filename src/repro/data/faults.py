"""Performance-fault injection for synthetic build chains.

The paper's Table 5 evaluation runs test executions in which "a variety of
different problematic inputs and scenarios (e.g., increased latency on
certain interfaces) are simulated in the network, often overlapping in
time", and notes that "the vast majority of these simulated problems do not
lead to any noticeable impact on the collected metrics". We mirror that:
each injected fault has a kind, an interval, a magnitude, and an
``impactful`` flag — only impactful faults visibly perturb the CPU series
and count as ground-truth performance problems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FAULT_KINDS", "InjectedFault", "apply_fault", "inject_faults"]

#: Supported fault kinds and how they perturb the CPU series.
FAULT_KINDS = ("level_shift", "spike", "drift", "noise_burst")


@dataclass(frozen=True)
class InjectedFault:
    """A simulated problem in a test execution.

    ``magnitude`` is in absolute CPU percentage points. ``impactful``
    faults alter the series; non-impactful ones only exist as simulated
    scenarios with no metric signature (and are *not* ground-truth
    anomalies).
    """

    kind: str
    start: int
    length: int
    magnitude: float
    impactful: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.start < 0 or self.length < 1:
            raise ValueError("fault needs start >= 0 and length >= 1")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")

    @property
    def end(self) -> int:
        """Exclusive end index."""
        return self.start + self.length

    def interval(self) -> tuple[int, int]:
        return (self.start, self.end)

    def overlaps(self, timestep: int) -> bool:
        return self.start <= timestep < self.end


def apply_fault(cpu: np.ndarray, fault: InjectedFault, rng: np.random.Generator) -> np.ndarray:
    """Return a copy of ``cpu`` with the fault's signature applied.

    Non-impactful faults return the series unchanged.
    """
    cpu = np.asarray(cpu, dtype=np.float64).copy()
    if fault.end > len(cpu):
        raise ValueError(f"fault interval {fault.interval()} exceeds series length {len(cpu)}")
    if not fault.impactful:
        return cpu
    window = slice(fault.start, fault.end)
    length = fault.length
    if fault.kind == "level_shift":
        cpu[window] += fault.magnitude
    elif fault.kind == "spike":
        # Triangular spike peaking mid-interval.
        ramp = 1.0 - np.abs(np.linspace(-1.0, 1.0, length))
        cpu[window] += fault.magnitude * ramp
    elif fault.kind == "drift":
        cpu[window] += fault.magnitude * np.linspace(0.0, 1.0, length)
    elif fault.kind == "noise_burst":
        cpu[window] += rng.normal(0.0, fault.magnitude, length)
    return np.clip(cpu, 0.0, 100.0)


def inject_faults(
    cpu: np.ndarray,
    rng: np.random.Generator,
    n_impactful: int,
    n_harmless: int,
    magnitude_range: tuple[float, float] = (8.0, 25.0),
    min_length: int = 5,
    max_length: int = 25,
) -> tuple[np.ndarray, list[InjectedFault]]:
    """Inject a mix of impactful and harmless faults into one CPU series.

    Returns the perturbed series and the fault records (impactful first).
    Fault intervals may overlap, as in the paper's test scenarios.
    """
    if min_length < 1 or max_length < min_length:
        raise ValueError("need 1 <= min_length <= max_length")
    n = len(cpu)
    if n <= max_length:
        raise ValueError(f"series of length {n} too short for faults up to {max_length}")
    faults: list[InjectedFault] = []
    out = np.asarray(cpu, dtype=np.float64).copy()
    for impactful, count in ((True, n_impactful), (False, n_harmless)):
        for _ in range(count):
            length = int(rng.integers(min_length, max_length + 1))
            start = int(rng.integers(0, n - length))
            kind = FAULT_KINDS[rng.integers(0, len(FAULT_KINDS))]
            magnitude = float(rng.uniform(*magnitude_range))
            fault = InjectedFault(
                kind=kind, start=start, length=length, magnitude=magnitude, impactful=impactful
            )
            out = apply_fault(out, fault, rng)
            faults.append(fault)
    return out, faults
