"""Synthetic carrier-grade VNF testing dataset (telecom build chains).

Substitute for the paper's proprietary dataset (§4.2.1): "125 build chains
for multiple combinations of testbed, build type, SUT, and test case ...
nearly one hundred testbeds, several types of SUT, and hundreds of test
cases and builds", sampled at 15-minute intervals.

The generator is built around a **compositional latent-factor model**,
which is exactly the structure environment embeddings can exploit and
per-chain models cannot:

- every EM value (each testbed, SUT, test case, build) carries a latent
  vector; build versions of the same *type* (S/B/D/T) share a type latent
  plus a small per-version perturbation — this is why Figure 6 finds
  embeddings clustering by build type;
- an environment's CPU response function (base load, per-driver weights,
  non-linearity, autoregressive inertia) is a smooth function of its EM
  latents, so environments overlapping in EM values behave similarly
  (§3.1: "some environments will be similar to each other, especially
  those with certain overlap of EM labels");
- contextual features are derived from a per-test-case workload profile
  (daily curve / constant / ramp / bursty), mirroring Table 2's WMs and
  PMs (demand, client UEs, success ratios, 50x response codes, ...).

Ground-truth performance problems are injected into the *current* build of
a configurable set of focus chains (the paper's 11 test executions with 35
confirmed problems); harmless simulated faults with no metric signature
are injected too, as in the paper. One optional *rare testbed* appears in
only a single short-history chain to reproduce the coverage pathology of
Table 7.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .chains import BuildChain, ServiceChainTopology, TestExecution, VNFPlacement
from .environment import Environment, Testbed, random_testbed
from .faults import inject_faults

__all__ = [
    "TelecomConfig",
    "TelecomDataset",
    "generate_telecom",
    "ChainedTelecomConfig",
    "ChainedTelecomDataset",
    "generate_chained_telecom",
    "FEATURE_NAMES",
]

#: Contextual features collected per timestep (Table 2's WMs and PMs).
FEATURE_NAMES = [
    "client_ue",
    "burst_period",
    "demand_mbps",
    "active_sessions",
    "packet_cnt_mod0",
    "packet_cnt_mod1",
    "success_ratio_mod0",
    "success_ratio_mod1",
    "response_code_50x",
    "net_tx",
    "net_rx",
    "jitter_ms",
]

_BUILD_TYPES = ("S", "B", "D", "T")  # stable, beta, debug, test
_BUILD_TYPE_WEIGHTS = (0.40, 0.25, 0.20, 0.15)
_SUT_NAMES = ("SUT_A", "SUT_B", "SUT_D", "SUT_DB", "SUT_F", "SUT_LB")
_TESTCASE_NAMES = (
    "Testcase_Endurance",
    "Testcase_Load",
    "Testcase_Regression",
    "Testcase_Volume",
    "Testcase_Stress",
    "Testcase_Capacity",
    "Testcase_Failover",
    "Testcase_Soak",
    "Testcase_Smoke",
    "Testcase_Upgrade",
    "Testcase_Latency",
    "Testcase_Scale",
)
_PROFILES = ("daily-curve", "constant", "ramp", "burst")


@dataclass
class TelecomConfig:
    """Knobs for the build-chain simulator.

    Defaults approximate the paper's scale (125 chains); tests use much
    smaller configurations.
    """

    n_chains: int = 125
    n_testbeds: int = 25
    builds_per_chain: tuple[int, int] = (3, 5)
    timesteps_per_build: tuple[int, int] = (100, 140)
    latent_dim: int = 4
    n_focus: int = 11  # focus test executions carrying ground-truth problems
    impactful_per_focus: tuple[int, int] = (2, 5)
    harmless_per_focus: tuple[int, int] = (2, 6)
    fault_magnitude: tuple[float, float] = (8.0, 25.0)
    include_rare_testbed: bool = True
    rare_history_timesteps: int = 17  # Table 7: 17 training examples
    noise_std: float = 2.4
    # Response-surface knobs: how strongly EM latents shape the response.
    driver_weight_scale: float = 8.0
    base_spread: float = 7.0
    nonlin_scale: float = 10.0
    saturation_scale: float = 14.0
    amplitude_range: tuple[float, float] = (0.65, 1.25)
    build_effect: float = 1.5
    # Benign load surges in current builds (Table 1's "surge" form factor):
    # the workload legitimately spikes, CPU follows, and only models with
    # contextual features can tell this apart from a performance problem.
    surge_probability: float = 0.7
    surge_factor: tuple[float, float] = (1.2, 1.45)
    # Emit a memory KPI alongside CPU. Debug ("D") builds leak slightly:
    # memory drifts upward over the execution — a second resource with its
    # own failure signature, per §4.2's multi-resource claim.
    emit_memory: bool = False
    ar_range: tuple[float, float] = (0.15, 0.5)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_chains < 1:
            raise ValueError("n_chains must be >= 1")
        if self.n_testbeds < 1:
            raise ValueError("n_testbeds must be >= 1")
        if self.builds_per_chain[0] < 2:
            raise ValueError("chains need at least 2 builds (history + current)")
        if self.builds_per_chain[0] > self.builds_per_chain[1]:
            raise ValueError("builds_per_chain range is inverted")
        if self.timesteps_per_build[0] < 40:
            raise ValueError("need at least 40 timesteps per build")
        if self.n_focus > self.n_chains:
            raise ValueError("n_focus cannot exceed n_chains")
        max_combos = self.n_testbeds * len(_SUT_NAMES) * len(_TESTCASE_NAMES)
        if self.n_chains > max_combos:
            raise ValueError(
                f"n_chains={self.n_chains} exceeds distinct (testbed, sut, testcase) combos ({max_combos})"
            )


@dataclass
class TelecomDataset:
    """The generated corpus of build chains."""

    chains: list[BuildChain]
    feature_names: list[str]
    config: TelecomConfig
    focus_indices: list[int] = field(default_factory=list)
    # Full Table 1 metadata per testbed id: the hardware/virtualization/
    # OS/application labels behind each Testbed_NN abstraction (§3.1).
    testbeds: dict[str, Testbed] = field(default_factory=dict)

    @property
    def n_chains(self) -> int:
        return len(self.chains)

    @property
    def focus_chains(self) -> list[BuildChain]:
        """Chains whose current build is a focus test execution (Table 5)."""
        return [self.chains[i] for i in self.focus_indices]

    def environments(self, include_current: bool = True) -> list[Environment]:
        """All distinct environments, ordered by first appearance."""
        seen: dict[Environment, None] = {}
        for chain in self.chains:
            executions = chain.executions if include_current else chain.history
            for execution in executions:
                seen.setdefault(execution.environment)
        return list(seen)

    def total_timesteps(self) -> int:
        return sum(chain.total_timesteps() for chain in self.chains)

    def total_ground_truth_problems(self) -> int:
        return sum(len(chain.current.impactful_faults) for chain in self.focus_chains)

    def history_training_series(self) -> list[tuple[Environment, np.ndarray, np.ndarray]]:
        """(environment, features, cpu) for every historical execution.

        This is the paper's training pool: current builds are held out.
        """
        out = []
        for chain in self.chains:
            for execution in chain.history:
                out.append((execution.environment, execution.features, execution.cpu))
        return out


def _stable_unit_vectors(names: list[str], dim: int, salt: str) -> dict[str, np.ndarray]:
    """Deterministic latent vector per name (independent of insertion order)."""
    latents = {}
    for name in names:
        digest = hashlib.sha256(f"{salt}:{name}".encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        latents[name] = rng.standard_normal(dim)
    return latents


class _ResponseModel:
    """Maps EM latents to a CPU response function's parameters."""

    def __init__(self, config: "TelecomConfig", rng: np.random.Generator):
        k = config.latent_dim
        self.latent_dim = k
        self.config = config
        # Driver vector has 6 entries (see _drivers): per-driver weights come
        # from a global bilinear map over the summed EM latents.
        self.driver_map = rng.standard_normal((6, 3 * k)) / np.sqrt(3 * k)
        self.base_testbed = rng.standard_normal(k) / np.sqrt(k)
        self.base_build = rng.standard_normal(k) / np.sqrt(k)
        self.nonlin_sut = rng.standard_normal(k) / np.sqrt(k)
        self.nonlin_testcase = rng.standard_normal(k) / np.sqrt(k)
        self.ar_testcase = rng.standard_normal(k) / np.sqrt(k)
        self.sat_sut = rng.standard_normal(k) / np.sqrt(k)
        self.sat_testbed = rng.standard_normal(k) / np.sqrt(k)

    def parameters(
        self,
        testbed_latent: np.ndarray,
        sut_latent: np.ndarray,
        testcase_latent: np.ndarray,
        build_latent: np.ndarray,
    ) -> dict[str, float | np.ndarray]:
        cfg = self.config
        config_build_effect = cfg.build_effect
        z = np.concatenate([testbed_latent, sut_latent, testcase_latent])
        weights = cfg.driver_weight_scale * (self.driver_map @ z)
        base = (
            45.0
            + cfg.base_spread * (self.base_testbed @ testbed_latent)
            + config_build_effect * (self.base_build @ build_latent)
        )
        nonlin = cfg.nonlin_scale / (
            1.0 + np.exp(-(self.nonlin_sut @ sut_latent + self.nonlin_testcase @ testcase_latent))
        )
        lo, hi = cfg.ar_range
        ar = lo + (hi - lo) / (1.0 + np.exp(-(self.ar_testcase @ testcase_latent)))
        # Saturation/threshold regime: extra CPU kicks in sharply once the
        # load driver crosses an environment-specific knee — the "complex
        # resource usage" linear models cannot extrapolate (§4.2.1).
        sat_scale = cfg.saturation_scale / (1.0 + np.exp(-(self.sat_sut @ sut_latent)))
        sat_knee = 0.55 + 0.25 / (1.0 + np.exp(-(self.sat_testbed @ testbed_latent)))
        return {
            "weights": weights,
            "base": float(base),
            "nonlin": float(nonlin),
            "ar": float(ar),
            "sat_scale": float(sat_scale),
            "sat_knee": float(sat_knee),
        }


def _workload_profile(
    testcase: str, n: int, rng: np.random.Generator, amplitude: float = 1.0
) -> np.ndarray:
    """Latent load level u_t in [0, 1], shaped by the test-case profile.

    ``amplitude`` scales the whole profile: test executions are driven at
    different intensities, so an individual chain's history may never
    visit the high-load regime its *current* build explores — while the
    pooled corpus (which Env2Vec trains on) does. This is the data-sharing
    advantage of §2's "natural groupings over the build chains".
    """
    profile = _PROFILES[int(hashlib.sha256(testcase.encode()).digest()[0]) % len(_PROFILES)]
    t = np.arange(n)
    if profile == "daily-curve":
        base = 0.5 + 0.35 * np.sin(2 * np.pi * t / 96.0 - 1.2)  # 96 x 15 min = 1 day
    elif profile == "constant":
        base = np.full(n, 0.55)
    elif profile == "ramp":
        base = 0.2 + 0.6 * t / max(n - 1, 1)
    else:  # burst
        base = np.full(n, 0.3)
        for start in rng.choice(n, size=max(1, n // 40), replace=False):
            base[start : start + int(rng.integers(4, 12))] += rng.uniform(0.3, 0.5)
    wander = np.cumsum(rng.normal(0, 0.01, n))
    shaped = base + 0.05 * rng.standard_normal(n) + wander - wander.mean()
    return np.clip(amplitude * shaped, 0.02, 1.05)


def _apply_benign_surges(
    u: np.ndarray, config: "TelecomConfig", rng: np.random.Generator
) -> np.ndarray:
    """Scale 1-2 windows of the load profile up: a legitimate traffic surge."""
    u = u.copy()
    for _ in range(int(rng.integers(1, 3))):
        length = int(rng.integers(6, 18))
        if len(u) <= length:
            continue
        start = int(rng.integers(0, len(u) - length))
        u[start : start + length] *= rng.uniform(*config.surge_factor)
    return np.clip(u, 0.02, 1.25)


def _contextual_features(u: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Realize Table 2-style WM/PM columns from the latent load u_t."""
    n = len(u)
    demand = 200.0 + 850.0 * u * rng.lognormal(0, 0.04, n)
    errors = rng.poisson(0.4 + 4.0 * u**2).astype(np.float64)
    columns = {
        "client_ue": np.round(40.0 + 220.0 * u + rng.normal(0, 5, n)).clip(1, None),
        "burst_period": rng.lognormal(1.0, 0.25, n),
        "demand_mbps": demand,
        "active_sessions": np.round(100.0 + 900.0 * u + rng.normal(0, 20, n)).clip(1, None),
        "packet_cnt_mod0": demand * 110.0 * rng.lognormal(0, 0.06, n),
        "packet_cnt_mod1": demand * 65.0 * rng.lognormal(0, 0.08, n),
        "success_ratio_mod0": np.clip(0.998 - 0.03 * u**2 + rng.normal(0, 0.002, n), 0.8, 1.0),
        "success_ratio_mod1": np.clip(0.995 - 0.05 * u**2 + rng.normal(0, 0.003, n), 0.8, 1.0),
        "response_code_50x": errors,
        "net_tx": demand * 0.12 * rng.lognormal(0, 0.05, n),
        "net_rx": demand * 0.10 * rng.lognormal(0, 0.05, n),
        "jitter_ms": np.clip(1.0 + 6.0 * u + rng.lognormal(0, 0.3, n), 0.1, None),
    }
    return np.stack([columns[name] for name in FEATURE_NAMES], axis=1)


def _drivers(u: np.ndarray, features: np.ndarray) -> np.ndarray:
    """Normalized workload drivers the CPU response acts on (6 columns).

    All drivers are deterministic functions of the observable features, so
    a sufficiently expressive model can recover the response.
    """
    demand = features[:, FEATURE_NAMES.index("demand_mbps")] / 1000.0
    errors = features[:, FEATURE_NAMES.index("response_code_50x")] / 5.0
    success_drop = (1.0 - features[:, FEATURE_NAMES.index("success_ratio_mod1")]) * 50.0
    tx = features[:, FEATURE_NAMES.index("net_tx")] / 120.0
    jitter = features[:, FEATURE_NAMES.index("jitter_ms")] / 8.0
    return np.stack([demand, demand**2, errors, success_drop, tx, jitter], axis=1)


def _memory_series(
    u: np.ndarray,
    features: np.ndarray,
    params: dict,
    environment_build_type: str,
    noise_std: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Memory (%% of RAM): load-following with slow dynamics; debug builds leak."""
    drivers = _drivers(u, features)
    base = 0.6 * params["base"] + 10.0
    core = base + 0.5 * (drivers @ params["weights"])
    rho = min(0.95, params["ar"] + 0.3)  # memory moves slower than CPU
    mem = np.empty(len(u))
    mem[0] = core[0]
    noise = rng.normal(0, 0.5 * noise_std, len(u))
    for i in range(1, len(u)):
        mem[i] = rho * mem[i - 1] + (1.0 - rho) * core[i] + noise[i]
    if environment_build_type == "D":
        mem = mem + np.linspace(0.0, 6.0, len(u))  # slow leak
    return np.clip(mem, 2.0, 98.0)


def _cpu_series(
    u: np.ndarray,
    features: np.ndarray,
    params: dict,
    noise_std: float,
    rng: np.random.Generator,
) -> np.ndarray:
    drivers = _drivers(u, features)
    load = drivers[:, 0]
    core = (
        params["base"]
        + drivers @ params["weights"]
        + params["nonlin"] * load**2
        + params["sat_scale"] / (1.0 + np.exp(-12.0 * (load - params["sat_knee"])))
    )
    rho = params["ar"]
    cpu = np.empty(len(u))
    cpu[0] = core[0]
    noise = rng.normal(0, noise_std, len(u))
    for i in range(1, len(u)):
        cpu[i] = rho * cpu[i - 1] + (1.0 - rho) * core[i] + noise[i]
    return np.clip(cpu, 2.0, 98.0)


def generate_telecom(config: TelecomConfig | None = None) -> TelecomDataset:
    """Generate the full corpus of build chains."""
    config = config or TelecomConfig()
    rng = np.random.default_rng(config.seed)
    k = config.latent_dim

    testbed_names = [f"Testbed_{i:02d}" for i in range(1, config.n_testbeds + 1)]
    testbed_latents = _stable_unit_vectors(testbed_names, k, "testbed")
    sut_latents = _stable_unit_vectors(list(_SUT_NAMES), k, "sut")
    testcase_latents = _stable_unit_vectors(list(_TESTCASE_NAMES), k, "testcase")
    type_latents = _stable_unit_vectors(list(_BUILD_TYPES), k, "buildtype")
    response = _ResponseModel(config, rng)

    # Sample distinct (testbed, sut, testcase) chain identities.
    combos = [
        (tb, sut, tc)
        for tb in testbed_names
        for sut in _SUT_NAMES
        for tc in _TESTCASE_NAMES
    ]
    chosen = rng.choice(len(combos), size=config.n_chains, replace=False)
    chain_keys = [combos[i] for i in sorted(chosen)]

    build_latents: dict[str, np.ndarray] = {}

    def build_latent(name: str) -> np.ndarray:
        if name not in build_latents:
            build_type = name.removeprefix("Build_")[0]
            digest = hashlib.sha256(f"buildver:{name}".encode()).digest()
            version_rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
            build_latents[name] = type_latents[build_type] + 0.15 * version_rng.standard_normal(k)
        return build_latents[name]

    chains: list[BuildChain] = []
    for testbed, sut, testcase in chain_keys:
        n_builds = int(rng.integers(config.builds_per_chain[0], config.builds_per_chain[1] + 1))
        build_type = rng.choice(_BUILD_TYPES, p=_BUILD_TYPE_WEIGHTS)
        first_version = int(rng.integers(1, 12))
        executions = []
        for b in range(n_builds):
            build_name = f"Build_{build_type}{first_version + b:02d}"
            env = Environment(testbed=testbed, sut=sut, testcase=testcase, build=build_name)
            n_steps = int(rng.integers(config.timesteps_per_build[0], config.timesteps_per_build[1] + 1))
            amplitude = float(rng.uniform(*config.amplitude_range))
            u = _workload_profile(testcase, n_steps, rng, amplitude)
            if b == n_builds - 1 and rng.random() < config.surge_probability:
                u = _apply_benign_surges(u, config, rng)
            features = _contextual_features(u, rng)
            params = response.parameters(
                testbed_latents[testbed],
                sut_latents[sut],
                testcase_latents[testcase],
                build_latent(build_name),
            )
            cpu = _cpu_series(u, features, params, config.noise_std, rng)
            extra = {}
            if config.emit_memory:
                extra["memory"] = _memory_series(
                    u, features, params, env.build_type, config.noise_std, rng
                )
            executions.append(
                TestExecution(
                    environment=env, features=features, cpu=cpu, extra_kpis=extra
                )
            )
        chains.append(BuildChain(executions=executions))

    # Optionally replace one chain with the Table 7 pathology: a testbed
    # seen nowhere else, whose single historical execution is tiny.
    rare_index: int | None = None
    if config.include_rare_testbed:
        rare_index = len(chains) - 1
        donor = chains[rare_index]
        testbed = "Testbed_rare"
        rare_latent = _stable_unit_vectors([testbed], k, "testbed")[testbed]
        _, sut, testcase = donor.key
        build_type = donor.builds[0].removeprefix("Build_")[0]
        executions = []
        for b, n_steps in enumerate((config.rare_history_timesteps, config.timesteps_per_build[0])):
            build_name = f"Build_{build_type}{50 + b:02d}"
            env = Environment(testbed=testbed, sut=sut, testcase=testcase, build=build_name)
            amplitude = float(rng.uniform(*config.amplitude_range))
            u = _workload_profile(testcase, n_steps, rng, amplitude)
            features = _contextual_features(u, rng)
            params = response.parameters(
                rare_latent,
                sut_latents[sut],
                testcase_latents[testcase],
                build_latent(build_name),
            )
            cpu = _cpu_series(u, features, params, config.noise_std, rng)
            extra = {}
            if config.emit_memory:
                extra["memory"] = _memory_series(
                    u, features, params, env.build_type, config.noise_std, rng
                )
            executions.append(
                TestExecution(
                    environment=env, features=features, cpu=cpu, extra_kpis=extra
                )
            )
        chains[rare_index] = BuildChain(executions=executions)

    # Choose the focus executions (the paper's 11) and inject faults into
    # their current builds. The rare chain, when present, is always a focus
    # case so Table 7's under-performing execution exists.
    candidates = [i for i in range(len(chains)) if i != rare_index]
    n_random_focus = config.n_focus - (1 if rare_index is not None else 0)
    focus = sorted(rng.choice(candidates, size=n_random_focus, replace=False).tolist())
    if rare_index is not None:
        focus.append(rare_index)
    for index in focus:
        current = chains[index].current
        n_impactful = int(rng.integers(*config.impactful_per_focus))
        n_harmless = int(rng.integers(*config.harmless_per_focus))
        cpu, faults = inject_faults(
            current.cpu,
            rng,
            n_impactful=n_impactful,
            n_harmless=n_harmless,
            magnitude_range=config.fault_magnitude,
        )
        current.cpu = cpu
        current.faults = faults

    # Materialize the full Table 1 metadata for every testbed that appears.
    testbed_rng = np.random.default_rng(config.seed + 1)
    testbeds = {
        name: random_testbed(name, testbed_rng)
        for name in sorted({chain.key[0] for chain in chains})
    }

    return TelecomDataset(
        chains=chains,
        feature_names=list(FEATURE_NAMES),
        config=config,
        focus_indices=focus,
        testbeds=testbeds,
    )


@dataclass
class ChainedTelecomConfig(TelecomConfig):
    """Knobs for chained-VNF (service chain) workload generation.

    Extends the independent-chain simulator: build chains are grouped
    into service chains of ``chain_length`` members, and each downstream
    member's CPU series is coupled to its upstream neighbor's. The
    coupling is *placement-dependent*: remote hops receive the upstream
    load delayed and damped (queueing/buffering between hosts), while
    co-located hops contend for the same CPUs with no delay. Upstream
    fault deltas therefore bleed downstream **without** downstream
    ground-truth labels — the confound that makes chained topologies a
    harder detection problem than independent ones.
    """

    chain_length: tuple[int, int] = (2, 4)
    colocation_probability: float = 0.35
    delay_range: tuple[int, int] = (1, 4)
    damping_range: tuple[float, float] = (0.55, 0.9)
    queue_gain: float = 0.4
    colocation_coupling: float = 0.3
    latency_gain: float = 0.35

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.chain_length[0] < 2:
            raise ValueError("service chains need at least 2 members")
        if self.chain_length[0] > self.chain_length[1]:
            raise ValueError("chain_length range is inverted")
        if not 0.0 <= self.colocation_probability <= 1.0:
            raise ValueError("colocation_probability must be in [0, 1]")
        if not 1 <= self.delay_range[0] <= self.delay_range[1]:
            raise ValueError("delay_range must satisfy 1 <= lo <= hi")
        if not 0.0 < self.damping_range[0] <= self.damping_range[1] <= 1.0:
            raise ValueError("damping_range must lie in (0, 1]")
        if self.queue_gain < 0 or self.colocation_coupling < 0 or self.latency_gain < 0:
            raise ValueError("coupling gains must be >= 0")


@dataclass
class ChainedTelecomDataset(TelecomDataset):
    """A telecom corpus whose build chains form coupled service chains."""

    topologies: list[ServiceChainTopology] = field(default_factory=list)

    def chained_indices(self) -> set[int]:
        """Indices of build chains that belong to some service chain."""
        return {index for topology in self.topologies for index in topology.members}


def _propagated_load(upstream: np.ndarray, n: int, delay: int) -> np.ndarray:
    """Upstream series as seen ``delay`` steps later, trimmed/held to ``n``."""
    if delay > 0:
        upstream = np.concatenate([np.full(delay, upstream[0]), upstream[:-delay]])
    if len(upstream) >= n:
        return upstream[:n]
    return np.concatenate([upstream, np.full(n - len(upstream), upstream[-1])])


def _couple_downstream(
    down: TestExecution,
    up: TestExecution,
    placement: VNFPlacement,
    config: ChainedTelecomConfig,
) -> None:
    """Mix the upstream member's load into a downstream execution in place.

    The coupling signal is the upstream *CPU deviation from its mean*, so
    upstream fault spikes (which live in CPU, not in the workload
    features) propagate downstream as unlabeled CPU excursions.
    """
    n = down.n_timesteps
    propagated = _propagated_load(up.cpu, n, placement.delay)
    deviation = propagated - propagated.mean()
    gain = config.colocation_coupling if placement.colocated else config.queue_gain
    down.cpu = np.clip(down.cpu + placement.damping * gain * deviation, 2.0, 98.0)
    # Placement-dependent latency: jitter grows with upstream load, more
    # per queueing hop — observable, so context-aware models can adapt.
    jitter_col = FEATURE_NAMES.index("jitter_ms")
    hops = 1 + placement.delay
    jitter_shift = config.latency_gain * hops * np.clip(deviation / 20.0, -1.0, None)
    down.features[:, jitter_col] = np.clip(
        down.features[:, jitter_col] * (1.0 + np.maximum(jitter_shift, 0.0)), 0.1, None
    )


def generate_chained_telecom(config: ChainedTelecomConfig | None = None) -> ChainedTelecomDataset:
    """Generate a corpus whose build chains are wired into service chains.

    Starts from the independent corpus of :func:`generate_telecom` (same
    seed → identical marginals), then groups build chains into service
    chains and rewrites every downstream execution with its upstream
    coupling, position by position, so load (and fault) deltas compound
    along the chain. The rare-testbed chain, when present, stays
    independent — its Table 7 pathology must not be confounded.
    """
    config = config or ChainedTelecomConfig()
    base = generate_telecom(config)
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 0x5EC]))

    rare_index = len(base.chains) - 1 if config.include_rare_testbed else None
    eligible = [i for i in range(len(base.chains)) if i != rare_index]
    order = [eligible[i] for i in rng.permutation(len(eligible))]

    topologies: list[ServiceChainTopology] = []
    cursor = 0
    while len(order) - cursor >= config.chain_length[0]:
        length = int(rng.integers(config.chain_length[0], config.chain_length[1] + 1))
        length = min(length, len(order) - cursor)
        members = tuple(order[cursor : cursor + length])
        cursor += length
        placements = [
            VNFPlacement(position=0, testbed=base.chains[members[0]].key[0])
        ]
        for position in range(1, length):
            colocated = bool(rng.random() < config.colocation_probability)
            placements.append(
                VNFPlacement(
                    position=position,
                    testbed=base.chains[members[position]].key[0],
                    colocated=colocated,
                    delay=0 if colocated else int(rng.integers(*config.delay_range)),
                    damping=float(rng.uniform(*config.damping_range)),
                )
            )
        topologies.append(
            ServiceChainTopology(
                name=f"service_chain_{len(topologies):03d}",
                members=members,
                placements=tuple(placements),
            )
        )

    for topology in topologies:
        for position in range(1, len(topology)):
            up_chain = base.chains[topology.members[position - 1]]
            down_chain = base.chains[topology.members[position]]
            placement = topology.placements[position]
            # Pair executions from the most recent backwards so the
            # current builds (the detection targets) are always coupled.
            n_pairs = min(len(up_chain), len(down_chain))
            for offset in range(1, n_pairs + 1):
                _couple_downstream(
                    down_chain.executions[-offset],
                    up_chain.executions[-offset],
                    placement,
                    config,
                )

    return ChainedTelecomDataset(
        chains=base.chains,
        feature_names=base.feature_names,
        config=config,
        focus_indices=base.focus_indices,
        testbeds=base.testbeds,
        topologies=topologies,
    )
