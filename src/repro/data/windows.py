"""Sliding-window construction for the RU-history input.

Env2Vec conditions the prediction of ``y_p`` on the ``n`` previous
resource-utilization values ``{y_{p-n}, ..., y_{p-1}}`` (paper §1, §3.1 —
"GRUs for incorporating resource history"). These helpers turn a time
series into aligned (features, history window, target) training examples;
the first ``n`` timesteps of each series are dropped because they lack a
full history.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_windows", "build_windows_multi"]


def build_windows(
    features: np.ndarray, target: np.ndarray, n_lags: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Align one series into supervised examples.

    Returns ``(X, history, y)`` where, for output row i (source timestep
    ``p = i + n_lags``):

    - ``X[i]`` are the contextual features at timestep p,
    - ``history[i] = [y_{p-n}, ..., y_{p-1}]`` (oldest first, the order the
      GRU consumes), and
    - ``y[i] = y_p``.
    """
    features = np.asarray(features, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if n_lags < 1:
        raise ValueError("n_lags must be >= 1")
    if features.ndim != 2:
        raise ValueError(f"features must be 2-d; got shape {features.shape}")
    if target.ndim != 1:
        raise ValueError(f"target must be 1-d; got shape {target.shape}")
    if len(features) != len(target):
        raise ValueError(f"features and target disagree on length: {len(features)} vs {len(target)}")
    if len(target) <= n_lags:
        raise ValueError(f"series of length {len(target)} too short for n_lags={n_lags}")
    n_out = len(target) - n_lags
    # Row i gathers exactly target[i : i + n_lags]: one vectorized copy
    # with the same bytes as stacking the per-row slices it replaces.
    history = target[np.arange(n_out)[:, None] + np.arange(n_lags)]
    return features[n_lags:], history, target[n_lags:]


def build_windows_multi(
    series: list[tuple[np.ndarray, np.ndarray]], n_lags: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Window many independent series and concatenate the results.

    Windows never straddle series boundaries — each test execution is its
    own sequence (§5: "a non-continuous set of time series for each test
    execution"). Returns ``(X, history, y, series_ids)`` where
    ``series_ids[i]`` is the index of the source series for example i.
    """
    if not series:
        raise ValueError("need at least one series")
    xs, hists, ys, ids = [], [], [], []
    for index, (features, target) in enumerate(series):
        X, history, y = build_windows(features, target, n_lags)
        xs.append(X)
        hists.append(history)
        ys.append(y)
        ids.append(np.full(len(y), index, dtype=np.int64))
    return (
        np.concatenate(xs, axis=0),
        np.concatenate(hists, axis=0),
        np.concatenate(ys, axis=0),
        np.concatenate(ids, axis=0),
    )
