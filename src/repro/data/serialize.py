"""Corpus (de)serialization: persist a TelecomDataset to one ``.npz`` file.

An open-source release of a paper's system ships its datasets in a
loadable form. Synthetic corpora here are cheap to regenerate, but
persistence still matters: it pins the exact corpus an experiment ran on
(generator defaults may evolve) and lets external tools consume the data.

Layout inside the archive: a JSON manifest (config, chain structure, fault
records) plus one float array per execution series.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from .chains import BuildChain, ServiceChainTopology, TestExecution, VNFPlacement
from .environment import Environment, Testbed
from .faults import InjectedFault
from .telecom import (
    ChainedTelecomConfig,
    ChainedTelecomDataset,
    TelecomConfig,
    TelecomDataset,
)

__all__ = ["save_dataset", "load_dataset", "dataset_to_bytes", "dataset_from_bytes"]

_MANIFEST_KEY = "__manifest__"
_FORMAT_VERSION = 1

#: Dataset/config class pairs by manifest tag. Chained corpora round-trip
#: through the same archive layout plus a "topologies" manifest section.
_DATASET_KINDS: dict[str, tuple[type, type]] = {
    "telecom": (TelecomDataset, TelecomConfig),
    "chained_telecom": (ChainedTelecomDataset, ChainedTelecomConfig),
}


def dataset_to_bytes(dataset: TelecomDataset) -> bytes:
    """Serialize a corpus into npz bytes."""
    arrays: dict[str, np.ndarray] = {}
    chains_manifest = []
    for chain_index, chain in enumerate(dataset.chains):
        executions_manifest = []
        for execution_index, execution in enumerate(chain.executions):
            prefix = f"c{chain_index:04d}_e{execution_index:02d}"
            arrays[f"{prefix}_features"] = execution.features
            arrays[f"{prefix}_cpu"] = execution.cpu
            for kpi_name, series in execution.extra_kpis.items():
                arrays[f"{prefix}_kpi_{kpi_name}"] = series
            executions_manifest.append(
                {
                    "environment": execution.environment.as_dict(),
                    "faults": [asdict(fault) for fault in execution.faults],
                    "extra_kpis": sorted(execution.extra_kpis),
                }
            )
        chains_manifest.append({"executions": executions_manifest})
    kind = "chained_telecom" if isinstance(dataset, ChainedTelecomDataset) else "telecom"
    manifest = {
        "format_version": _FORMAT_VERSION,
        "kind": kind,
        "config": asdict(dataset.config),
        "feature_names": dataset.feature_names,
        "focus_indices": list(dataset.focus_indices),
        "testbeds": {
            name: testbed.labels for name, testbed in dataset.testbeds.items()
        },
        "chains": chains_manifest,
    }
    if kind == "chained_telecom":
        manifest["topologies"] = [
            {
                "name": topology.name,
                "members": list(topology.members),
                "placements": [asdict(placement) for placement in topology.placements],
            }
            for topology in dataset.topologies
        ]
    arrays[_MANIFEST_KEY] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def dataset_from_bytes(blob: bytes) -> TelecomDataset:
    """Inverse of :func:`dataset_to_bytes`."""
    with np.load(io.BytesIO(blob)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    manifest_raw = arrays.pop(_MANIFEST_KEY, None)
    if manifest_raw is None:
        raise ValueError("blob is not a serialized TelecomDataset (missing manifest)")
    manifest = json.loads(manifest_raw.tobytes().decode("utf-8"))
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported corpus format version {manifest.get('format_version')!r}"
        )
    kind = manifest.get("kind", "telecom")
    if kind not in _DATASET_KINDS:
        raise ValueError(f"unknown dataset kind {kind!r}")
    dataset_cls, config_cls = _DATASET_KINDS[kind]
    config_dict = manifest["config"]
    # Tuples arrive as lists from JSON; restore them for the config class.
    for key, value in config_dict.items():
        if isinstance(value, list):
            config_dict[key] = tuple(value)
    config = config_cls(**config_dict)

    chains = []
    for chain_index, chain_manifest in enumerate(manifest["chains"]):
        executions = []
        for execution_index, execution_manifest in enumerate(chain_manifest["executions"]):
            prefix = f"c{chain_index:04d}_e{execution_index:02d}"
            extra = {
                name: arrays[f"{prefix}_kpi_{name}"]
                for name in execution_manifest["extra_kpis"]
            }
            executions.append(
                TestExecution(
                    environment=Environment(**execution_manifest["environment"]),
                    features=arrays[f"{prefix}_features"],
                    cpu=arrays[f"{prefix}_cpu"],
                    faults=[InjectedFault(**f) for f in execution_manifest["faults"]],
                    extra_kpis=extra,
                )
            )
        chains.append(BuildChain(executions=executions))
    testbeds = {
        name: Testbed(testbed_id=name, labels=dict(labels))
        for name, labels in manifest.get("testbeds", {}).items()
    }
    extra_fields = {}
    if kind == "chained_telecom":
        extra_fields["topologies"] = [
            ServiceChainTopology(
                name=entry["name"],
                members=tuple(entry["members"]),
                placements=tuple(
                    VNFPlacement(**placement) for placement in entry["placements"]
                ),
            )
            for entry in manifest.get("topologies", [])
        ]
    return dataset_cls(
        chains=chains,
        feature_names=list(manifest["feature_names"]),
        config=config,
        focus_indices=list(manifest["focus_indices"]),
        testbeds=testbeds,
        **extra_fields,
    )


def save_dataset(dataset: TelecomDataset, path: str | Path) -> int:
    """Write the corpus to ``path``; returns the file size in bytes."""
    blob = dataset_to_bytes(dataset)
    Path(path).write_bytes(blob)
    return len(blob)


def load_dataset(path: str | Path) -> TelecomDataset:
    """Read a corpus previously written by :func:`save_dataset`."""
    return dataset_from_bytes(Path(path).read_bytes())
