"""A minimal column-oriented dataframe (pandas substitute).

The prediction pipeline (paper Figure 2, step 3) "constructs a dataframe
from this monitoring data, appending the relevant EM" — Table 2 shows the
layout: contextual features (WMs + PMs), environment metadata columns, the
RU-history lists, and the observed RU. pandas is unavailable offline, so
:class:`Frame` provides the small slice of functionality the workflow
needs: typed columns, row/column selection, filtering, and horizontal
concatenation.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Frame"]


class Frame:
    """Immutable-length columnar table. Columns are numpy arrays."""

    def __init__(self, columns: Mapping[str, Sequence] | None = None):
        self._columns: dict[str, np.ndarray] = {}
        self._length = 0
        if columns:
            for name, values in columns.items():
                self[name] = values

    # -- core accessors ---------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return self._length

    @property
    def shape(self) -> tuple[int, int]:
        return (self._length, len(self._columns))

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; available: {self.columns}") from None

    def __setitem__(self, name: str, values: Sequence) -> None:
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"column {name!r} must be 1-dimensional; got shape {array.shape}")
        if self._columns and len(array) != self._length:
            raise ValueError(
                f"column {name!r} has length {len(array)}; frame has {self._length} rows"
            )
        if not self._columns:
            self._length = len(array)
        self._columns[name] = array

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def row(self, index: int) -> dict:
        """One row as a dict (scalar python values)."""
        if not -self._length <= index < self._length:
            raise IndexError(f"row {index} out of range for {self._length} rows")
        return {name: column[index].item() if column[index].shape == () else column[index]
                for name, column in self._columns.items()}

    # -- selection ---------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Frame":
        """A new frame with only the given columns, in the given order."""
        return Frame({name: self[name] for name in names})

    def take(self, indices: np.ndarray) -> "Frame":
        """A new frame with rows selected by integer indices or bool mask."""
        indices = np.asarray(indices)
        return Frame({name: column[indices] for name, column in self._columns.items()})

    def filter(self, predicate: Callable[[dict], bool]) -> "Frame":
        """Rows for which ``predicate(row_dict)`` is true."""
        mask = np.array([predicate(self.row(i)) for i in range(self._length)], dtype=bool)
        return self.take(mask)

    def head(self, n: int = 5) -> "Frame":
        return self.take(np.arange(min(n, self._length)))

    # -- combination --------------------------------------------------------
    def with_columns(self, columns: Mapping[str, Sequence]) -> "Frame":
        """A new frame with extra/overridden columns."""
        merged = dict(self._columns)
        out = Frame(merged)
        for name, values in columns.items():
            out[name] = values
        return out

    @staticmethod
    def concat_rows(frames: Sequence["Frame"]) -> "Frame":
        """Stack frames vertically; all must share the same columns."""
        if not frames:
            raise ValueError("need at least one frame")
        names = frames[0].columns
        for frame in frames[1:]:
            if frame.columns != names:
                raise ValueError(f"column mismatch: {frame.columns} vs {names}")
        return Frame({name: np.concatenate([f[name] for f in frames]) for name in names})

    # -- conversion -----------------------------------------------------------
    def to_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Numeric columns stacked into a float (n_rows, n_cols) matrix."""
        names = names if names is not None else self.columns
        arrays = []
        for name in names:
            column = self[name]
            if not np.issubdtype(column.dtype, np.number):
                raise TypeError(f"column {name!r} is not numeric (dtype {column.dtype})")
            arrays.append(column.astype(np.float64))
        return np.stack(arrays, axis=1) if arrays else np.empty((self._length, 0))

    def to_dict(self) -> dict[str, np.ndarray]:
        return dict(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame(rows={self._length}, columns={self.columns})"
