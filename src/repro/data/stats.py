"""Corpus statistics: EM coverage and balance diagnostics.

§6 recommends "test case executions by testing engineers to be as balanced
as possible, especially in terms of the underlying testbeds", because EM
values with thin coverage get poorly trained embeddings (Table 7). This
module computes the statistics an engineer would check before trusting a
trained model: per-field value coverage (executions and timesteps), the
corpus totals, and a balance score.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .environment import EM_FIELDS
from .telecom import TelecomDataset

__all__ = ["FieldCoverage", "CorpusStats", "corpus_stats"]


@dataclass
class FieldCoverage:
    """Coverage of one EM field's values across the training pool."""

    field: str
    executions: dict[str, int]
    timesteps: dict[str, int]

    @property
    def n_values(self) -> int:
        return len(self.executions)

    def thinnest(self, k: int = 3) -> list[tuple[str, int]]:
        """The k values with the fewest training timesteps."""
        return sorted(self.timesteps.items(), key=lambda item: item[1])[:k]

    def balance(self) -> float:
        """Normalized entropy of the timestep distribution in [0, 1].

        1.0 means perfectly balanced coverage; values near 0 mean a few EM
        values dominate (the §6 warning sign).
        """
        counts = np.array(list(self.timesteps.values()), dtype=np.float64)
        if len(counts) <= 1:
            return 1.0
        p = counts / counts.sum()
        entropy = -(p * np.log(p)).sum()
        return float(entropy / np.log(len(counts)))


@dataclass
class CorpusStats:
    """Corpus-wide totals plus per-field coverage."""

    n_chains: int
    n_environments: int
    n_executions: int
    n_timesteps: int
    n_problem_executions: int
    fields: dict[str, FieldCoverage]

    def table(self) -> str:
        lines = [
            "Corpus statistics",
            f"  chains={self.n_chains}  environments={self.n_environments}  "
            f"executions={self.n_executions}  timesteps={self.n_timesteps:,}  "
            f"problem executions={self.n_problem_executions}",
        ]
        for field in EM_FIELDS:
            coverage = self.fields[field]
            thinnest = ", ".join(f"{v}({n})" for v, n in coverage.thinnest(2))
            lines.append(
                f"  {field:<9} values={coverage.n_values:<4} "
                f"balance={coverage.balance():.2f}  thinnest: {thinnest}"
            )
        return "\n".join(lines)


def corpus_stats(dataset: TelecomDataset, training_only: bool = True) -> CorpusStats:
    """Compute coverage statistics over a corpus.

    With ``training_only`` (the default) only historical executions count —
    the paper's training pool; otherwise current builds are included.
    """
    executions = []
    for chain in dataset.chains:
        executions.extend(chain.history if training_only else chain.executions)
    if not executions:
        raise ValueError("corpus has no executions to analyse")

    fields: dict[str, FieldCoverage] = {}
    for field in EM_FIELDS:
        execution_counts: Counter[str] = Counter()
        timestep_counts: Counter[str] = Counter()
        for execution in executions:
            value = getattr(execution.environment, field)
            execution_counts[value] += 1
            timestep_counts[value] += execution.n_timesteps
        fields[field] = FieldCoverage(
            field=field,
            executions=dict(execution_counts),
            timesteps=dict(timestep_counts),
        )
    return CorpusStats(
        n_chains=dataset.n_chains,
        n_environments=len({e.environment for e in executions}),
        n_executions=len(executions),
        n_timesteps=sum(e.n_timesteps for e in executions),
        n_problem_executions=sum(1 for e in executions if e.has_performance_problem),
        fields=fields,
    )
