"""Datasets and data structures: EM schema, build chains, synthetic corpora.

- :mod:`~repro.data.environment` — the Table 1 EM schema and the 4-tuple
  environment abstraction.
- :mod:`~repro.data.chains` — test executions and build chains.
- :mod:`~repro.data.frame` — a minimal columnar dataframe (Table 2).
- :mod:`~repro.data.windows` — RU-history sliding windows.
- :mod:`~repro.data.kdn` — synthetic KDN benchmark datasets (§4.1).
- :mod:`~repro.data.telecom` — the synthetic carrier-grade testing corpus
  (§4.2) with fault injection (:mod:`~repro.data.faults`).
"""

from .chains import BuildChain, ServiceChainTopology, TestExecution, VNFPlacement
from .environment import EM_FIELDS, TABLE1_SCHEMA, Environment, Testbed, random_testbed
from .faults import FAULT_KINDS, InjectedFault, apply_fault, inject_faults
from .frame import Frame
from .kdn import KDN_CPU_SCALE, KDN_NAMES, KDN_SPLITS, KDNDataset, load_all_kdn, load_kdn
from .stats import CorpusStats, FieldCoverage, corpus_stats
from .serialize import dataset_from_bytes, dataset_to_bytes, load_dataset, save_dataset
from .telecom import (
    FEATURE_NAMES,
    ChainedTelecomConfig,
    ChainedTelecomDataset,
    TelecomConfig,
    TelecomDataset,
    generate_chained_telecom,
    generate_telecom,
)
from .windows import build_windows, build_windows_multi

__all__ = [
    "Environment",
    "Testbed",
    "random_testbed",
    "EM_FIELDS",
    "TABLE1_SCHEMA",
    "TestExecution",
    "BuildChain",
    "Frame",
    "build_windows",
    "build_windows_multi",
    "KDNDataset",
    "load_kdn",
    "load_all_kdn",
    "KDN_NAMES",
    "KDN_SPLITS",
    "KDN_CPU_SCALE",
    "InjectedFault",
    "apply_fault",
    "inject_faults",
    "FAULT_KINDS",
    "TelecomConfig",
    "TelecomDataset",
    "generate_telecom",
    "ChainedTelecomConfig",
    "ChainedTelecomDataset",
    "generate_chained_telecom",
    "ServiceChainTopology",
    "VNFPlacement",
    "save_dataset",
    "load_dataset",
    "dataset_to_bytes",
    "dataset_from_bytes",
    "corpus_stats",
    "CorpusStats",
    "FieldCoverage",
    "FEATURE_NAMES",
]
