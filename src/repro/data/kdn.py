"""Synthetic KDN benchmark datasets (substitute for knowledgedefinednetworking.org).

The paper's §4.1 evaluates on the public KDN datasets [26]: CPU utilization
of three VNFs (Snort IDS, an SDN firewall, an SDN switch) under replayed
DPI traffic described by 86 features in 20-second batches. Those datasets
are not available offline, so this module generates synthetic equivalents
that preserve the properties the experiments rely on:

- **split sizes match Table 3 exactly** (Snort 900/259/200, Switch
  900/141/150, Firewall 555/100/100);
- **CPU scale matches the Table 4 caption** (Snort 196±23, Firewall
  384±46, Switch 448±46);
- **86 correlated traffic features** (packet/byte counts, IP/port
  cardinalities, 5-tuple flows, per-protocol shares, plus noise columns);
- **per-VNF response shapes differ**, so pooling all three VNFs without
  environment information (RFNN_all) hurts, while per-VNF models and
  Env2Vec-with-embeddings do well;
- the **Switch** response is predominantly linear with a strong
  autoregressive component — the regime where the paper found Ridge_ts to
  be the best method (Table 4).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from .environment import Environment

__all__ = ["KDNDataset", "KDN_SPLITS", "KDN_CPU_SCALE", "load_kdn", "load_all_kdn", "KDN_NAMES"]

KDN_NAMES = ("snort", "switch", "firewall")

#: Table 3 — (train, validation, test) sizes per dataset.
KDN_SPLITS: dict[str, tuple[int, int, int]] = {
    "snort": (900, 259, 200),
    "switch": (900, 141, 150),
    "firewall": (555, 100, 100),
}

#: Table 4 caption — (mean, std) of CPU utilization per dataset.
KDN_CPU_SCALE: dict[str, tuple[float, float]] = {
    "snort": (196.0, 23.0),
    "firewall": (384.0, 46.0),
    "switch": (448.0, 46.0),
}

N_TRAFFIC_FEATURES = 86

_PROTOCOLS = ("tcp", "udp", "icmp", "http", "https", "dns", "sip", "rtp")
_PACKET_BUCKETS = ("64", "128", "256", "512", "1024", "1514")


def _feature_names() -> list[str]:
    """The 86 traffic feature names (packets, bytes, cardinalities, shares)."""
    names = [
        "packets_total",
        "bytes_total",
        "unique_src_ips",
        "unique_dst_ips",
        "unique_src_ports",
        "unique_dst_ports",
        "flows_5tuple",
        "new_flows",
        "expired_flows",
        "avg_packet_size",
        "avg_flow_duration",
        "syn_count",
        "fin_count",
        "rst_count",
        "retransmissions",
        "fragmented_packets",
    ]
    for protocol in _PROTOCOLS:
        names.append(f"packets_{protocol}")
        names.append(f"bytes_{protocol}")
        names.append(f"flows_{protocol}")
    for bucket in _PACKET_BUCKETS:
        names.append(f"pkt_len_le_{bucket}")
    for i in range(N_TRAFFIC_FEATURES - len(names) - 16):
        names.append(f"counter_{i:02d}")
    for i in range(16):
        names.append(f"noise_{i:02d}")
    assert len(names) == N_TRAFFIC_FEATURES, len(names)
    return names


@dataclass
class KDNDataset:
    """One synthetic KDN VNF dataset with fixed Table 3 splits."""

    name: str
    features: np.ndarray  # (n, 86)
    cpu: np.ndarray  # (n,)
    feature_names: list[str]
    environment: Environment

    @property
    def n_samples(self) -> int:
        return len(self.cpu)

    def split(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(train, val, test) index arrays per Table 3. Contiguous in time."""
        train, val, test = KDN_SPLITS[self.name]
        indices = np.arange(self.n_samples)
        return (
            indices[:train],
            indices[train : train + val],
            indices[train + val : train + val + test],
        )


def _traffic_process(n: int, rng: np.random.Generator) -> np.ndarray:
    """Latent traffic intensity: AR(1) + diurnal cycle + occasional bursts."""
    t = np.arange(n)
    diurnal = 0.3 * np.sin(2 * np.pi * t / 180.0) + 0.15 * np.sin(2 * np.pi * t / 47.0)
    ar = np.empty(n)
    ar[0] = 0.0
    noise = rng.normal(0, 0.18, n)
    for i in range(1, n):
        ar[i] = 0.85 * ar[i - 1] + noise[i]
    bursts = np.zeros(n)
    for start in rng.choice(n, size=max(1, n // 150), replace=False):
        length = int(rng.integers(5, 20))
        bursts[start : start + length] += rng.uniform(0.5, 1.2)
    intensity = 1.0 + 0.5 * (diurnal + ar) + bursts
    return np.clip(intensity, 0.05, None)


def _mix_process(n: int, rng: np.random.Generator) -> np.ndarray:
    """Second latent dimension: the traffic *mix* drifts over time in [0, 1].

    A high value means small-packet, connection-heavy traffic (DNS/SIP-ish);
    a low value means bulk transfers. CPU cost depends on the mix
    non-linearly, which makes the response surface genuinely
    two-dimensional rather than a function of intensity alone.
    """
    drift = np.empty(n)
    drift[0] = 0.0
    noise = rng.normal(0, 0.06, n)
    for i in range(1, n):
        drift[i] = 0.95 * drift[i - 1] + noise[i]
    return 1.0 / (1.0 + np.exp(-1.5 * drift))


def _traffic_features(n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate the 86-column feature matrix; returns (features, intensity, mix)."""
    intensity = _traffic_process(n, rng)
    mix = _mix_process(n, rng)
    packets = 1e4 * intensity * rng.lognormal(0, 0.05, n)
    # Connection-heavy mixes carry smaller packets.
    avg_size = (900.0 - 550.0 * mix) * rng.lognormal(0, 0.05, n)
    avg_size = avg_size.clip(80, 1500)
    bytes_total = packets * avg_size
    flows = 40.0 * np.sqrt(packets) * (0.6 + 0.9 * mix) * rng.lognormal(0, 0.08, n)
    columns: dict[str, np.ndarray] = {
        "packets_total": packets,
        "bytes_total": bytes_total,
        "unique_src_ips": 5.0 * packets**0.45 * rng.lognormal(0, 0.1, n),
        "unique_dst_ips": 3.0 * packets**0.4 * rng.lognormal(0, 0.1, n),
        "unique_src_ports": 8.0 * packets**0.5 * rng.lognormal(0, 0.1, n),
        "unique_dst_ports": 2.0 * packets**0.35 * rng.lognormal(0, 0.1, n),
        "flows_5tuple": flows,
        "new_flows": 0.3 * flows * rng.lognormal(0, 0.2, n),
        "expired_flows": 0.28 * flows * rng.lognormal(0, 0.2, n),
        "avg_packet_size": avg_size,
        "avg_flow_duration": rng.lognormal(2.5, 0.3, n),
        "syn_count": 0.05 * packets * (0.5 + mix) * rng.lognormal(0, 0.15, n),
        "fin_count": 0.045 * packets * rng.lognormal(0, 0.15, n),
        "rst_count": 0.002 * packets * rng.lognormal(0, 0.5, n),
        "retransmissions": 0.01 * packets * rng.lognormal(0, 0.4, n),
        "fragmented_packets": 0.001 * packets * rng.lognormal(0, 0.6, n),
    }
    base_shares = rng.dirichlet(np.full(len(_PROTOCOLS), 4.0))
    # The mix shifts weight between bulk protocols (first half) and
    # connection-heavy ones (second half) over time.
    half = len(_PROTOCOLS) // 2
    for i, protocol in enumerate(_PROTOCOLS):
        lean = (1.4 - 0.8 * mix) if i < half else (0.6 + 0.8 * mix)
        wobble = rng.lognormal(0, 0.1, n)
        share = base_shares[i] * lean
        columns[f"packets_{protocol}"] = packets * share * wobble
        columns[f"bytes_{protocol}"] = bytes_total * share * wobble
        columns[f"flows_{protocol}"] = flows * share * rng.lognormal(0, 0.15, n)
    bucket_shares = rng.dirichlet(np.full(len(_PACKET_BUCKETS), 3.0))
    for bucket, share in zip(_PACKET_BUCKETS, bucket_shares):
        columns[f"pkt_len_le_{bucket}"] = packets * share * rng.lognormal(0, 0.12, n)
    names = _feature_names()
    remaining = [name for name in names if name not in columns]
    for name in remaining:
        if name.startswith("noise_"):
            columns[name] = rng.normal(0, 1, n)
        else:
            # Generic counters loosely correlated with traffic intensity.
            weight = rng.uniform(0.2, 1.5)
            columns[name] = weight * packets * rng.lognormal(0, 0.3, n)
    features = np.stack([columns[name] for name in names], axis=1)
    return features, intensity, mix


def _cpu_response(
    name: str,
    features: np.ndarray,
    intensity: np.ndarray,
    mix: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-VNF CPU response shape over the traffic features."""
    n = len(intensity)
    packets = features[:, 0] / 1e4
    flows = features[:, 6] / 4e3
    new_flows = features[:, 7] / 1.2e3
    syn = features[:, 11] / 500.0
    # All three VNFs share a packet-processing backbone (interrupt handling,
    # DMA, kernel network stack); pooling data across VNFs lets a single
    # model learn this shared component from 3x the data — the premise of
    # training one model over all environments (§4.1.4).
    backbone = 1.0 * packets + 0.6 * np.maximum(packets - 1.0, 0.0) ** 2 + 0.3 * flows
    if name == "snort":
        # IDS: per-packet rule matching interacts multiplicatively with the
        # active flow table, and the flow cache overflows past a knee —
        # strongly non-linear, so linear models underfit (Table 4: neural
        # methods win on Snort).
        # Rule-matching cost grows sharply for connection-heavy mixes.
        raw = backbone + (
            1.2 * packets * (0.4 + 1.6 * mix**2)
            + 2.0 * np.maximum(packets - 1.15, 0.0) ** 2
            + 0.5 * np.log1p(np.maximum(syn, 0.0))
        )
        noise_scale = 0.20
    elif name == "firewall":
        # Stateful firewall: connection setup saturates the session table
        # (sigmoid), with a churn x load interaction and an eviction knee.
        # Session-table pressure depends on mix x load jointly.
        raw = 0.5 * backbone + (
            2.0 / (1.0 + np.exp(-3.0 * (packets - 1.0)))
            + 0.9 * new_flows * packets
            + 1.8 * packets * np.maximum(mix - 0.45, 0.0)
            + 1.5 * np.maximum(new_flows - 0.9, 0.0) ** 2
        )
        noise_scale = 0.28
    elif name == "switch":
        # SDN switch forwarding is near-linear in packet rate, with a strong
        # autoregressive thermal/governor component: the regime where the
        # paper found Ridge_ts to win (Table 4).
        linear = 0.6 * backbone + 0.6 * packets
        raw = np.empty(n)
        raw[0] = linear[0]
        for i in range(1, n):
            raw[i] = 0.75 * raw[i - 1] + 0.25 * linear[i]
        noise_scale = 0.22
    else:
        raise ValueError(f"unknown KDN dataset {name!r}; choose from {KDN_NAMES}")
    raw = raw + noise_scale * raw.std() * rng.standard_normal(n)
    mean, std = KDN_CPU_SCALE[name]
    standardized = (raw - raw.mean()) / raw.std()
    return mean + std * standardized


def load_kdn(name: str, seed: int = 0) -> KDNDataset:
    """Generate one synthetic KDN dataset ('snort', 'switch', 'firewall')."""
    if name not in KDN_NAMES:
        raise ValueError(f"unknown KDN dataset {name!r}; choose from {KDN_NAMES}")
    digest = hashlib.sha256(f"kdn:{name}:{seed}".encode()).digest()
    rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
    total = sum(KDN_SPLITS[name])
    features, intensity, mix = _traffic_features(total, rng)
    cpu = _cpu_response(name, features, intensity, mix, rng)
    # The exported counters are sampled estimates of the true traffic: add
    # multiplicative observation noise AFTER computing the CPU response, so
    # features are noisy proxies of the quantities that actually drive CPU.
    features = features * rng.lognormal(0, 0.06, size=features.shape)
    environment = Environment(
        testbed="Testbed_KDN",
        sut=f"SUT_{name}",
        testcase="Testcase_TrafficReplay",
        build="Build_default",
    )
    return KDNDataset(
        name=name,
        features=features,
        cpu=cpu,
        feature_names=_feature_names(),
        environment=environment,
    )


def load_all_kdn(seed: int = 0) -> dict[str, KDNDataset]:
    """All three datasets keyed by name."""
    return {name: load_kdn(name, seed=seed) for name in KDN_NAMES}
