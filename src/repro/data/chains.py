"""Build chains and test executions.

A *build chain* (paper §1) is the sequence of software builds tested on a
particular (testbed, SUT, test case) combination. Each build's test run is
a :class:`TestExecution`: a contextual-feature matrix plus the CPU series
it produced, tagged with its :class:`~repro.data.environment.Environment`.
For training/evaluation the paper "treat[s] the time series associated with
the current (or most recent) build in each build chain as the test case,
and those associated with the previous builds as the
training/cross-validation data" (§4.2.1) — exposed here as
:attr:`BuildChain.current` and :attr:`BuildChain.history`.

Build chains model *independent* environments. Production VNFs are also
deployed as **service chains** (§1: packet cores, load balancers and
firewalls chained into one service): upstream VNF load propagates to
downstream members, so their resource series are coupled, not
independent. :class:`VNFPlacement` and :class:`ServiceChainTopology`
describe that wiring — which build chains form a service chain, in what
order, and with what placement (co-located on a shared host vs. remote
with queueing delay). :func:`repro.data.generate_chained_telecom` uses
them to synthesize coupled workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .environment import Environment
from .faults import InjectedFault

__all__ = ["TestExecution", "BuildChain", "VNFPlacement", "ServiceChainTopology"]


@dataclass
class TestExecution:
    """One build's test run in one environment."""

    __test__ = False  # keep pytest from collecting this as a test class

    environment: Environment
    features: np.ndarray  # (timesteps, n_features) contextual features (CFs)
    cpu: np.ndarray  # (timesteps,) resource utilization (RU)
    faults: list[InjectedFault] = field(default_factory=list)
    # Additional per-timestep KPI series (e.g. memory, response time):
    # §4.2 notes the approach "can be used for detecting performance
    # problems across many types of resources such as CPU, memory and
    # disk, or other VNF specific KPIs".
    extra_kpis: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.cpu = np.asarray(self.cpu, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValueError(f"features must be 2-d; got shape {self.features.shape}")
        if self.cpu.ndim != 1:
            raise ValueError(f"cpu must be 1-d; got shape {self.cpu.shape}")
        if len(self.features) != len(self.cpu):
            raise ValueError(
                f"features and cpu disagree on length: {len(self.features)} vs {len(self.cpu)}"
            )
        for name, series in list(self.extra_kpis.items()):
            series = np.asarray(series, dtype=np.float64)
            if series.shape != self.cpu.shape:
                raise ValueError(
                    f"KPI {name!r} has shape {series.shape}; expected {self.cpu.shape}"
                )
            self.extra_kpis[name] = series

    def kpi(self, name: str) -> np.ndarray:
        """One target series by name ('cpu' or any extra KPI)."""
        if name == "cpu":
            return self.cpu
        try:
            return self.extra_kpis[name]
        except KeyError:
            raise KeyError(
                f"no KPI {name!r}; available: ['cpu', "
                + ", ".join(repr(k) for k in self.extra_kpis)
                + "]"
            ) from None

    @property
    def n_timesteps(self) -> int:
        return len(self.cpu)

    @property
    def impactful_faults(self) -> list[InjectedFault]:
        """Ground-truth performance problems in this execution."""
        return [fault for fault in self.faults if fault.impactful]

    @property
    def has_performance_problem(self) -> bool:
        return bool(self.impactful_faults)

    def anomaly_mask(self) -> np.ndarray:
        """Boolean mask of timesteps inside any impactful fault interval."""
        mask = np.zeros(self.n_timesteps, dtype=bool)
        for fault in self.impactful_faults:
            mask[fault.start : min(fault.end, self.n_timesteps)] = True
        return mask


@dataclass
class BuildChain:
    """A sequence of test executions for one (testbed, SUT, testcase)."""

    executions: list[TestExecution]

    def __post_init__(self) -> None:
        if not self.executions:
            raise ValueError("a build chain needs at least one execution")
        keys = {execution.environment.chain_key for execution in self.executions}
        if len(keys) != 1:
            raise ValueError(f"executions belong to different chains: {sorted(keys)}")

    @property
    def key(self) -> tuple[str, str, str]:
        """(testbed, sut, testcase) identity of this chain."""
        return self.executions[0].environment.chain_key

    @property
    def builds(self) -> list[str]:
        return [execution.environment.build for execution in self.executions]

    @property
    def current(self) -> TestExecution:
        """The most recent build's execution — the paper's test case."""
        return self.executions[-1]

    @property
    def history(self) -> list[TestExecution]:
        """Previous builds — the paper's training/cross-validation data."""
        return self.executions[:-1]

    def __len__(self) -> int:
        return len(self.executions)

    def total_timesteps(self) -> int:
        return sum(execution.n_timesteps for execution in self.executions)

    def history_series(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(features, cpu) pairs of the historical executions."""
        return [(execution.features, execution.cpu) for execution in self.history]


@dataclass(frozen=True)
class VNFPlacement:
    """Where one service-chain member runs, relative to its upstream hop.

    ``colocated`` members share a host with the previous VNF: load arrives
    with no queueing delay but CPU contention couples the two series.
    Remote members instead see the upstream load ``delay`` timesteps late,
    attenuated by ``damping`` (buffering/batching between hops).
    """

    position: int
    testbed: str
    colocated: bool = False
    delay: int = 0
    damping: float = 1.0

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ValueError("position must be >= 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.position == 0 and self.delay != 0:
            raise ValueError("the head of a service chain has no upstream delay")
        if self.colocated and self.delay != 0:
            raise ValueError("a colocated member shares its host: delay must be 0")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")


@dataclass(frozen=True)
class ServiceChainTopology:
    """An ordered service chain over build-chain indices of a dataset.

    ``members[i]`` is the index (into ``dataset.chains``) of the build
    chain that plays position ``i``; ``placements[i]`` describes how that
    member is deployed. Position 0 is the ingress VNF; each later member
    receives the previous member's load.
    """

    name: str
    members: tuple[int, ...]
    placements: tuple[VNFPlacement, ...]

    def __post_init__(self) -> None:
        members = tuple(self.members)
        placements = tuple(self.placements)
        object.__setattr__(self, "members", members)
        object.__setattr__(self, "placements", placements)
        if len(members) < 2:
            raise ValueError("a service chain needs at least 2 members")
        if len(members) != len(placements):
            raise ValueError("members and placements must be aligned")
        if len(set(members)) != len(members):
            raise ValueError("a build chain cannot appear twice in one topology")
        for i, placement in enumerate(placements):
            if placement.position != i:
                raise ValueError(
                    f"placement {i} has position {placement.position}; topologies are ordered"
                )

    def __len__(self) -> int:
        return len(self.members)

    def upstream_of(self, position: int) -> int | None:
        """Member index feeding the VNF at ``position`` (None for ingress)."""
        if not 0 <= position < len(self.members):
            raise IndexError(f"position {position} out of range for {len(self.members)} members")
        return self.members[position - 1] if position > 0 else None
