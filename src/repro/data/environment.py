"""Environment metadata (EM) — the paper's Table 1 schema.

An *environment* is the full hardware/software stack a test execution runs
on, abstracted as a set of EM labels across five layers: hardware,
virtualization, operating system, application/VNF, and test case. The
paper simplifies discussion to a 4-tuple
``<Testbed_ID, SUT_Mod, Testcase_ID, Build_vers>`` (§3.1), where the
testbed id stands in for the first four columns of Table 1; we keep both
the full schema (for generating realistic testbeds) and the 4-tuple view
(the model's embedding fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "EM_FIELDS",
    "TABLE1_SCHEMA",
    "Environment",
    "Testbed",
    "random_testbed",
]

#: The four representative EM fields used throughout the paper (§3.1).
EM_FIELDS = ("testbed", "sut", "testcase", "build")

#: Table 1 — example EM labels per stack layer, with their value domains.
#: Used by :func:`random_testbed` to synthesize realistic testbeds.
TABLE1_SCHEMA: dict[str, dict[str, tuple]] = {
    "hardware": {
        "cpu_clock_ghz": (2.1, 2.4, 2.6, 3.0, 3.5, 4.0),
        "num_cores": (8, 16, 24, 32, 48),
        "ram_gb": (32, 64, 128, 256),
        "disk_gb": (256, 512, 1024, 2048),
        "hyper_threading": ("on", "off"),
        "num_threads": (16, 32, 48, 64, 96),
    },
    "virtualization": {
        "hypervisor": ("ESXi 5.5", "ESXi 6.5", "KVM", "Xen"),
        "cluster_size": (1, 2, 4, 8),
        "dpdk": ("on", "off"),
        "sr_iov": ("on", "off"),
        "cpu_pinning": ("on", "off"),
        "vcpu": (2, 4, 8, 16),
    },
    "operating_system": {
        "kernel": ("Linux 4.15", "Linux 5.3.7", "Linux 5.4"),
        "ulimits": ("default", "raised"),
        "filesystem": ("ext4", "xfs"),
        "swap_gb": (0, 2, 8),
        "page_size_kb": (4, 2048),
        "cpu_governor": ("ondemand", "performance", "powersave"),
    },
    "application": {
        "runtime_env": ("JVM", "native", "container"),
        "features_enabled": ("base", "base+tls", "base+tls+qos", "full"),
        "service_chain": ("fw", "fw-lb", "fw-lb-nat"),
        "slicing": (1, 2, 4),
        "elasticity": ("yes", "no"),
    },
    "test_case": {
        "workload_type": ("data", "voice", "signalling", "mixed"),
        "traffic_model": ("self-similar", "poisson", "daily-curve", "burst"),
        "form_factor": ("surge", "steady", "ramp"),
        "fault_injection": ("none", "latency", "packet-loss", "cpu-stress"),
    },
}


@dataclass(frozen=True)
class Testbed:
    """A concrete testbed: one value chosen per Table 1 label (layers 1-4)."""

    testbed_id: str
    labels: dict[str, str] = field(hash=False)

    def __post_init__(self) -> None:
        if not self.testbed_id:
            raise ValueError("testbed_id must be non-empty")

    def label(self, name: str) -> str:
        return self.labels[name]


def random_testbed(testbed_id: str, rng: np.random.Generator) -> Testbed:
    """Sample a testbed by choosing one value per label of layers 1-4."""
    labels: dict[str, str] = {}
    for layer in ("hardware", "virtualization", "operating_system", "application"):
        for name, domain in TABLE1_SCHEMA[layer].items():
            labels[name] = str(domain[rng.integers(0, len(domain))])
    return Testbed(testbed_id=testbed_id, labels=labels)


@dataclass(frozen=True)
class Environment:
    """The 4-tuple environment abstraction of §3.1.

    ``<Testbed_ID, SUT_Mod, Testcase_ID, Build_vers>`` — e.g.
    ``Environment('Testbed_15', 'SUT_DB', 'Testcase_Regression', 'Build_S10')``.
    """

    testbed: str
    sut: str
    testcase: str
    build: str

    def __post_init__(self) -> None:
        for name in EM_FIELDS:
            if not getattr(self, name):
                raise ValueError(f"environment field {name!r} must be non-empty")

    def as_dict(self) -> dict[str, str]:
        return {name: getattr(self, name) for name in EM_FIELDS}

    def as_tuple(self) -> tuple[str, str, str, str]:
        return (self.testbed, self.sut, self.testcase, self.build)

    @property
    def build_type(self) -> str:
        """The build-type letter, e.g. 'S' for Build_S10 (stable).

        Figure 6 shows embeddings clustering by this letter.
        """
        name = self.build.removeprefix("Build_")
        return name[0] if name else "?"

    @property
    def chain_key(self) -> tuple[str, str, str]:
        """Identity of the build chain this environment belongs to.

        A *build chain* is a sequence of builds tied to a particular
        (testbed, SUT, test case) combination (§1).
        """
        return (self.testbed, self.sut, self.testcase)

    def with_build(self, build: str) -> "Environment":
        """The same testbed/SUT/testcase running a different build."""
        return Environment(self.testbed, self.sut, self.testcase, build)

    def overlap(self, other: "Environment") -> int:
        """Number of EM fields shared with another environment (0-4)."""
        return sum(
            getattr(self, name) == getattr(other, name) for name in EM_FIELDS
        )
