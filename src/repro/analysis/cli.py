"""``python -m repro.analysis`` / ``python -m repro analyze`` entry point.

Exit codes: 0 — clean (no non-baselined findings, no expired baseline
entries when ``--strict-baseline``); 1 — findings (or parse errors);
2 — usage errors. The default baseline is ``analysis_baseline.json``
discovered upward from the first scanned path, so running from the repo
root or a subdirectory both pick up the committed file.

Scans are incremental by default: phase-1 results are replayed from
``.repro_analysis_cache/`` (kept next to the discovered baseline, else
the working directory) for files whose content hash is unchanged, and
invalidated wholesale when the rule set version bumps. ``--no-cache``
forces a full pass and neither reads nor writes the cache.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import Baseline, apply_baseline
from .cache import CACHE_DIR_NAME, AnalysisCache
from .engine import Analyzer
from .program import default_cross_rules
from .report import render_json, render_sarif, render_text
from .rules import DEFAULT_REGISTRY, RULESET_VERSION, default_registry

__all__ = ["main", "build_parser", "discover_baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "analysis_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Two-phase whole-program analyzer enforcing determinism, "
        "thread-safety and aliasing discipline (per-file rules REP001-REP012 "
        "plus cross-file rules REP013-REP016).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories to scan (default: src)"
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME} discovered "
        "upward from the first path; 'none' disables)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--strict-baseline", action="store_true",
        help="also fail when baseline entries no longer match (expired)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the incremental scan cache and re-analyze every file",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"incremental cache directory (default: {CACHE_DIR_NAME} next "
        "to the baseline, else the working directory)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def discover_baseline(first_path: str | Path) -> Path | None:
    """Walk up from ``first_path`` looking for the committed baseline."""
    start = Path(first_path).resolve()
    if start.is_file():
        start = start.parent
    for directory in (start, *start.parents):
        candidate = directory / DEFAULT_BASELINE_NAME
        if candidate.is_file():
            return candidate
    return None


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in DEFAULT_REGISTRY:
            print(f"{rule.id}  {rule.title}")
        for cross in default_cross_rules():
            print(f"{cross.id}  {cross.title} [cross-file]")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro.analysis: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline_path: Path | None
    if args.baseline == "none":
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists() and not args.update_baseline:
            print(f"repro.analysis: no baseline file {baseline_path}", file=sys.stderr)
            return 2
    else:
        baseline_path = discover_baseline(args.paths[0])

    cache = None
    if not args.no_cache:
        if args.cache_dir is not None:
            cache_dir = Path(args.cache_dir)
        elif baseline_path is not None:
            cache_dir = baseline_path.parent / CACHE_DIR_NAME
        else:
            cache_dir = Path(CACHE_DIR_NAME)
        cache = AnalysisCache(cache_dir, ruleset_version=RULESET_VERSION)

    analyzer = Analyzer(default_registry())
    result = analyzer.analyze_paths(args.paths, cache=cache)

    if args.update_baseline:
        if baseline_path is None:
            baseline_path = Path(DEFAULT_BASELINE_NAME)
        baseline = Baseline.from_findings(
            result.findings, justification="grandfathered (justify or fix)"
        )
        baseline.save(baseline_path)
        print(
            f"wrote {len(baseline)} baseline entr"
            f"{'y' if len(baseline) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    baseline = (
        Baseline.load(baseline_path)
        if baseline_path is not None and Path(baseline_path).exists()
        else Baseline()
    )
    new, grandfathered, expired = apply_baseline(result.findings, baseline)

    render = {"json": render_json, "sarif": render_sarif, "text": render_text}[args.fmt]
    print(render(result, new, grandfathered, expired))

    if new or result.parse_errors:
        return 1
    if expired and args.strict_baseline:
        return 1
    return 0
