"""repro.analysis — the project's AST lint engine (audit-as-code).

PR 4's byte-identical parallel campaigns stay byte-identical only while
nobody reintroduces the bug classes that audit removed by hand: bare
``+=`` on shared counters, writable cache-row aliases, wall-clock reads
on the simulated campaign clock, unseeded RNGs. This package encodes
those audits as eight AST rules (REP001-REP008) that run in tier-1, with
inline ``# repro: noqa[REP00x]`` suppressions (checked for staleness)
and a committed, justification-carrying baseline for the survivors.

Entry points::

    python -m repro.analysis src/            # scan, text report
    python -m repro analyze src/ --format json
    Analyzer(default_registry()).analyze_paths(["src"])   # programmatic
"""

from .baseline import Baseline, BaselineEntry, apply_baseline
from .cli import DEFAULT_BASELINE_NAME, discover_baseline, main
from .engine import (
    UNUSED_SUPPRESSION_ID,
    AnalysisResult,
    Analyzer,
    FileContext,
    Finding,
    Rule,
    RuleRegistry,
    iter_python_files,
)
from .report import JSON_SCHEMA_VERSION, render_json, render_text
from .rules import ALL_RULES, DEFAULT_REGISTRY, default_registry

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "Analyzer",
    "apply_baseline",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_REGISTRY",
    "default_registry",
    "discover_baseline",
    "FileContext",
    "Finding",
    "iter_python_files",
    "JSON_SCHEMA_VERSION",
    "main",
    "render_json",
    "render_text",
    "Rule",
    "RuleRegistry",
    "UNUSED_SUPPRESSION_ID",
]
