"""repro.analysis — the project's whole-program analyzer (audit-as-code).

PR 4's byte-identical parallel campaigns stay byte-identical only while
nobody reintroduces the bug classes that audit removed by hand: bare
``+=`` on shared counters, writable cache-row aliases, wall-clock reads
on the simulated campaign clock, unseeded RNGs. This package encodes
those audits as AST rules that run in tier-1, with inline
``# repro: noqa[REP00x]`` suppressions (checked for staleness) and a
committed, justification-carrying baseline for the survivors.

The analyzer runs in two phases. Phase 1 walks each file once,
dispatching the per-file rules (REP001-REP012) and distilling a
:class:`~repro.analysis.summaries.ModuleSummary` of its concurrency and
determinism surface. Phase 2 links every summary into a
:class:`~repro.analysis.program.ProgramModel` — class families, call
graph, canonical lock identities — and runs the cross-file rules:
REP013 lock-discipline inference, REP014 lock-ordering cycle detection,
REP015 process-escape checking, REP016 interprocedural determinism
taint. Phase 1 replays from a content-hash incremental cache
(:mod:`repro.analysis.cache`); phase 2 always re-links.

Entry points::

    python -m repro.analysis src/            # scan, text report
    python -m repro analyze src/ --format json   # or --format sarif
    Analyzer(default_registry()).analyze_paths(["src"])   # programmatic
"""

from .baseline import Baseline, BaselineEntry, apply_baseline
from .cache import CACHE_DIR_NAME, AnalysisCache
from .cli import DEFAULT_BASELINE_NAME, discover_baseline, main
from .engine import (
    UNUSED_SUPPRESSION_ID,
    AnalysisResult,
    Analyzer,
    FileContext,
    FileScan,
    Finding,
    Rule,
    RuleRegistry,
    iter_python_files,
)
from .program import (
    ALL_CROSS_RULES,
    CROSS_RULE_IDS,
    CrossFileRule,
    ProgramModel,
    default_cross_rules,
)
from .report import JSON_SCHEMA_VERSION, render_json, render_sarif, render_text
from .rules import ALL_RULES, DEFAULT_REGISTRY, RULESET_VERSION, default_registry
from .summaries import ModuleSummary, summarize_module

__all__ = [
    "ALL_CROSS_RULES",
    "ALL_RULES",
    "AnalysisCache",
    "AnalysisResult",
    "Analyzer",
    "apply_baseline",
    "Baseline",
    "BaselineEntry",
    "CACHE_DIR_NAME",
    "CROSS_RULE_IDS",
    "CrossFileRule",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_REGISTRY",
    "default_cross_rules",
    "default_registry",
    "discover_baseline",
    "FileContext",
    "FileScan",
    "Finding",
    "iter_python_files",
    "JSON_SCHEMA_VERSION",
    "main",
    "ModuleSummary",
    "ProgramModel",
    "render_json",
    "render_sarif",
    "render_text",
    "Rule",
    "RuleRegistry",
    "RULESET_VERSION",
    "summarize_module",
    "UNUSED_SUPPRESSION_ID",
]
