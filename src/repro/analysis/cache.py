"""Content-hash incremental cache for the two-phase analyzer.

Phase 1 is a pure function of one file's bytes, so its outputs — the
per-file findings, the suppression bookkeeping, and the
:class:`~repro.analysis.summaries.ModuleSummary` phase 2 consumes — can
be keyed by the file's content hash and reused across scans. Phase 2
always re-links (it is repo-wide and cheap relative to parsing), so a
warm scan costs one hash per file plus one link pass.

Entries live under ``.repro_analysis_cache/`` next to the baseline (or
wherever the caller points the cache), one JSON file per source file,
named by the SHA-1 of the repo-relative path so arbitrary paths map to
flat filenames. An entry is valid only when its content hash, cache
format version, and rule-set version all match — bumping
``RULESET_VERSION`` in :mod:`repro.analysis.rules` invalidates every
entry at once, which is what makes rule changes take effect without a
manual cache wipe. Corrupt or unreadable entries are treated as misses;
the cache never makes a scan wrong, only faster.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .engine import FileScan, Finding
from .summaries import SUMMARY_SCHEMA_VERSION, ModuleSummary

__all__ = ["AnalysisCache", "CACHE_DIR_NAME", "CACHE_FORMAT_VERSION", "content_hash"]

CACHE_DIR_NAME = ".repro_analysis_cache"

#: Bump when the on-disk entry layout changes shape.
CACHE_FORMAT_VERSION = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8", errors="replace")).hexdigest()


class AnalysisCache:
    """Flat directory of per-file phase-1 entries, content-hash keyed."""

    def __init__(self, directory: str | Path, ruleset_version: int) -> None:
        self.directory = Path(directory)
        self.ruleset_version = ruleset_version
        self.hits = 0
        self.misses = 0

    def _entry_path(self, rel_path: str) -> Path:
        digest = hashlib.sha1(rel_path.encode("utf-8")).hexdigest()
        return self.directory / f"{digest}.json"

    def load(self, rel_path: str, digest: str) -> FileScan | None:
        entry_path = self._entry_path(rel_path)
        try:
            data = json.loads(entry_path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            data.get("content_sha256") != digest
            or data.get("cache_version") != CACHE_FORMAT_VERSION
            or data.get("ruleset_version") != self.ruleset_version
            or data.get("summary_version") != SUMMARY_SCHEMA_VERSION
            or data.get("path") != rel_path
        ):
            self.misses += 1
            return None
        try:
            scan = FileScan(
                findings=[
                    Finding(
                        rule=f["rule"], path=f["path"], line=f["line"],
                        message=f["message"], snippet=f["snippet"],
                        related=tuple(tuple(r) for r in f.get("related", [])),
                    )
                    for f in data["findings"]
                ],
                n_suppressed=data["n_suppressed"],
                summary=ModuleSummary.from_dict(data["summary"]),
                deferred={int(k): list(v) for k, v in data["deferred"].items()},
            )
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return scan

    def store(self, rel_path: str, digest: str, scan: FileScan) -> None:
        payload = {
            "content_sha256": digest,
            "cache_version": CACHE_FORMAT_VERSION,
            "ruleset_version": self.ruleset_version,
            "summary_version": SUMMARY_SCHEMA_VERSION,
            "path": rel_path,
            "findings": [
                {
                    "rule": f.rule, "path": f.path, "line": f.line,
                    "message": f.message, "snippet": f.snippet,
                    "related": [list(r) for r in f.related],
                }
                for f in scan.findings
            ],
            "n_suppressed": scan.n_suppressed,
            "summary": scan.summary.to_dict(),
            "deferred": {str(k): sorted(v) for k, v in scan.deferred.items()},
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self._entry_path(rel_path).with_suffix(".tmp")
            tmp.write_text(json.dumps(payload, separators=(",", ":")))
            tmp.replace(self._entry_path(rel_path))
        except OSError:  # cache is best-effort; a read-only tree still scans
            pass
