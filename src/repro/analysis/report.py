"""Reporters: human-readable text and machine-readable JSON.

The JSON shape is versioned and treated as a public contract (tests pin
it): tooling that trends finding counts or annotates diffs should not
break when the engine grows new fields.
"""

from __future__ import annotations

import json

from .baseline import BaselineEntry
from .engine import AnalysisResult, Finding

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(
    result: AnalysisResult,
    new: list[Finding],
    grandfathered: list[Finding],
    expired: list[BaselineEntry],
) -> str:
    lines: list[str] = []
    for finding in new:
        lines.append(finding.render())
    for entry in expired:
        lines.append(
            f"{entry.path}: baseline entry for {entry.rule} no longer matches "
            f"anything (snippet {entry.snippet!r}) — prune it"
        )
    counts = ", ".join(f"{rule}={n}" for rule, n in _count(new).items()) or "none"
    lines.append(
        f"{result.n_files} files scanned: {len(new)} finding(s) [{counts}], "
        f"{len(grandfathered)} baselined, {result.n_suppressed} suppressed, "
        f"{len(expired)} expired baseline entr{'y' if len(expired) == 1 else 'ies'}"
    )
    for error in result.parse_errors:
        lines.append(f"parse error: {error}")
    return "\n".join(lines)


def render_json(
    result: AnalysisResult,
    new: list[Finding],
    grandfathered: list[Finding],
    expired: list[BaselineEntry],
) -> str:
    def finding_dict(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "snippet": finding.snippet,
        }

    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding_dict(f) for f in new],
        "grandfathered": [finding_dict(f) for f in grandfathered],
        "expired_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "snippet": entry.snippet,
                "justification": entry.justification,
            }
            for entry in expired
        ],
        "summary": {
            "files_scanned": result.n_files,
            "new_findings": len(new),
            "grandfathered": len(grandfathered),
            "suppressed": result.n_suppressed,
            "expired_baseline": len(expired),
            "by_rule": _count(new),
            "parse_errors": list(result.parse_errors),
            "elapsed_seconds": result.elapsed_seconds,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _count(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))
