"""Reporters: human-readable text, machine-readable JSON, and SARIF.

The JSON shape is versioned and treated as a public contract (tests pin
it): tooling that trends finding counts or annotates diffs should not
break when the engine grows new fields. Version 2 added ``related``
location anchors (cycle edges, escape-path hops) and the phase-2 link
timing. The SARIF reporter emits a minimal SARIF 2.1.0 log — one run,
one result per non-baselined finding, related locations mapped to
``relatedLocations`` — for consumption by code-scanning UIs.
"""

from __future__ import annotations

import json

from .baseline import BaselineEntry
from .engine import AnalysisResult, Finding

__all__ = ["render_text", "render_json", "render_sarif", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 2


def render_text(
    result: AnalysisResult,
    new: list[Finding],
    grandfathered: list[Finding],
    expired: list[BaselineEntry],
) -> str:
    lines: list[str] = []
    for finding in new:
        lines.append(finding.render())
    for entry in expired:
        lines.append(
            f"{entry.path}: baseline entry for {entry.rule} no longer matches "
            f"anything (snippet {entry.snippet!r}) — prune it"
        )
    counts = ", ".join(f"{rule}={n}" for rule, n in _count(new).items()) or "none"
    lines.append(
        f"{result.n_files} files scanned: {len(new)} finding(s) [{counts}], "
        f"{len(grandfathered)} baselined, {result.n_suppressed} suppressed, "
        f"{len(expired)} expired baseline entr{'y' if len(expired) == 1 else 'ies'}"
    )
    for error in result.parse_errors:
        lines.append(f"parse error: {error}")
    return "\n".join(lines)


def render_json(
    result: AnalysisResult,
    new: list[Finding],
    grandfathered: list[Finding],
    expired: list[BaselineEntry],
) -> str:
    def finding_dict(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "snippet": finding.snippet,
            "related": [
                {"path": path, "line": line, "note": note}
                for path, line, note in finding.related
            ],
        }

    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding_dict(f) for f in new],
        "grandfathered": [finding_dict(f) for f in grandfathered],
        "expired_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "snippet": entry.snippet,
                "justification": entry.justification,
            }
            for entry in expired
        ],
        "summary": {
            "files_scanned": result.n_files,
            "new_findings": len(new),
            "grandfathered": len(grandfathered),
            "suppressed": result.n_suppressed,
            "expired_baseline": len(expired),
            "by_rule": _count(new),
            "parse_errors": list(result.parse_errors),
            "elapsed_seconds": result.elapsed_seconds,
            "link_seconds": result.link_seconds,
            "cache_hits": result.n_cache_hits,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(
    result: AnalysisResult,
    new: list[Finding],
    grandfathered: list[Finding],
    expired: list[BaselineEntry],
) -> str:
    """Minimal SARIF 2.1.0: only non-baselined findings become results
    (baselined and suppressed ones are, by definition, accepted)."""

    def location(path: str, line: int, message: str | None = None) -> dict:
        loc = {
            "physicalLocation": {
                "artifactLocation": {"uri": path},
                "region": {"startLine": max(line, 1)},
            }
        }
        if message is not None:
            loc["message"] = {"text": message}
        return loc

    rule_ids = sorted({f.rule for f in new})
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "https://example.invalid/repro-analysis",
                        "rules": [{"id": rule_id} for rule_id in rule_ids],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": "error",
                        "message": {"text": finding.message},
                        "locations": [location(finding.path, finding.line)],
                        "relatedLocations": [
                            location(path, line, note)
                            for path, line, note in finding.related
                        ],
                        "fingerprints": {"reproAnalysis/v1": finding.fingerprint},
                    }
                    for finding in new
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _count(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))
