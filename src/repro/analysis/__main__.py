"""``python -m repro.analysis`` — scan the tree against the rule catalog."""

import sys

from .cli import main

if __name__ == "__main__":  # pragma: no cover - thin shim
    sys.exit(main())
