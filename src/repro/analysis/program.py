"""Phase 2 of the whole-program analyzer: link summaries, run cross-file rules.

:class:`ProgramModel` stitches the per-file :class:`ModuleSummary`
records from :mod:`repro.analysis.summaries` into a repo-wide view — a
module index, a class-inheritance merge (union-find over base edges), a
call graph resolved through each module's import map, and canonical lock
identities (``repro.obs.metrics._Metric._lock``) that make the same lock
recognizable from every file that touches it.

Four rules run over the linked model:

- **REP013** lock-discipline inference: an attribute written under a
  ``self`` lock in one method is part of that lock's protocol; reading or
  writing it bare anywhere in the class family is a data race (or at
  best a torn read) — the whole-program generalization of REP003.
- **REP014** lock-ordering cycles: build the may-hold-while-acquiring
  graph (direct nested ``with`` plus calls made under a lock into
  functions that transitively acquire), canonicalize lock identities,
  and flag strongly-connected components — the classic deadlock shape —
  with a file/line anchor on every edge.
- **REP015** process-escape: a callable shipped to another process
  (``Process(target=...)``, ``ProcessPoolExecutor``, ``WorkerPool``)
  must not reach parent-only resources (stores, TSDB handles, locks);
  the child would get a pickled divergent copy or an unpicklable crash.
- **REP016** determinism taint: a seed parameter that stops flowing —
  dropped before an RNG-constructing callee whose own seed then
  defaults, or accepted but never read — silently decouples a "seeded"
  call from the RNG it was supposed to determinize.

Cross-file findings carry ``related`` anchors (path, line, note) for
every edge of a cycle or hop of an escape path; the engine fills their
snippets from the sources it already read, so they fingerprint and
baseline exactly like single-file findings.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .engine import Finding
from .summaries import (
    RESOURCE_CLASSES,
    ClassSummary,
    FunctionSummary,
    LockRef,
    ModuleSummary,
)

__all__ = [
    "CrossFileRule",
    "ProgramModel",
    "LockDiscipline",
    "LockOrderCycles",
    "ProcessEscape",
    "DeterminismTaint",
    "ALL_CROSS_RULES",
    "default_cross_rules",
    "CROSS_RULE_IDS",
]

#: Methods where bare attribute access is construction, not a race: the
#: object is not yet (or no longer) shared when they run.
_INIT_EXEMPT = frozenset({
    "__init__", "__new__", "__post_init__", "__del__",
    "__getstate__", "__setstate__", "__reduce__", "__copy__", "__deepcopy__",
})

_LOCK_CTOR_NONREENTRANT = frozenset({"Lock"})

_ESCAPE_MAX_DEPTH = 5


def _is_init_exempt(method_qualname: str) -> bool:
    leaf = method_qualname.split(".")[-1]
    return leaf in _INIT_EXEMPT or leaf.startswith("_init")


class CrossFileRule:
    """Base class for whole-program rules: one :meth:`run` per scan.

    Unlike per-file :class:`~repro.analysis.engine.Rule` subclasses,
    cross-file rules never see an AST — only the linked
    :class:`ProgramModel`. They yield :class:`Finding` objects with an
    empty snippet; the engine fills snippets and applies inline
    ``# repro: noqa[...]`` suppressions afterwards.
    """

    id: str = "REP000"
    title: str = ""

    def run(self, program: "ProgramModel") -> Iterator[Finding]:
        return iter(())


class ProgramModel:
    """The linked whole-program view phase-2 rules query."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        #: (module, class name) -> ClassSummary
        self.classes: dict[tuple[str, str], ClassSummary] = {}
        #: (module, function qualname) -> FunctionSummary
        self.functions: dict[tuple[str, str], FunctionSummary] = {}
        for module in sorted(self.modules):
            summary = self.modules[module]
            for cls in summary.classes:
                self.classes[(module, cls.name)] = cls
            for fn in summary.functions:
                self.functions[(module, fn.qualname)] = fn
        self._family = self._link_families()
        self._canon_cache: dict[tuple, str] = {}
        self._call_cache: dict[tuple[str, str, str], tuple] = {}

    # -- inheritance merge -------------------------------------------------
    def _link_families(self) -> dict[tuple[str, str], frozenset]:
        """Union-find over base-class edges: classes sharing an
        inheritance chain share one attribute namespace for REP013."""
        parent: dict[tuple[str, str], tuple[str, str]] = {
            key: key for key in self.classes
        }

        def find(key):
            while parent[key] != key:
                parent[key] = parent[parent[key]]
                key = parent[key]
            return key

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        for (module, name), cls in sorted(self.classes.items()):
            for base in cls.bases:
                resolved = self._resolve_class(module, base)
                if resolved is not None:
                    union((module, name), resolved)

        groups: dict[tuple[str, str], set] = {}
        for key in self.classes:
            groups.setdefault(find(key), set()).add(key)
        return {
            key: frozenset(group)
            for group in groups.values()
            for key in group
        }

    def _resolve_class(self, module: str, base: str) -> tuple[str, str] | None:
        """Resolve a base-class spelling to a (module, class) key."""
        parts = base.split(".")
        imports = self.modules[module].import_map
        if len(parts) == 1:
            if (module, base) in self.classes:
                return (module, base)
            target = imports.get(base)
            if target and "." in target:
                owner, name = target.rsplit(".", 1)
                if (owner, name) in self.classes:
                    return (owner, name)
            return None
        root, rest = parts[0], parts[1:]
        owner = imports.get(root, root)
        candidate = (".".join([owner, *rest[:-1]]) if rest[:-1] else owner, rest[-1])
        return candidate if candidate in self.classes else None

    def family(self, module: str, cls: str) -> frozenset:
        """All (module, class) keys sharing an inheritance chain."""
        return self._family.get((module, cls), frozenset({(module, cls)}))

    def family_lock_attrs(self, module: str, cls: str) -> frozenset:
        attrs: set[str] = set()
        for key in self.family(module, cls):
            attrs.update(self.classes[key].lock_attrs)
        return frozenset(attrs)

    def family_resource_attrs(self, module: str, cls: str) -> dict[str, str]:
        merged: dict[str, str] = {}
        for key in sorted(self.family(module, cls)):
            merged.update(self.classes[key].resource_attrs)
        return merged

    # -- lock canonicalization ---------------------------------------------
    def canonical_lock(self, module: str, ref: LockRef) -> str | None:
        """A repo-wide identity for a lock reference, or None if the
        reference cannot be pinned to a single program object."""
        key = (module, ref.name, ref.via_self, ref.cls)
        cached = self._canon_cache.get(key)
        if cached is not None:
            return cached or None
        canon = self._canonical_lock(module, ref)
        self._canon_cache[key] = canon or ""
        return canon

    def _canonical_lock(self, module: str, ref: LockRef) -> str | None:
        if ref.via_self:
            if not ref.cls:
                return None
            # attach the attr to the family member that defines it, so
            # `self._lock` in a subclass and the base name the same lock.
            defining = sorted(
                key for key in self.family(module, ref.cls)
                if ref.name in self.classes[key].lock_attrs
            )
            owner = defining[0] if defining else (module, ref.cls)
            return f"{owner[0]}.{owner[1]}.{ref.name}"
        parts = ref.name.split(".")
        imports = self.modules[module].import_map if module in self.modules else {}
        if len(parts) == 1:
            target = imports.get(ref.name)
            return target if target and "." in target else f"{module}.{ref.name}"
        root = imports.get(parts[0], f"{module}.{parts[0]}")
        return ".".join([root, *parts[1:]])

    def lock_ctor(self, canonical: str) -> str | None:
        """Constructor name of a canonical ``module.Class.attr`` lock,
        when the defining class recorded one (reentrancy question)."""
        owner, attr = canonical.rsplit(".", 1)
        if "." not in owner:
            return None
        cls_module, cls_name = owner.rsplit(".", 1)
        cls = self.classes.get((cls_module, cls_name))
        return cls.ctor_attrs.get(attr) if cls is not None else None

    # -- call resolution ---------------------------------------------------
    def resolve_call(self, module: str, caller: str, callee: str) -> tuple:
        """(module, qualname) keys a call spelling may land on.

        Purely syntactic: ``self.m`` searches the caller's class family,
        bare names search the module then the import map, one-dot names
        go through the import map. Unresolvable spellings (attribute
        chains through objects) resolve to nothing — the analysis stays
        may-analysis over what it can see.
        """
        cache_key = (module, caller, callee)
        cached = self._call_cache.get(cache_key)
        if cached is not None:
            return cached
        resolved = tuple(self._resolve_call(module, caller, callee))
        self._call_cache[cache_key] = resolved
        return resolved

    def _resolve_call(self, module: str, caller: str, callee: str) -> Iterator:
        parts = callee.split(".")
        if parts[0] == "self" and len(parts) == 2:
            cls = self._caller_class(module, caller)
            if cls:
                for key in sorted(self.family(module, cls)):
                    candidate = (key[0], f"{key[1]}.{parts[1]}")
                    if candidate in self.functions:
                        yield candidate
                        return
            return
        if len(parts) == 1:
            nested = (module, f"{caller}.<locals>.{callee}")
            if nested in self.functions:
                yield nested
                return
            if (module, callee) in self.functions:
                yield (module, callee)
                return
            target = self.modules[module].import_map.get(callee) if module in self.modules else None
            if target and "." in target:
                owner, name = target.rsplit(".", 1)
                if (owner, name) in self.functions:
                    yield (owner, name)
                elif (owner, name) in self.classes:
                    # constructor call: treat as calling __init__
                    init = (owner, f"{name}.__init__")
                    if init in self.functions:
                        yield init
            return
        if len(parts) == 2 and parts[0] not in ("self", "cls"):
            owner = self.modules[module].import_map.get(parts[0]) if module in self.modules else None
            owner = owner or parts[0]
            if (owner, parts[1]) in self.functions:
                yield (owner, parts[1])
            return

    def _caller_class(self, module: str, caller: str) -> str | None:
        fn = self.functions.get((module, caller))
        if fn is not None and fn.cls:
            return fn.cls
        head = caller.split(".")[0]
        return head if (module, head) in self.classes else None

    def path_of(self, module: str) -> str:
        summary = self.modules.get(module)
        return summary.path if summary is not None else module


# ---------------------------------------------------------------------------
# REP013 — lock-discipline inference
# ---------------------------------------------------------------------------


class LockDiscipline(CrossFileRule):
    id = "REP013"
    title = (
        "attribute written under a lock in one method must not be "
        "accessed bare elsewhere in the class family"
    )

    def run(self, program: ProgramModel) -> Iterator[Finding]:
        seen_families: set[frozenset] = set()
        for key in sorted(program.classes):
            family = program.family(*key)
            if family in seen_families:
                continue
            seen_families.add(family)
            yield from self._check_family(program, family)

    def _check_family(self, program: ProgramModel, family: frozenset) -> Iterator[Finding]:
        lock_attrs: set[str] = set()
        for member in family:
            lock_attrs.update(program.classes[member].lock_attrs)
        # attr -> (canonical lock, path, line, method) of one guarded write
        guarded: dict[str, tuple[str, str, int, str]] = {}
        for member in sorted(family):
            module, _ = member
            cls = program.classes[member]
            for access in cls.accesses:
                if access.kind != "write" or not access.locks:
                    continue
                if _is_init_exempt(access.method) or access.attr in lock_attrs:
                    continue
                if access.attr in guarded:
                    continue
                canon = program.canonical_lock(module, access.locks[-1])
                guarded[access.attr] = (
                    canon or access.locks[-1].name,
                    program.path_of(module), access.line, access.method,
                )
        if not guarded:
            return
        for member in sorted(family):
            module, _ = member
            cls = program.classes[member]
            path = program.path_of(module)
            flagged: set[tuple[str, int]] = set()
            for access in cls.accesses:
                if access.attr not in guarded or access.locks:
                    continue
                if _is_init_exempt(access.method):
                    continue
                if (access.attr, access.line) in flagged:
                    continue
                flagged.add((access.attr, access.line))
                lock, gpath, gline, gmethod = guarded[access.attr]
                yield Finding(
                    rule=self.id,
                    path=path,
                    line=access.line,
                    message=(
                        f"'{access.attr}' is written under {lock} "
                        f"(in {gmethod}) but {'written' if access.kind == 'write' else 'read'} "
                        f"here without holding it"
                    ),
                    snippet="",
                    related=((gpath, gline, f"guarded write in {gmethod}"),),
                )


# ---------------------------------------------------------------------------
# REP014 — lock-ordering cycle detection
# ---------------------------------------------------------------------------


class LockOrderCycles(CrossFileRule):
    id = "REP014"
    title = "may-hold-while-acquiring cycle across the repo (potential deadlock)"

    def run(self, program: ProgramModel) -> Iterator[Finding]:
        edges = self._build_edges(program)
        yield from self._self_loops(program, edges)
        yield from self._cycles(program, edges)

    # -- graph construction ------------------------------------------------
    def _build_edges(self, program: ProgramModel):
        """canonical-lock digraph: edge A->B with evidence anchors means
        B may be acquired while A is held."""
        # locks each function acquires directly, with anchors
        direct: dict[tuple, set] = {}
        for module in sorted(program.modules):
            summary = program.modules[module]
            for site in summary.lock_sites:
                canon = program.canonical_lock(module, site.lock)
                if canon is None:
                    continue
                direct.setdefault((module, site.function), set()).add(
                    (canon, summary.path, site.line)
                )
        # transitive closure over the resolved call graph
        trans = {key: set(value) for key, value in direct.items()}
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for (module, qualname), fn in program.functions.items():
                bucket = trans.setdefault((module, qualname), set())
                before = len(bucket)
                for call in fn.calls:
                    for target in program.resolve_call(module, qualname, call.callee):
                        bucket |= trans.get(target, set())
                if len(bucket) != before:
                    changed = True

        edges: dict[tuple[str, str], list] = {}

        def add_edge(held: str, acquired: str, anchors, receiver_self: bool) -> None:
            entry = edges.setdefault((held, acquired), [])
            entry.append((anchors, receiver_self))

        for module in sorted(program.modules):
            summary = program.modules[module]
            path = summary.path
            for acq in summary.acquires:
                held = program.canonical_lock(module, acq.held)
                acquired = program.canonical_lock(module, acq.acquired)
                if held is None or acquired is None:
                    continue
                add_edge(
                    held, acquired,
                    ((path, acq.line,
                      f"{acquired} acquired while holding {held} in {acq.function}"),),
                    receiver_self=False,
                )
            for call in summary.held_calls:
                held = program.canonical_lock(module, call.held)
                if held is None:
                    continue
                receiver_self = call.callee.startswith("self.")
                for target in program.resolve_call(module, call.function, call.callee):
                    for canon, tpath, tline in sorted(trans.get(target, set())):
                        add_edge(
                            held, canon,
                            ((path, call.line,
                              f"{call.callee}() called in {call.function} "
                              f"while holding {held}"),
                             (tpath, tline, f"{canon} acquired inside the callee")),
                            receiver_self=receiver_self,
                        )
        return edges

    # -- self-loops --------------------------------------------------------
    def _self_loops(self, program: ProgramModel, edges) -> Iterator[Finding]:
        for (held, acquired), entries in sorted(edges.items()):
            if held != acquired:
                continue
            ctor = program.lock_ctor(held)
            if ctor is not None and ctor not in _LOCK_CTOR_NONREENTRANT:
                continue  # RLock/Condition: re-acquisition is legal
            for anchors, receiver_self in entries:
                # canonical ids merge instances; only a `self.`-rooted
                # path guarantees both acquisitions hit the same object.
                if len(anchors) > 1 and not receiver_self:
                    continue
                first = anchors[0]
                yield Finding(
                    rule=self.id,
                    path=first[0],
                    line=first[1],
                    message=(
                        f"{held} may be re-acquired while already held "
                        f"(non-reentrant Lock: self-deadlock)"
                    ),
                    snippet="",
                    related=tuple(anchors[1:]),
                )
                break  # one finding per lock

    # -- cycles ------------------------------------------------------------
    def _cycles(self, program: ProgramModel, edges) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {}
        for held, acquired in edges:
            if held != acquired:
                graph.setdefault(held, set()).add(acquired)
                graph.setdefault(acquired, set())
        for component in _tarjan_sccs(graph):
            if len(component) < 2:
                continue
            cycle = _reconstruct_cycle(graph, component)
            if cycle is None:
                continue
            anchors: list[tuple[str, int, str]] = []
            for a, b in zip(cycle, cycle[1:]):
                entry = sorted(edges[(a, b)])[0]
                anchors.extend(entry[0])
            first = anchors[0]
            order = " -> ".join(cycle)
            yield Finding(
                rule=self.id,
                path=first[0],
                line=first[1],
                message=f"lock-ordering cycle (potential deadlock): {order}",
                snippet="",
                related=tuple(anchors[1:]),
            )


def _tarjan_sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components, iterative, deterministic order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


def _reconstruct_cycle(graph: dict[str, set[str]], component: list[str]) -> list[str] | None:
    """A concrete cycle through an SCC, as [a, b, ..., a]."""
    members = set(component)
    start = component[0]
    # DFS within the component back to start
    seen = {start}
    path = [start]

    def dfs(node: str) -> bool:
        for child in sorted(graph.get(node, ())):
            if child == start and len(path) > 1:
                return True
            if child in members and child not in seen:
                seen.add(child)
                path.append(child)
                if dfs(child):
                    return True
                path.pop()
        return False

    if dfs(start):
        return [*path, start]
    return None


# ---------------------------------------------------------------------------
# REP015 — process-escape checking
# ---------------------------------------------------------------------------


class ProcessEscape(CrossFileRule):
    id = "REP015"
    title = (
        "callable shipped to a worker process reaches a parent-only "
        "resource (store / TSDB handle / lock)"
    )

    def run(self, program: ProgramModel) -> Iterator[Finding]:
        for module in sorted(program.modules):
            summary = program.modules[module]
            for dispatch in summary.dispatches:
                if dispatch.boundary == "thread":
                    continue
                targets = self._dispatch_targets(program, module, dispatch)
                for target in targets:
                    escape = self._find_escape(
                        program, target,
                        hard=(dispatch.boundary == "process"),
                    )
                    if escape is None:
                        continue
                    what, anchors = escape
                    yield Finding(
                        rule=self.id,
                        path=summary.path,
                        line=dispatch.line,
                        message=(
                            f"'{dispatch.callee}' dispatched via {dispatch.api} "
                            f"to a {'worker process' if dispatch.boundary == 'process' else 'possibly-process pool'} "
                            f"reaches parent-only resource: {what}"
                        ),
                        snippet="",
                        related=tuple(anchors),
                    )
                    break  # one finding per dispatch site

    def _dispatch_targets(self, program: ProgramModel, module: str, dispatch):
        return program.resolve_call(module, dispatch.function, dispatch.callee)

    def _find_escape(self, program: ProgramModel, start, hard: bool):
        """BFS over the call graph from the dispatched callable; returns
        (description, anchors) at the first resource touch, else None."""
        queue: list[tuple[tuple, tuple, int]] = [(start, (), 0)]
        visited = {start}
        while queue:
            (module, qualname), trail, depth = queue.pop(0)
            fn = program.functions.get((module, qualname))
            if fn is None:
                continue
            path = program.path_of(module)
            hop = (path, fn.line, f"reached via {qualname}")
            trail_here = (*trail, hop)
            hit = self._resource_touch(program, module, fn, hard)
            if hit is not None:
                what, line, note = hit
                return what, [*trail_here, (path, line, note)]
            if depth >= _ESCAPE_MAX_DEPTH:
                continue
            for call in fn.calls:
                for target in program.resolve_call(module, qualname, call.callee):
                    if target not in visited:
                        visited.add(target)
                        queue.append((target, trail_here, depth + 1))
        return None

    def _resource_touch(self, program: ProgramModel, module: str, fn: FunctionSummary, hard: bool):
        """(description, line, note) when ``fn`` touches a parent resource."""
        summary = program.modules[module]
        # 1. module-level resource singletons
        for name, line in fn.reads:
            kind = summary.resource_globals.get(name)
            if kind is not None:
                return (
                    f"module-level {kind} '{name}'", line,
                    f"reads module-level {kind} '{name}'",
                )
        # 2. instance resources: the dispatched callable is (or calls) a
        # method, so `self` pickles the whole instance, resources included
        cls = fn.cls or fn.qualname.split(".")[0]
        if (module, cls) in program.classes:
            resources = program.family_resource_attrs(module, cls)
            locks = program.family_lock_attrs(module, cls)
            for attr, line in fn.self_attr_reads:
                kind = resources.get(attr)
                if kind is not None:
                    label = kind.removeprefix("param:")
                    return (
                        f"instance resource self.{attr} ({label})", line,
                        f"reads self.{attr} bound to {label}",
                    )
                if hard and attr in locks:
                    return (
                        f"parent lock self.{attr}", line,
                        f"reads parent-process lock self.{attr}",
                    )
        # 3. closure capture: a nested function reading a name the
        # enclosing function bound to a resource constructor / parameter
        if ".<locals>." in fn.qualname:
            outer_qual = fn.qualname.rsplit(".<locals>.", 1)[0]
            outer = program.functions.get((module, outer_qual))
            if outer is not None:
                from .summaries import RESOURCE_PARAM_NAMES
                for name, line in fn.reads:
                    ctor = outer.local_ctors.get(name)
                    if ctor in RESOURCE_CLASSES:
                        return (
                            f"closure-captured {ctor} '{name}'", line,
                            f"closure reads '{name}' = {ctor}(...) from {outer_qual}",
                        )
                    if name in outer.params and name in RESOURCE_PARAM_NAMES:
                        return (
                            f"closure-captured resource parameter '{name}'", line,
                            f"closure reads resource parameter '{name}' of {outer_qual}",
                        )
                    if hard and ctor is not None and "lock" in name.lower():
                        return (
                            f"closure-captured lock '{name}'", line,
                            f"closure reads lock '{name}' from {outer_qual}",
                        )
        return None


# ---------------------------------------------------------------------------
# REP016 — interprocedural determinism taint
# ---------------------------------------------------------------------------


class DeterminismTaint(CrossFileRule):
    id = "REP016"
    title = "seed parameter dropped or defaulted along a call path to an RNG"

    def run(self, program: ProgramModel) -> Iterator[Finding]:
        rng_makers = self._rng_constructing(program)
        yield from self._dropped_seeds(program, rng_makers)
        yield from self._dead_seeds(program, rng_makers)

    def _rng_constructing(self, program: ProgramModel) -> set:
        """Functions that (transitively) construct an RNG."""
        makers = {
            key for key, fn in program.functions.items() if fn.constructs_rng
        }
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for key, fn in program.functions.items():
                if key in makers:
                    continue
                module, qualname = key
                for call in fn.calls:
                    if any(
                        target in makers
                        for target in program.resolve_call(module, qualname, call.callee)
                    ):
                        makers.add(key)
                        changed = True
                        break
        return makers

    def _dropped_seeds(self, program: ProgramModel, rng_makers: set) -> Iterator[Finding]:
        """A seeded caller invokes an RNG-constructing callee but lets the
        callee's own seed parameter default: determinism silently forks."""
        for key in sorted(program.functions):
            module, qualname = key
            fn = program.functions[key]
            if not fn.seed_params:
                continue
            path = program.path_of(module)
            for call in fn.calls:
                if call.has_star or call.seed_kwargs or call.caller_seeds_passed:
                    continue
                for target in program.resolve_call(module, qualname, call.callee):
                    if target not in rng_makers:
                        continue
                    callee = program.functions[target]
                    dropped = self._defaulted_seed_not_covered(callee, call)
                    if dropped is None:
                        continue
                    yield Finding(
                        rule=self.id,
                        path=path,
                        line=call.line,
                        message=(
                            f"seeded function '{qualname}' (seed params: "
                            f"{', '.join(fn.seed_params)}) calls RNG-constructing "
                            f"'{target[1]}' without passing a seed — its "
                            f"'{dropped}' parameter silently defaults"
                        ),
                        snippet="",
                        related=(
                            (program.path_of(target[0]), callee.line,
                             f"'{target[1]}' defined here with defaulted "
                             f"seed parameter '{dropped}'"),
                        ),
                    )
                    break

    @staticmethod
    def _defaulted_seed_not_covered(callee: FunctionSummary, call) -> str | None:
        params = [p for p in callee.params if p != "self"]
        for seed in callee.seed_params:
            if seed not in callee.defaulted_params:
                continue  # required: python itself enforces passing it
            try:
                position = params.index(seed)
            except ValueError:  # pragma: no cover - seed always in params
                continue
            covered = position < call.n_pos_args or seed in call.keywords
            if not covered:
                return seed
        return None

    def _dead_seeds(self, program: ProgramModel, rng_makers: set) -> Iterator[Finding]:
        """A function accepts a seed-ish parameter and never reads it:
        callers believe they determinized something; nothing flowed."""
        for key in sorted(program.functions):
            module, qualname = key
            fn = program.functions[key]
            if fn.is_stub or "<lambda" in qualname:
                continue
            dead = [
                p for p in fn.seed_params
                if p not in fn.seed_params_used and not p.startswith("_")
            ]
            if not dead:
                continue
            yield Finding(
                rule=self.id,
                path=program.path_of(module),
                line=fn.line,
                message=(
                    f"'{qualname}' accepts seed parameter"
                    f"{'s' if len(dead) > 1 else ''} "
                    f"{', '.join(repr(p) for p in dead)} but never reads "
                    f"{'them' if len(dead) > 1 else 'it'} — callers' seeds "
                    f"are silently dropped"
                ),
                snippet="",
            )


ALL_CROSS_RULES = (LockDiscipline, LockOrderCycles, ProcessEscape, DeterminismTaint)

CROSS_RULE_IDS = frozenset(rule.id for rule in ALL_CROSS_RULES)


def default_cross_rules() -> tuple[CrossFileRule, ...]:
    """Fresh instances of every cross-file rule, in id order."""
    return tuple(rule() for rule in ALL_CROSS_RULES)
